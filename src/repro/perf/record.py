"""Benchmark-recording harness (``make bench`` / ``repro bench``).

Runs the two hot kernels and end-to-end circuit simulations on every
available compute backend, records per-benchmark wall time and
gate-evaluation throughput together with backend/machine metadata, and
compares against a previous record with a configurable regression
threshold.  The JSON record (``BENCH_kernels.json``) is committed to the
repository so the perf trajectory is inspectable per commit, and CI
uploads a fresh record as an artifact on every push.

Report schema (version 1)::

    {
      "schema_version": 1,
      "recorded_unix": <float>,
      "machine": {"platform": ..., "python": ..., "numpy": ...,
                  "cpu_count": ..., "backends": {name: "ok" | reason}},
      "benchmarks": [
        {"name": ..., "backend": ..., "wall_seconds": ...,
         "gate_evals_per_second": ..., "params": {...}},
        ...
      ],
      "speedups": {benchmark-name: {backend: numpy_wall / backend_wall}},
      "pruning_speedups": {scenario: {backend: dense_wall / sparse_wall}},
      "service_speedups": {backend: sequential_wall / batched_wall},
      "service_scaling": {backend: {num_shards: inproc_wall / sharded_wall}},
      "dispatch_speedups": {backend: unfused_wall / fused_wall},
      "incremental_speedups": {scenario: {backend: full_wall / delta_wall}},
      "closed_loop_speedups": {backend: full_wall / delta_wall},
      "parametric_ratios": {circuit: {backend: parametric_wall / static_wall}},
      "characterization_speedups": {"evaluation_ratio": ...,
                                    "warm_cache_evaluations": ..., ...},
      "faults_disabled_overhead": {backend: seam_cost_fraction_of_e2e_wall}
    }

The low-activity scenario (``e2e_*_lowact_{sparse,dense}``) runs the
same stimulus — mostly quiet pattern pairs — once with activity pruning
and once dense; ``pruning_speedups`` records the end-to-end win of
skipping quiet lanes.

The service scenario (``service_throughput_{sequential,batched}``) runs
the same fine-grained jobs once as per-job ``GpuWaveSim.run`` calls and
once through :class:`repro.service.SimulationService` (result cache
disabled); ``service_speedups`` records the dynamic-batching win of
coalescing small jobs into one shared slot plane.

The service-scaling scenario (``service_scaling_{inproc,shardsN}``)
runs the same job stream through the in-process service and through
``ServiceConfig(shards=N)`` worker processes with the zero-copy
shared-memory transport; ``service_scaling`` records the wall ratio per
shard count.  Interpret it against ``machine.cpu_count``: without
spare cores the ratio prices the multi-process transport overhead
rather than a parallelism win.

The level-dispatch scenario (``level_dispatch_{fused,unfused}``) runs
the same parametric workload once through the fused level-plan path
(one backend call per level, delays evaluated in-kernel) and once
through the per-arity-group path; ``dispatch_speedups`` records the
fusion win.  ``parametric_ratios`` tracks the cost of voltage-adaptive
delays relative to static delays per circuit and backend — the number
the fused path is meant to push toward 1.0 — and the regression gate
fails when it degrades beyond the threshold against the baseline.

The incremental scenario (``incremental_{voltage_sweep,stimulus}_
{full,delta}``) replays near-duplicate jobs against a captured base
arena: a voltage sweep with one of 16 operating points moved, and a
stimulus perturbation flipping 1 in 32 input bits.  ``incremental_
speedups`` records wall(full re-sim) / wall(delta path, including the
``select_delta`` diff) — the win of splicing unchanged lanes from the
base and re-evaluating only changed cones.

The closed-loop scenario (``avfs_closed_loop_{full,delta}``) plays one
AVFS control trajectory (:class:`repro.avfs.loop.ClosedLoopRunner`,
constant droop, convergence disabled) once with full re-simulation every
iteration and once with base-arena splicing on; both trajectories are
asserted bit-identical and ``closed_loop_speedups`` records the wall
ratio — the payoff of incremental re-simulation inside a feedback loop
that keeps revisiting the settled operating point.

The characterization scenario (``characterization_{fixed,adaptive,
pool,warm_cache}``) characterizes the cell library once on the fixed
12×9 SPICE grid, once with the error-driven adaptive sampler, once
through the fitting worker pool, and once against a warm coefficient
cache.  ``characterization_speedups`` records the SPICE-evaluation
ratio, the worst fit error of both flows against the fixed grid's
bilinear reference (the Fig. 4/5 yardstick), the pool scaling, and the
warm-cache evaluation count.  Three of its gates are absolute and
machine-independent (like the fault-seam gate): the adaptive flow must
spend at least :data:`CHARZ_EVAL_RATIO_FLOOR`× fewer evaluations, keep
its worst error within ``max(fixed × CHARZ_ERROR_FACTOR,
CHARZ_ERROR_FLOOR)``, and the warm-cache pass must perform **zero**
SPICE evaluations.

The fault-seam scenario (``fault_seams_e2e``) prices a single crossing
of the *disabled* ``repro.faults.trip`` path, counts how many crossings
one end-to-end run performs, and records the projected fraction of wall
time in ``faults_disabled_overhead`` — the proof that leaving the
fault-injection seams compiled into production paths is free.  Unlike
the wall-time gates this one is absolute: the gate fails when any
backend's fraction exceeds :data:`FAULT_OVERHEAD_CEILING`.

Wall times are best-of-N (minimum over repeats) — the standard way to
suppress scheduler noise in micro-benchmarks.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.simulation.backend import (
    available_backends,
    backend_status,
    resolve_backend,
)

__all__ = [
    "CHARZ_ERROR_FACTOR",
    "CHARZ_ERROR_FLOOR",
    "CHARZ_EVAL_RATIO_FLOOR",
    "DEFAULT_OUTPUT",
    "DEFAULT_THRESHOLD",
    "FAULT_OVERHEAD_CEILING",
    "bench_characterization",
    "bench_end_to_end",
    "bench_delay_kernel",
    "bench_fault_seams",
    "bench_level_dispatch",
    "bench_low_activity",
    "bench_merge_kernel",
    "bench_service_scaling",
    "bench_service_throughput",
    "compare_reports",
    "load_report",
    "main",
    "run_suite",
    "write_report",
]

SCHEMA_VERSION = 1
DEFAULT_OUTPUT = "BENCH_kernels.json"

#: A benchmark is a regression when its wall time exceeds the baseline
#: by more than this factor.
DEFAULT_THRESHOLD = 1.5

#: (lanes, events per pin) of the merge micro-benchmark.
MERGE_LANES = 20_000
MERGE_LANES_QUICK = 4_000

#: Gates in the delay-kernel micro-benchmark.
DELAY_GATES = 2_000
DELAY_GATES_QUICK = 400

#: End-to-end circuits (Table I representatives) and workload scale.
E2E_CIRCUITS = ("s38417", "b17")
E2E_CIRCUITS_QUICK = ("s38417",)
E2E_SCALE = 0.01
E2E_PATTERNS = 16
E2E_PATTERNS_QUICK = 6

#: Low-activity scenario: one pair in LOWACT_ACTIVE_EVERY launches
#: transitions, the rest are quiet (v2 == v1) — the regime activity
#: pruning targets.  A wide slot plane on a larger circuit scale, so
#: per-lane kernel work and arena traffic (what pruning removes)
#: dominate the per-level dispatch overhead (which it cannot).
LOWACT_ACTIVE_EVERY = 8
LOWACT_SCALE = 0.1
LOWACT_PATTERNS = 256
LOWACT_PATTERNS_QUICK = 64

#: Service scenario: many fine-grained jobs of SERVICE_SLOTS_PER_JOB
#: slots each — the regime dynamic batching targets (per-run dispatch
#: overhead dominates tiny planes).
SERVICE_JOBS = 64
SERVICE_JOBS_QUICK = 16
SERVICE_SLOTS_PER_JOB = 2
SERVICE_CIRCUIT = "s38417"

#: Service-scaling scenario: the same job stream through the in-process
#: service and through ``shards=N`` worker processes.  Queue depth 1
#: forces the router to spill the single hot compatibility group across
#: every shard, so the number measures multi-process scaling (plus the
#: shared-memory transport overhead), not consistent-hash placement.
#: Interpret against ``machine.cpu_count``: with one core, sharding can
#: only add IPC overhead — the speedup column is then an honest price
#: tag, not a win.
SCALING_JOBS = 32
SCALING_JOBS_QUICK = 8
SCALING_SHARDS = (1, 2, 4)
SCALING_SHARDS_QUICK = (1, 2)

#: Level-dispatch (fused vs unfused) scenario: one multi-voltage
#: parametric workload, so the per-level dispatch and per-lane delay
#: materialization costs the fusion removes are on the critical path.
DISPATCH_CIRCUIT = "s38417"
DISPATCH_PATTERNS = 8
DISPATCH_PATTERNS_QUICK = 4

#: Incremental re-simulation scenario: near-duplicate traffic replayed
#: against a retained base arena.  The voltage-sweep variant shares 15
#: of its 16 operating points with the base (the AVFS re-tuning case:
#: one point moved, the rest of the plane splices); the stimulus
#: variant flips 1 in 32 input bits of the pattern plane, so cones of
#: influence re-evaluate and everything outside them splices.
#: Closed-loop AVFS scenario (``avfs_closed_loop_{full,delta}``): one
#: trajectory of LOOP_ITERATIONS simulate→measure→decide steps, timed
#: with base-arena splicing on and off.  ``closed_loop_speedups``
#: records wall(full)/wall(delta); the trajectories are asserted
#: bit-identical before either entry is recorded.
LOOP_CIRCUIT = "s38417"
LOOP_SCALE = 0.1
LOOP_PATTERNS = 8
LOOP_PATTERNS_QUICK = 4
#: Long enough that the 4 distinct supplies the controller visits (and
#: their base captures) amortize: the remaining iterations fully splice.
LOOP_ITERATIONS = 32
LOOP_ITERATIONS_QUICK = 10

INCR_CIRCUIT = "s38417"
INCR_SCALE = 0.05
INCR_SWEEP_VOLTAGES = 16
INCR_PATTERNS = 8
INCR_PATTERNS_QUICK = 4
INCR_FLIP_ONE_IN = 32

#: Characterization scenario: fixed-grid vs adaptive library
#: characterization.  Quick mode restricts the library to a family
#: subset (logged) so the CI smoke stays fast; the gates are per-flow
#: ratios and hold on the subset too.
CHARZ_FAMILIES_QUICK = ("INV", "NAND2", "NOR2", "BUF")
CHARZ_PARITY_GRID = 64
CHARZ_POOL_WORKERS = 4
#: Adaptive characterization must spend at least this many times fewer
#: SPICE delay evaluations than the 12×9 fixed grid.
CHARZ_EVAL_RATIO_FLOOR = 3.0
#: ... while its worst fit error vs the fixed grid's bilinear reference
#: stays within ``max(fixed_worst × FACTOR, FLOOR)`` — parity with the
#: Fig. 4/5 accuracy, with an absolute floor so near-zero fixed errors
#: do not make the relative gate impossibly tight.
CHARZ_ERROR_FACTOR = 1.25
CHARZ_ERROR_FLOOR = 0.02

#: Fault-seam scenario: spin calls through the disabled ``faults.trip``
#: path to price one seam crossing, count the crossings one end-to-end
#: run makes, and record the projected overhead fraction.  The guard:
#: leaving the seams compiled into production paths must cost less than
#: this fraction of end-to-end wall time when no plan is active.
FAULT_SEAM_SPINS = 200_000
FAULT_SEAM_SPINS_QUICK = 50_000
FAULT_OVERHEAD_CEILING = 0.01


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _entry(name: str, backend: str, wall: float, evals: float,
           **params) -> dict:
    return {
        "name": name,
        "backend": backend,
        "wall_seconds": wall,
        "gate_evals_per_second": evals / wall if wall > 0 else None,
        "params": params,
    }


# -- micro-benchmarks --------------------------------------------------------------


def _merge_workload(lanes: int, capacity: int = 8, seed: int = 6):
    """The synthetic XOR2 thread group of ``bench_kernels.py``."""
    rng = np.random.default_rng(seed)
    times = np.sort(rng.uniform(0, 1e-9, size=(2, lanes, capacity)), axis=2)
    counts = rng.integers(0, capacity, size=(2, lanes))
    mask = np.arange(capacity)[None, None, :] >= counts[:, :, None]
    times[mask] = np.inf
    initial = rng.integers(0, 2, size=(2, lanes)).astype(np.uint8)
    delays = rng.uniform(1e-12, 5e-12, size=(2, 2, lanes))
    tables = np.full(lanes, 0b0110, dtype=np.int64)
    return times, initial, delays, tables


def bench_merge_kernel(backend_name: str, lanes: int,
                       repeats: int = 5) -> dict:
    """``waveform_merge_kernel`` throughput: one 2-input thread group."""
    backend = resolve_backend(backend_name)
    times, initial, delays, tables = _merge_workload(lanes)
    out_capacity = 32

    def call():
        backend.merge_kernel(times, initial, delays, tables, out_capacity)

    call()  # warm-up (JIT compilation, cache effects)
    wall = _best_of(call, repeats)
    return _entry("waveform_merge_kernel", backend.name, wall, lanes,
                  lanes=lanes, capacity=out_capacity)


def bench_delay_kernel(backend_name: str, kernel_table, gates: int,
                       repeats: int = 5) -> dict:
    """Online delay calculation: ``gates`` gates × 8 voltages."""
    backend = resolve_backend(backend_name)
    rng = np.random.default_rng(5)
    type_ids = rng.integers(0, kernel_table.num_types, size=gates)
    loads = rng.uniform(1e-15, 1e-13, size=gates)
    nominal = rng.uniform(1e-12, 2e-11,
                          size=(gates, kernel_table.max_pins, 2))
    voltages = np.linspace(0.55, 1.1, 8)

    def call():
        backend.delays_for_gates(kernel_table, type_ids, loads, nominal,
                                 voltages)

    call()
    wall = _best_of(call, repeats)
    return _entry("delays_for_gates", backend.name, wall,
                  gates * voltages.size, gates=gates,
                  voltages=int(voltages.size), impl=backend.delays_impl)


# -- end-to-end --------------------------------------------------------------------


def bench_end_to_end(backend_name: str, circuit_name: str, scale: float,
                     num_patterns: int, parametric: bool,
                     repeats: int = 2) -> dict:
    """Whole-engine run on a scaled Table I circuit."""
    from repro.experiments.common import default_kernel_table, default_library
    from repro.experiments.workload import prepare_workload
    from repro.simulation.base import SimulationConfig
    from repro.simulation.gpu import GpuWaveSim

    workload = prepare_workload(circuit_name, scale=scale)
    library = default_library()
    kernel_table = default_kernel_table(3) if parametric else None
    pairs = workload.patterns.pairs[:num_patterns]
    sim = GpuWaveSim(workload.circuit, library, compiled=workload.compiled,
                     config=SimulationConfig(backend=backend_name))
    results = []

    def call():
        results.append(sim.run(pairs, kernel_table=kernel_table))

    call()
    wall = _best_of(call, repeats)
    evals = results[-1].gate_evaluations
    mode = "parametric" if parametric else "static"
    phases = {name: round(seconds, 6) for name, seconds
              in sim.last_stats.phase_seconds().items()}
    return _entry(f"e2e_{circuit_name}_{mode}", sim.backend.name, wall, evals,
                  circuit=circuit_name, scale=scale, patterns=len(pairs),
                  gate_evaluations=int(evals), phases=phases)


def bench_level_dispatch(backend_name: str, circuit_name: str, scale: float,
                         num_patterns: int, repeats: int = 2) -> List[dict]:
    """Fused-vs-unfused pair on a parametric workload (two entries).

    The same multi-voltage run goes once through the fused level-plan
    path (one backend call per level, Horner delay scaling evaluated
    inside the merge loop) and once through the per-arity-group path
    with materialized per-lane delay arrays.  The two produce
    bit-identical waveforms (asserted by the test suite); the wall-time
    ratio is the fusion win recorded in ``dispatch_speedups``.
    """
    from repro.experiments.common import default_kernel_table, default_library
    from repro.experiments.workload import prepare_workload
    from repro.simulation.base import SimulationConfig
    from repro.simulation.grid import SlotPlan
    from repro.simulation.gpu import GpuWaveSim

    workload = prepare_workload(circuit_name, scale=scale)
    library = default_library()
    kernel_table = default_kernel_table(3)
    pairs = workload.patterns.pairs[:num_patterns]
    voltages = (0.6, 0.8, 1.0)
    plan = SlotPlan.cross(len(pairs), voltages)
    entries = []
    for fused in (True, False):
        sim = GpuWaveSim(workload.circuit, library,
                         compiled=workload.compiled,
                         config=SimulationConfig(backend=backend_name,
                                                 fused=fused))
        results = []

        def call():
            results.append(sim.run(pairs, plan=plan,
                                   kernel_table=kernel_table))

        call()
        wall = _best_of(call, repeats)
        evals = results[-1].gate_evaluations
        mode = "fused" if fused else "unfused"
        entries.append(_entry(
            f"level_dispatch_{mode}", sim.backend.name, wall, evals,
            circuit=circuit_name, scale=scale, patterns=len(pairs),
            voltages=len(voltages), gate_evaluations=int(evals),
            phases={name: round(seconds, 6) for name, seconds
                    in sim.last_stats.phase_seconds().items()}))
    return entries


def bench_incremental_resim(backend_name: str, circuit_name: str,
                            scale: float, num_patterns: int,
                            repeats: int = 2) -> List[dict]:
    """Delta re-simulation vs full re-simulation (four entries).

    A base run over a ``num_patterns x INCR_SWEEP_VOLTAGES`` slot plane
    is captured once (untimed — the arena is a by-product of normal
    service traffic).  Two near-duplicate variants are then timed both
    from scratch (``*_full``) and through the delta path (``*_delta``,
    including the ``select_delta`` diff — the whole price of reuse):

    * ``incremental_voltage_sweep``: one of 16 operating points moved;
      the 15 shared points splice in full, the new point simulates.
    * ``incremental_stimulus``: 1 in ``INCR_FLIP_ONE_IN`` input nets
      flipped in one pattern; the changed cones re-evaluate on that
      pattern's slots, everything else splices.

    The ``*_delta`` entries record ``delta_fraction``, ``lanes_spliced``
    and ``bytes_spliced``; ``incremental_speedups`` records the wall
    ratio per scenario and backend.
    """
    from repro.experiments.common import default_kernel_table, default_library
    from repro.experiments.workload import prepare_workload
    from repro.simulation.base import PatternPair, SimulationConfig
    from repro.simulation.delta import select_delta
    from repro.simulation.grid import SlotPlan
    from repro.simulation.gpu import GpuWaveSim

    workload = prepare_workload(circuit_name, scale=scale)
    library = default_library()
    kernel_table = default_kernel_table(3)
    pairs = workload.patterns.pairs[:num_patterns]
    points = INCR_SWEEP_VOLTAGES
    sweep = [round(0.6 + 0.4 * i / (points - 1), 6) for i in range(points)]
    base_plan = SlotPlan.cross(len(pairs), sweep)

    # Variant 1: re-sweep with one operating point moved off-grid.
    shifted_plan = SlotPlan.cross(len(pairs), sweep[:-1] + [1.05])
    # Variant 2: flip 1 in INCR_FLIP_ONE_IN input nets of one pattern.
    v1 = np.stack([p.v1 for p in pairs])
    v2 = np.stack([p.v2 for p in pairs]).copy()
    width = v1.shape[1]
    flips = max(1, width // INCR_FLIP_ONE_IN)
    positions = np.linspace(0, width - 1, flips).astype(np.int64)
    v2[0, positions] ^= 1
    perturbed = [PatternPair(v1[i], v2[i]) for i in range(len(pairs))]

    scenarios = (("incremental_voltage_sweep", pairs, shifted_plan),
                 ("incremental_stimulus", perturbed, base_plan))
    entries = []
    for label, job_pairs, job_plan in scenarios:
        base_sim = GpuWaveSim(workload.circuit, library,
                              compiled=workload.compiled,
                              config=SimulationConfig(backend=backend_name))
        arena = base_sim.run(pairs, plan=base_plan,
                             kernel_table=kernel_table,
                             capture_base=True).base_arena
        jv1 = np.stack([p.v1 for p in job_pairs])
        jv2 = np.stack([p.v2 for p in job_pairs])

        full_sim = GpuWaveSim(workload.circuit, library,
                              compiled=workload.compiled,
                              config=SimulationConfig(backend=backend_name))
        full_results = []

        def full_call():
            full_results.append(full_sim.run(job_pairs, plan=job_plan,
                                             kernel_table=kernel_table))

        full_call()
        full_wall = _best_of(full_call, repeats)
        full_evals = full_results[-1].gate_evaluations
        entries.append(_entry(
            f"{label}_full", full_sim.backend.name, full_wall, full_evals,
            circuit=circuit_name, scale=scale, patterns=len(pairs),
            voltages=points, gate_evaluations=int(full_evals)))

        delta_sim = GpuWaveSim(workload.circuit, library,
                               compiled=workload.compiled,
                               config=SimulationConfig(backend=backend_name))
        delta_results = []

        def delta_call():
            selected = select_delta([arena], jv1, jv2,
                                    job_plan.pattern_indices,
                                    job_plan.voltages, None, None, 0.5)
            assert selected is not None
            delta_results.append(delta_sim.run(job_pairs, plan=job_plan,
                                               kernel_table=kernel_table,
                                               delta=selected[0]))

        delta_call()
        delta_wall = _best_of(delta_call, repeats)
        stats = delta_sim.last_stats
        evals = delta_results[-1].gate_evaluations
        entries.append(_entry(
            f"{label}_delta", delta_sim.backend.name, delta_wall, evals,
            circuit=circuit_name, scale=scale, patterns=len(pairs),
            voltages=points, gate_evaluations=int(evals),
            delta_fraction=round(stats.delta_fraction, 6),
            lanes_spliced=int(stats.lanes_spliced),
            bytes_spliced=int(stats.bytes_spliced)))
    return entries


def bench_closed_loop(backend_name: str, circuit_name: str, scale: float,
                      num_patterns: int, iterations: int,
                      repeats: int = 2) -> List[dict]:
    """Closed-loop AVFS trajectory with and without delta splicing.

    One :class:`~repro.avfs.loop.ClosedLoopRunner` trajectory — constant
    droop, convergence disabled so every iteration executes — is timed
    twice: ``avfs_closed_loop_full`` re-simulates the full plane every
    iteration, ``avfs_closed_loop_delta`` splices cached base arenas
    whenever the commanded supply repeats (which, once the controller
    settles, is every remaining iteration).  Both trajectories must be
    bit-identical — the delta path's correctness contract — and the
    entries are auto-gated by the wall-time comparison like every other
    benchmark; ``closed_loop_speedups`` records the per-backend ratio.
    """
    from repro.avfs import (AvfsController, ClosedLoopRunner,
                            DesignSpaceExplorer, LoopConfig, VoltageDroop)
    from repro.experiments.common import default_kernel_table, default_library
    from repro.experiments.workload import prepare_workload
    from repro.simulation.base import SimulationConfig
    from repro.simulation.gpu import GpuWaveSim

    workload = prepare_workload(circuit_name, scale=scale)
    library = default_library()
    kernel_table = default_kernel_table(3)
    pairs = workload.patterns.pairs[:num_patterns]
    voltages = [0.6, 0.7, 0.8, 0.9, 1.0]

    sim = GpuWaveSim(workload.circuit, library, compiled=workload.compiled,
                     config=SimulationConfig(backend=backend_name))
    explorer = DesignSpaceExplorer(workload.circuit, library, kernel_table,
                                   simulator=sim)
    table = explorer.voltage_frequency_table(pairs, voltages, guardband=0.05)
    period = 1.15 / table.frequency_at(0.8)
    disturbances = [VoltageDroop(0.004)]

    entries = []
    trajectories = {}
    for mode, use_delta in (("full", False), ("delta", True)):
        config = LoopConfig(period=period, max_iterations=iterations,
                            settle_iterations=iterations + 1,
                            use_delta=use_delta, record_energy=False)
        results = []

        def call():
            runner = ClosedLoopRunner(
                workload.circuit, library, kernel_table,
                AvfsController(table), config,
                disturbances=disturbances, simulator=sim)
            results.append(runner.run(pairs))

        call()
        wall = _best_of(call, repeats)
        report = results[-1]
        trajectories[mode] = report
        entries.append(_entry(
            f"avfs_closed_loop_{mode}", sim.backend.name, wall,
            report.run_report.gate_evaluations,
            circuit=circuit_name, scale=scale, patterns=len(pairs),
            iterations=report.num_iterations,
            delta_reuse=round(report.delta_reuse_fraction, 6),
            lanes_spliced=int(report.run_report.lanes_spliced),
            converged_at=report.converged_at))
    full_arrivals = [s.raw_arrival for s in trajectories["full"].steps]
    delta_arrivals = [s.raw_arrival for s in trajectories["delta"].steps]
    assert full_arrivals == delta_arrivals, \
        "closed-loop delta trajectory diverged from full re-simulation"
    return entries


def _low_activity_pairs(pairs, num_patterns: int):
    """Mostly-quiet stimulus: every LOWACT_ACTIVE_EVERY-th pair is a real
    transition pattern, the rest hold their first vector (no toggles)."""
    from repro.simulation.base import PatternPair

    out = []
    for i in range(num_patterns):
        source = pairs[i % len(pairs)]
        if i % LOWACT_ACTIVE_EVERY == 0:
            out.append(source)
        else:
            out.append(PatternPair(source.v1, source.v1.copy()))
    return out


def bench_low_activity(backend_name: str, circuit_name: str, scale: float,
                       num_patterns: int, repeats: int = 2) -> List[dict]:
    """Sparse-vs-dense pair on a mostly-quiet stimulus (two entries)."""
    from repro.experiments.common import default_library
    from repro.experiments.workload import prepare_workload
    from repro.simulation.base import SimulationConfig
    from repro.simulation.gpu import GpuWaveSim

    workload = prepare_workload(circuit_name, scale=scale)
    library = default_library()
    pairs = _low_activity_pairs(workload.patterns.pairs, num_patterns)
    entries = []
    for prune in (True, False):
        sim = GpuWaveSim(workload.circuit, library,
                         compiled=workload.compiled,
                         config=SimulationConfig(backend=backend_name,
                                                 prune_inactive=prune))
        results = []

        def call():
            results.append(sim.run(pairs))

        call()
        wall = _best_of(call, repeats)
        evals = results[-1].gate_evaluations
        stats = sim.last_stats
        mode = "sparse" if prune else "dense"
        entries.append(_entry(
            f"e2e_{circuit_name}_lowact_{mode}", sim.backend.name, wall,
            evals, circuit=circuit_name, scale=scale, patterns=len(pairs),
            gate_evaluations=int(evals),
            lanes_skipped=int(stats.lanes_skipped),
            active_fraction=round(stats.active_fraction, 4)))
    return entries


def bench_service_throughput(backend_name: str, num_jobs: int,
                             repeats: int = 2) -> List[dict]:
    """Sequential-vs-batched pair for fine-grained jobs (two entries).

    The same ``num_jobs`` jobs (each :data:`SERVICE_SLOTS_PER_JOB`
    unique pattern pairs) run once as individual ``GpuWaveSim.run``
    calls and once submitted through a :class:`SimulationService` sized
    to coalesce them into one slot plane.  The result cache is disabled
    so the batched number measures dispatch, not memoization.
    """
    from repro.experiments.common import default_library
    from repro.experiments.workload import prepare_workload
    from repro.service import ServiceConfig, SimulationService
    from repro.simulation.base import SimulationConfig
    from repro.simulation.gpu import GpuWaveSim

    workload = prepare_workload(SERVICE_CIRCUIT, scale=E2E_SCALE)
    library = default_library()
    source = workload.patterns.pairs
    jobs = [[source[(num_jobs * i + j) % len(source)]
             for j in range(SERVICE_SLOTS_PER_JOB)]
            for i in range(num_jobs)]
    config = SimulationConfig(backend=backend_name)
    sim = GpuWaveSim(workload.circuit, library, compiled=workload.compiled,
                     config=config)
    evals: List[int] = []

    def sequential():
        evals.append(sum(sim.run(pairs).gate_evaluations for pairs in jobs))

    sequential()
    wall_seq = _best_of(sequential, repeats)

    total_slots = num_jobs * SERVICE_SLOTS_PER_JOB
    service_config = ServiceConfig(max_batch_slots=total_slots,
                                   max_wait_ms=100.0, idle_ms=20.0,
                                   cache_entries=0)
    coalesce: List[float] = []

    def batched():
        with SimulationService(config=service_config) as service:
            key = service.register_circuit(workload.circuit, library,
                                           compiled=workload.compiled)
            handles = [service.submit(key, pairs, config=config)
                       for pairs in jobs]
            evals.append(sum(handle.result().gate_evaluations
                             for handle in handles))
            coalesce.append(service.metrics().coalesce_factor)

    batched()
    wall_bat = _best_of(batched, repeats)

    params = dict(circuit=SERVICE_CIRCUIT, scale=E2E_SCALE, jobs=num_jobs,
                  slots_per_job=SERVICE_SLOTS_PER_JOB)
    return [
        _entry("service_throughput_sequential", sim.backend.name, wall_seq,
               evals[0], **params),
        _entry("service_throughput_batched", sim.backend.name, wall_bat,
               evals[-1], coalesce_factor=round(coalesce[-1], 2), **params),
    ]


def bench_service_scaling(backend_name: str, num_jobs: int,
                          shard_counts: Sequence[int],
                          repeats: int = 2) -> List[dict]:
    """In-process vs multi-process-sharded service on one job stream.

    The same ``num_jobs`` fine-grained jobs run once through the
    in-process service (``shards=0``, the supervised thread pool) and
    once per entry of ``shard_counts`` through the multi-process shard
    router with its zero-copy shared-memory transport.  Process spawn
    and circuit registration happen outside the timed region — the
    number is steady-state dispatch throughput.  ``shard_queue_depth=1``
    makes the single hot compatibility group spill across every shard,
    so all worker processes participate.

    ``service_scaling`` in the report records the wall-time ratio of
    the in-process run to each sharded run per backend.  Read it next
    to ``machine.cpu_count``: sharding buys parallelism only when there
    are cores to spill onto; on a single-core machine the ratio prices
    the IPC/shared-memory overhead instead.
    """
    from repro.experiments.common import default_library
    from repro.experiments.workload import prepare_workload
    from repro.service import ServiceConfig, SimulationService
    from repro.simulation.base import SimulationConfig

    workload = prepare_workload(SERVICE_CIRCUIT, scale=E2E_SCALE)
    library = default_library()
    source = workload.patterns.pairs
    jobs = [[source[(num_jobs * i + j) % len(source)]
             for j in range(SERVICE_SLOTS_PER_JOB)]
            for i in range(num_jobs)]
    config = SimulationConfig(backend=backend_name)
    backend = resolve_backend(backend_name).name
    # Several small batches per pass, so there is something to spread.
    batching = dict(max_batch_slots=SERVICE_SLOTS_PER_JOB * 4,
                    max_wait_ms=50.0, idle_ms=10.0, cache_entries=0)

    def measure(service_config: ServiceConfig) -> tuple:
        with SimulationService(config=service_config) as service:
            key = service.register_circuit(workload.circuit, library,
                                           compiled=workload.compiled)
            evals: List[int] = []

            def run_stream():
                handles = [service.submit(key, pairs, config=config)
                           for pairs in jobs]
                evals.append(sum(handle.result(timeout=300).gate_evaluations
                                 for handle in handles))

            run_stream()  # warm-up: shard engines, arenas, plan caches
            wall = _best_of(run_stream, repeats)
            metrics = service.metrics()
        return wall, evals[-1], metrics

    entries = []
    params = dict(circuit=SERVICE_CIRCUIT, scale=E2E_SCALE, jobs=num_jobs,
                  slots_per_job=SERVICE_SLOTS_PER_JOB,
                  cpu_count=os.cpu_count())
    wall, evals, _ = measure(ServiceConfig(**batching))
    entries.append(_entry("service_scaling_inproc", backend, wall, evals,
                          shards=0, **params))
    for shards in shard_counts:
        wall, evals, metrics = measure(
            ServiceConfig(shards=shards, shard_queue_depth=1, **batching))
        entries.append(_entry(
            f"service_scaling_shards{shards}", backend, wall, evals,
            shards=shards, rebalances=metrics.shard_rebalances,
            ipc_rx_bytes=metrics.ipc_rx_bytes,
            shm_out_bytes=metrics.shm_out_bytes, **params))
    return entries


def bench_fault_seams(backend_name: str, num_patterns: int,
                      spins: int = FAULT_SEAM_SPINS,
                      repeats: int = 2) -> dict:
    """Disabled fault-injection overhead of one end-to-end run.

    Three measurements compose the ``faults_disabled_overhead`` number:
    the unit cost of crossing a seam with no plan active (``spins``
    calls through ``faults.trip``), the number of seam crossings one
    end-to-end run performs (counted by an activated *empty* plan —
    same crossings, zero enactments), and the run's wall time.  The
    recorded fraction ``crossings × unit_cost / wall`` is what the
    seams cost production runs; :func:`compare_reports` fails when it
    exceeds :data:`FAULT_OVERHEAD_CEILING`.
    """
    from repro import faults
    from repro.experiments.common import default_library
    from repro.experiments.workload import prepare_workload
    from repro.simulation.base import SimulationConfig
    from repro.simulation.gpu import GpuWaveSim

    assert faults.active_plan() is None, \
        "fault benchmarks need injection disarmed"
    trip = faults.trip

    def spin():
        for _ in range(spins):
            trip("service.demux")

    spin()
    per_call = _best_of(spin, repeats) / spins

    workload = prepare_workload(SERVICE_CIRCUIT, scale=E2E_SCALE)
    library = default_library()
    pairs = workload.patterns.pairs[:num_patterns]
    sim = GpuWaveSim(workload.circuit, library, compiled=workload.compiled,
                     config=SimulationConfig(backend=backend_name))
    results = []

    def call():
        results.append(sim.run(pairs))

    call()
    wall = _best_of(call, repeats)
    evals = results[-1].gate_evaluations

    with faults.injected(faults.FaultPlan()) as plan:
        sim.run(pairs)
        crossings = plan.calls()

    overhead = crossings * per_call / wall if wall > 0 else 0.0
    return _entry(
        "fault_seams_e2e", sim.backend.name, wall, evals,
        circuit=SERVICE_CIRCUIT, scale=E2E_SCALE, patterns=len(pairs),
        seam_spins=spins, seam_call_ns=round(per_call * 1e9, 3),
        seam_crossings=int(crossings),
        overhead_fraction=overhead)


def bench_characterization(quick: bool = False,
                           workers: int = CHARZ_POOL_WORKERS) -> List[dict]:
    """Fixed-grid vs adaptive vs pooled vs warm-cache characterization.

    Four entries, all backend-independent (``backend="numpy"`` — the
    SPICE stand-in is pure NumPy): the full library on the fixed 12×9
    grid, the same library through the error-driven adaptive sampler
    (sequential, then through the fitting worker pool), and a repeat
    adaptive run against a pre-warmed coefficient cache.  Each entry's
    params carry the SPICE ``delay_evaluations`` it performed; the
    fixed/adaptive entries also carry their worst fit error against the
    fixed grid's bilinear reference on a
    :data:`CHARZ_PARITY_GRID`² probe — the Fig. 4/5 accuracy metric
    that :func:`compare_reports` gates.
    """
    import tempfile

    from repro.core.characterization import (AdaptiveConfig,
                                             characterize_library)
    from repro.core.charz_cache import CoefficientCache
    from repro.electrical.spice import AnalyticalSpice
    from repro.experiments.common import default_library

    library = default_library()
    if quick:
        library = library.select(CHARZ_FAMILIES_QUICK)
    config = AdaptiveConfig()
    common = dict(cells=len(library),
                  families="quick-subset" if quick else "all")

    spice = AnalyticalSpice()
    start = time.perf_counter()
    fixed = characterize_library(library, spice)
    fixed_wall = time.perf_counter() - start
    fixed_evals = spice.delay_evaluations

    spice = AnalyticalSpice()
    start = time.perf_counter()
    adaptive = characterize_library(library, spice, adaptive=config)
    adaptive_wall = time.perf_counter() - start
    adaptive_evals = spice.delay_evaluations

    # Worst |fit - fixed-grid bilinear reference| over every entry, on
    # the same equidistant normalized probe grid Fig. 4/5 use.
    nv = np.linspace(0.0, 1.0, CHARZ_PARITY_GRID)[:, None]
    nc = np.linspace(0.0, 1.0, CHARZ_PARITY_GRID)[None, :]
    fixed_worst = 0.0
    adaptive_worst = 0.0
    for cell_name, fixed_cell in fixed.cells.items():
        for entry in fixed_cell.pins:
            reference = entry.reference(nv, nc)
            fixed_worst = max(fixed_worst, float(np.abs(
                entry.fit.polynomial.evaluate(nv, nc) - reference).max()))
            other = adaptive.entry(cell_name, entry.pin_name, entry.polarity)
            adaptive_worst = max(adaptive_worst, float(np.abs(
                other.fit.polynomial.evaluate(nv, nc) - reference).max()))

    spice = AnalyticalSpice()
    start = time.perf_counter()
    characterize_library(library, spice, adaptive=config, workers=workers)
    pool_wall = time.perf_counter() - start

    with tempfile.TemporaryDirectory() as tmp:
        cache = CoefficientCache(tmp)
        characterize_library(library, AnalyticalSpice(), adaptive=config,
                             cache=cache)
        CoefficientCache.clear_memo()  # warm run must come from disk
        warm_spice = AnalyticalSpice()
        start = time.perf_counter()
        characterize_library(library, warm_spice, adaptive=config,
                             cache=cache)
        warm_wall = time.perf_counter() - start
        warm_evals = warm_spice.delay_evaluations

    return [
        _entry("characterization_fixed", "numpy", fixed_wall, fixed_evals,
               delay_evaluations=fixed_evals, worst_error=fixed_worst,
               **common),
        _entry("characterization_adaptive", "numpy", adaptive_wall,
               adaptive_evals, delay_evaluations=adaptive_evals,
               worst_error=adaptive_worst, target_error=config.target_error,
               budget=config.budget, **common),
        _entry("characterization_pool", "numpy", pool_wall, adaptive_evals,
               delay_evaluations=adaptive_evals, workers=workers, **common),
        _entry("characterization_warm_cache", "numpy", warm_wall, warm_evals,
               delay_evaluations=warm_evals, **common),
    ]


# -- suite -------------------------------------------------------------------------


def run_suite(quick: bool = False,
              backends: Optional[Sequence[str]] = None,
              include_e2e: bool = True) -> dict:
    """Record all benchmarks across ``backends`` (default: available)."""
    chosen = list(backends) if backends else available_backends()
    benchmarks: List[dict] = []

    lanes = MERGE_LANES_QUICK if quick else MERGE_LANES
    for name in chosen:
        benchmarks.append(bench_merge_kernel(name, lanes))

    gates = DELAY_GATES_QUICK if quick else DELAY_GATES
    kernel_table = None
    if include_e2e:
        from repro.experiments.common import default_kernel_table
        kernel_table = default_kernel_table(3)
        for name in chosen:
            benchmarks.append(bench_delay_kernel(name, kernel_table, gates))

        circuits = E2E_CIRCUITS_QUICK if quick else E2E_CIRCUITS
        patterns = E2E_PATTERNS_QUICK if quick else E2E_PATTERNS
        for circuit in circuits:
            for parametric in (False, True):
                for name in chosen:
                    benchmarks.append(bench_end_to_end(
                        name, circuit, E2E_SCALE, patterns, parametric))

        dispatch_patterns = (DISPATCH_PATTERNS_QUICK if quick
                             else DISPATCH_PATTERNS)
        for name in chosen:
            benchmarks.extend(bench_level_dispatch(
                name, DISPATCH_CIRCUIT, E2E_SCALE, dispatch_patterns))

        incr_patterns = INCR_PATTERNS_QUICK if quick else INCR_PATTERNS
        for name in chosen:
            benchmarks.extend(bench_incremental_resim(
                name, INCR_CIRCUIT, INCR_SCALE, incr_patterns))

        loop_patterns = LOOP_PATTERNS_QUICK if quick else LOOP_PATTERNS
        loop_iterations = (LOOP_ITERATIONS_QUICK if quick
                           else LOOP_ITERATIONS)
        for name in chosen:
            benchmarks.extend(bench_closed_loop(
                name, LOOP_CIRCUIT, LOOP_SCALE, loop_patterns,
                loop_iterations))

        lowact = LOWACT_PATTERNS_QUICK if quick else LOWACT_PATTERNS
        for circuit in circuits:
            for name in chosen:
                benchmarks.extend(bench_low_activity(
                    name, circuit, LOWACT_SCALE, lowact))

        service_jobs = SERVICE_JOBS_QUICK if quick else SERVICE_JOBS
        for name in chosen:
            benchmarks.extend(bench_service_throughput(name, service_jobs))

        scaling_jobs = SCALING_JOBS_QUICK if quick else SCALING_JOBS
        scaling_shards = SCALING_SHARDS_QUICK if quick else SCALING_SHARDS
        for name in chosen:
            benchmarks.extend(bench_service_scaling(name, scaling_jobs,
                                                    scaling_shards))

        seam_spins = FAULT_SEAM_SPINS_QUICK if quick else FAULT_SEAM_SPINS
        for name in chosen:
            benchmarks.append(bench_fault_seams(name, patterns,
                                                spins=seam_spins))

        # Backend-independent (pure-NumPy SPICE stand-in): run once.
        benchmarks.extend(bench_characterization(quick=quick))

    return {
        "schema_version": SCHEMA_VERSION,
        "recorded_unix": time.time(),
        "quick": quick,
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
            "backends": backend_status(),
        },
        "benchmarks": benchmarks,
        "speedups": _speedups(benchmarks),
        "pruning_speedups": _pruning_speedups(benchmarks),
        "service_speedups": _service_speedups(benchmarks),
        "service_scaling": _service_scaling(benchmarks),
        "dispatch_speedups": _dispatch_speedups(benchmarks),
        "incremental_speedups": _incremental_speedups(benchmarks),
        "closed_loop_speedups": _closed_loop_speedups(benchmarks),
        "parametric_ratios": _parametric_ratios(benchmarks),
        "characterization_speedups": _characterization_speedups(benchmarks),
        "faults_disabled_overhead": _fault_overhead(benchmarks),
    }


def _speedups(benchmarks: List[dict]) -> Dict[str, Dict[str, float]]:
    """Per benchmark name: wall(numpy) / wall(backend)."""
    by_name: Dict[str, Dict[str, float]] = {}
    for entry in benchmarks:
        by_name.setdefault(entry["name"], {})[entry["backend"]] = \
            entry["wall_seconds"]
    speedups: Dict[str, Dict[str, float]] = {}
    for name, walls in by_name.items():
        base = walls.get("numpy")
        if base is None:
            continue
        speedups[name] = {backend: base / wall
                          for backend, wall in walls.items() if wall > 0}
    return speedups


def _pruning_speedups(benchmarks: List[dict]) -> Dict[str, Dict[str, float]]:
    """Per low-activity scenario: wall(dense) / wall(sparse), by backend."""
    walls: Dict[str, Dict[str, Dict[str, float]]] = {}
    for entry in benchmarks:
        name = entry["name"]
        for suffix in ("_sparse", "_dense"):
            if name.endswith(suffix):
                scenario = name[:-len(suffix)]
                walls.setdefault(scenario, {}).setdefault(
                    entry["backend"], {})[suffix[1:]] = entry["wall_seconds"]
    speedups: Dict[str, Dict[str, float]] = {}
    for scenario, per_backend in walls.items():
        for backend, pair in per_backend.items():
            if "sparse" in pair and "dense" in pair and pair["sparse"] > 0:
                speedups.setdefault(scenario, {})[backend] = \
                    pair["dense"] / pair["sparse"]
    return speedups


def _dispatch_speedups(benchmarks: List[dict]) -> Dict[str, float]:
    """Per backend: wall(unfused per-arity-group) / wall(fused levels)."""
    walls: Dict[str, Dict[str, float]] = {}
    for entry in benchmarks:
        for mode in ("fused", "unfused"):
            if entry["name"] == f"level_dispatch_{mode}":
                walls.setdefault(entry["backend"], {})[mode] = \
                    entry["wall_seconds"]
    return {backend: pair["unfused"] / pair["fused"]
            for backend, pair in walls.items()
            if "fused" in pair and "unfused" in pair and pair["fused"] > 0}


def _incremental_speedups(benchmarks: List[dict]
                          ) -> Dict[str, Dict[str, float]]:
    """Per incremental scenario: wall(full re-sim) / wall(delta)."""
    walls: Dict[str, Dict[str, Dict[str, float]]] = {}
    for entry in benchmarks:
        name = entry["name"]
        if not name.startswith("incremental_"):
            continue
        for suffix in ("_full", "_delta"):
            if name.endswith(suffix):
                scenario = name[:-len(suffix)]
                walls.setdefault(scenario, {}).setdefault(
                    entry["backend"], {})[suffix[1:]] = entry["wall_seconds"]
    speedups: Dict[str, Dict[str, float]] = {}
    for scenario, per_backend in walls.items():
        for backend, pair in per_backend.items():
            if "full" in pair and "delta" in pair and pair["delta"] > 0:
                speedups.setdefault(scenario, {})[backend] = \
                    pair["full"] / pair["delta"]
    return speedups


def _closed_loop_speedups(benchmarks: List[dict]) -> Dict[str, float]:
    """Per backend: wall(full re-sim loop) / wall(delta-splicing loop)."""
    walls: Dict[str, Dict[str, float]] = {}
    for entry in benchmarks:
        for mode in ("full", "delta"):
            if entry["name"] == f"avfs_closed_loop_{mode}":
                walls.setdefault(entry["backend"], {})[mode] = \
                    entry["wall_seconds"]
    return {backend: pair["full"] / pair["delta"]
            for backend, pair in walls.items()
            if "full" in pair and "delta" in pair and pair["delta"] > 0}


def _parametric_ratios(benchmarks: List[dict]) -> Dict[str, Dict[str, float]]:
    """Per circuit: wall(parametric e2e) / wall(static e2e), by backend.

    The overhead of voltage-adaptive delay evaluation relative to a
    fixed-delay run of the same circuit — the quantity fused in-kernel
    Horner scaling is meant to push toward 1.0.
    """
    walls: Dict[str, Dict[str, Dict[str, float]]] = {}
    for entry in benchmarks:
        name = entry["name"]
        for suffix in ("_parametric", "_static"):
            if name.startswith("e2e_") and name.endswith(suffix) \
                    and "_lowact_" not in name:
                circuit = name[len("e2e_"):-len(suffix)]
                walls.setdefault(circuit, {}).setdefault(
                    entry["backend"], {})[suffix[1:]] = entry["wall_seconds"]
    ratios: Dict[str, Dict[str, float]] = {}
    for circuit, per_backend in walls.items():
        for backend, pair in per_backend.items():
            if "parametric" in pair and "static" in pair \
                    and pair["static"] > 0:
                ratios.setdefault(circuit, {})[backend] = \
                    pair["parametric"] / pair["static"]
    return ratios


def _characterization_speedups(benchmarks: List[dict]) -> dict:
    """Adaptive-vs-fixed characterization: evaluations, parity, cache, pool."""
    by_name = {entry["name"]: entry for entry in benchmarks
               if entry["name"].startswith("characterization_")}
    fixed = by_name.get("characterization_fixed")
    adaptive = by_name.get("characterization_adaptive")
    if fixed is None or adaptive is None:
        return {}
    fixed_evals = fixed["params"]["delay_evaluations"]
    adaptive_evals = adaptive["params"]["delay_evaluations"]
    section = {
        "fixed_evaluations": fixed_evals,
        "adaptive_evaluations": adaptive_evals,
        "evaluation_ratio": (fixed_evals / adaptive_evals
                             if adaptive_evals else None),
        "fixed_worst_error": fixed["params"]["worst_error"],
        "adaptive_worst_error": adaptive["params"]["worst_error"],
        "wall_speedup": (fixed["wall_seconds"] / adaptive["wall_seconds"]
                         if adaptive["wall_seconds"] > 0 else None),
    }
    warm = by_name.get("characterization_warm_cache")
    if warm is not None:
        section["warm_cache_evaluations"] = \
            warm["params"]["delay_evaluations"]
    pool = by_name.get("characterization_pool")
    if pool is not None and pool["wall_seconds"] > 0:
        section["pool_workers"] = pool["params"]["workers"]
        section["pool_speedup"] = \
            adaptive["wall_seconds"] / pool["wall_seconds"]
    return section


def _fault_overhead(benchmarks: List[dict]) -> Dict[str, float]:
    """Per backend: projected fraction of e2e wall spent crossing
    disabled fault seams (``crossings × unit_cost / wall``)."""
    return {entry["backend"]: entry["params"]["overhead_fraction"]
            for entry in benchmarks
            if entry["name"] == "fault_seams_e2e"}


def _service_speedups(benchmarks: List[dict]) -> Dict[str, float]:
    """Per backend: wall(sequential per-job runs) / wall(batched service)."""
    walls: Dict[str, Dict[str, float]] = {}
    for entry in benchmarks:
        for mode in ("sequential", "batched"):
            if entry["name"] == f"service_throughput_{mode}":
                walls.setdefault(entry["backend"], {})[mode] = \
                    entry["wall_seconds"]
    return {backend: pair["sequential"] / pair["batched"]
            for backend, pair in walls.items()
            if "sequential" in pair and "batched" in pair
            and pair["batched"] > 0}


def _service_scaling(benchmarks: List[dict]) -> Dict[str, Dict[str, float]]:
    """Per backend: wall(in-process) / wall(shards=N), keyed by N.

    A ratio above 1.0 means the sharded service beat the in-process one
    on this machine; below 1.0 it prices the multi-process transport
    overhead (expected whenever ``machine.cpu_count`` leaves no spare
    cores for the shards to use).
    """
    inproc: Dict[str, float] = {}
    sharded: Dict[str, Dict[str, float]] = {}
    for entry in benchmarks:
        name = entry["name"]
        if name == "service_scaling_inproc":
            inproc[entry["backend"]] = entry["wall_seconds"]
        elif name.startswith("service_scaling_shards"):
            shards = str(entry["params"]["shards"])
            sharded.setdefault(entry["backend"], {})[shards] = \
                entry["wall_seconds"]
    ratios: Dict[str, Dict[str, float]] = {}
    for backend, walls in sharded.items():
        base = inproc.get(backend)
        if base is None:
            continue
        ratios[backend] = {shards: base / wall
                           for shards, wall in walls.items() if wall > 0}
    return ratios


# -- persistence / regression gate -------------------------------------------------


def write_report(report: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(report, stream, indent=2, sort_keys=False)
        stream.write("\n")


def load_report(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as stream:
        return json.load(stream)


def compare_reports(current: dict, baseline: dict,
                    threshold: float = DEFAULT_THRESHOLD) -> List[str]:
    """Regression check: wall time vs the baseline record.

    Returns one message per benchmark whose wall time exceeds
    ``baseline * threshold``.  Benchmarks are matched by
    ``(name, backend)``; entries missing on either side are skipped
    (machines and backend availability legitimately differ).

    The parametric/static wall ratio is gated separately: unlike raw
    wall times it is machine-independent, so a fused-dispatch
    regression shows up here even when the whole run got faster.  A
    ``(circuit, backend)`` ratio regresses when it exceeds the
    baseline's ratio by more than ``threshold``; pairs absent from
    either record (e.g. kernel-only runs) are skipped.

    ``faults_disabled_overhead`` is gated against the absolute
    :data:`FAULT_OVERHEAD_CEILING` rather than the baseline: the
    contract is "disabled fault seams cost under 1% of end-to-end
    wall", not "no slower than last time".

    ``characterization_speedups`` is likewise gated absolutely (and is
    machine-independent, so it also fires under ``--fail-ratios``):
    adaptive characterization must spend at least
    :data:`CHARZ_EVAL_RATIO_FLOOR`× fewer SPICE delay evaluations than
    the fixed grid while its worst fit error stays within
    ``max(fixed_worst × CHARZ_ERROR_FACTOR, CHARZ_ERROR_FLOOR)``, and
    the warm-cache pass must perform zero evaluations.
    """
    previous = {(entry["name"], entry["backend"]): entry["wall_seconds"]
                for entry in baseline.get("benchmarks", [])}
    regressions = []
    for entry in current.get("benchmarks", []):
        key = (entry["name"], entry["backend"])
        before = previous.get(key)
        if before is None or before <= 0:
            continue
        ratio = entry["wall_seconds"] / before
        if ratio > threshold:
            regressions.append(
                f"{entry['name']}[{entry['backend']}]: "
                f"{entry['wall_seconds']:.4f}s vs baseline {before:.4f}s "
                f"({ratio:.2f}x > {threshold:.2f}x threshold)"
            )
    for backend, fraction in _fault_overhead(
            current.get("benchmarks", [])).items():
        if fraction > FAULT_OVERHEAD_CEILING:
            regressions.append(
                f"faults_disabled_overhead[{backend}]: "
                f"{fraction:.4%} of e2e wall spent on disabled fault "
                f"seams (> {FAULT_OVERHEAD_CEILING:.0%} ceiling)"
            )
    charz = _characterization_speedups(current.get("benchmarks", []))
    if charz:
        ratio = charz.get("evaluation_ratio") or 0.0
        if ratio < CHARZ_EVAL_RATIO_FLOOR:
            regressions.append(
                f"characterization[evals]: adaptive spent only {ratio:.2f}x "
                f"fewer SPICE evaluations than the fixed grid "
                f"({charz['fixed_evaluations']} -> "
                f"{charz['adaptive_evaluations']}; "
                f"floor {CHARZ_EVAL_RATIO_FLOOR:.1f}x)"
            )
        ceiling = max(charz["fixed_worst_error"] * CHARZ_ERROR_FACTOR,
                      CHARZ_ERROR_FLOOR)
        if charz["adaptive_worst_error"] > ceiling:
            regressions.append(
                f"characterization[error]: adaptive worst fit error "
                f"{charz['adaptive_worst_error']:.4f} exceeds "
                f"{ceiling:.4f} (fixed worst "
                f"{charz['fixed_worst_error']:.4f} x {CHARZ_ERROR_FACTOR})"
            )
        if charz.get("warm_cache_evaluations"):
            regressions.append(
                f"characterization[cache]: warm-cache characterize_library "
                f"performed {charz['warm_cache_evaluations']} SPICE "
                f"evaluations (expected 0)"
            )
    baseline_ratios = _parametric_ratios(baseline.get("benchmarks", []))
    for circuit, per_backend in _parametric_ratios(
            current.get("benchmarks", [])).items():
        for backend, ratio in per_backend.items():
            before = baseline_ratios.get(circuit, {}).get(backend)
            if before is None or before <= 0:
                continue
            if ratio / before > threshold:
                regressions.append(
                    f"parametric_ratio[{circuit}/{backend}]: "
                    f"{ratio:.2f} vs baseline {before:.2f} "
                    f"({ratio / before:.2f}x > {threshold:.2f}x threshold)"
                )
    return regressions


def _print_summary(report: dict, stream=None) -> None:
    stream = stream if stream is not None else sys.stdout
    print(f"recorded {len(report['benchmarks'])} benchmarks "
          f"({', '.join(sorted(report['machine']['backends']))})",
          file=stream)
    for entry in report["benchmarks"]:
        evals = entry["gate_evals_per_second"]
        rate = f"{evals / 1e6:8.2f} Meval/s" if evals else "  n/a"
        phases = entry.get("params", {}).get("phases") or {}
        breakdown = ("  [" + " ".join(f"{name} {seconds * 1e3:.1f}ms"
                                      for name, seconds in phases.items())
                     + "]") if phases else ""
        print(f"  {entry['name']:32s} {entry['backend']:6s} "
              f"{entry['wall_seconds'] * 1e3:10.3f} ms {rate}{breakdown}",
              file=stream)
    for name, ratios in report.get("speedups", {}).items():
        interesting = {b: r for b, r in ratios.items() if b != "numpy"}
        if interesting:
            text = ", ".join(f"{b} {r:.2f}x" for b, r in interesting.items())
            print(f"  speedup over numpy — {name}: {text}", file=stream)
    for name, ratios in report.get("pruning_speedups", {}).items():
        text = ", ".join(f"{b} {r:.2f}x" for b, r in ratios.items())
        print(f"  pruning speedup — {name}: {text}", file=stream)
    service = report.get("service_speedups", {})
    if service:
        text = ", ".join(f"{b} {r:.2f}x" for b, r in service.items())
        print(f"  service batching speedup: {text}", file=stream)
    scaling = report.get("service_scaling", {})
    if scaling:
        cores = report.get("machine", {}).get("cpu_count")
        for backend, ratios in scaling.items():
            text = ", ".join(f"{shards} shards {ratio:.2f}x"
                             for shards, ratio in sorted(
                                 ratios.items(), key=lambda kv: int(kv[0])))
            print(f"  service sharding speedup [{backend}] "
                  f"({cores} cpu): {text}", file=stream)
    dispatch = report.get("dispatch_speedups", {})
    if dispatch:
        text = ", ".join(f"{b} {r:.2f}x" for b, r in dispatch.items())
        print(f"  fused dispatch speedup: {text}", file=stream)
    for name, ratios in report.get("incremental_speedups", {}).items():
        text = ", ".join(f"{b} {r:.2f}x" for b, r in ratios.items())
        print(f"  incremental re-sim speedup — {name}: {text}", file=stream)
    closed_loop = report.get("closed_loop_speedups", {})
    if closed_loop:
        text = ", ".join(f"{b} {r:.2f}x" for b, r in closed_loop.items())
        print(f"  closed-loop delta speedup: {text}", file=stream)
    for circuit, ratios in report.get("parametric_ratios", {}).items():
        text = ", ".join(f"{b} {r:.2f}x" for b, r in ratios.items())
        print(f"  parametric/static ratio — {circuit}: {text}", file=stream)
    charz = report.get("characterization_speedups", {})
    if charz:
        ratio = charz.get("evaluation_ratio")
        print(f"  characterization: {ratio:.2f}x fewer SPICE evals "
              f"({charz['fixed_evaluations']} -> "
              f"{charz['adaptive_evaluations']}), worst error "
              f"{charz['adaptive_worst_error']:.4f} vs fixed "
              f"{charz['fixed_worst_error']:.4f}, warm cache "
              f"{charz.get('warm_cache_evaluations', 'n/a')} evals, "
              f"pool({charz.get('pool_workers', '?')}) "
              f"{charz.get('pool_speedup', 0.0):.2f}x", file=stream)
    overhead = report.get("faults_disabled_overhead", {})
    if overhead:
        text = ", ".join(f"{b} {fraction:.4%}"
                         for b, fraction in overhead.items())
        print(f"  disabled fault-seam overhead: {text} "
              f"(ceiling {FAULT_OVERHEAD_CEILING:.0%})", file=stream)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="record kernel/e2e benchmarks and check for regressions",
    )
    parser.add_argument("--quick", action="store_true",
                        help="smaller sizes (CI smoke)")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help=f"record file (default {DEFAULT_OUTPUT})")
    parser.add_argument("--baseline", default=None,
                        help="baseline record to compare against "
                             "(default: the previous --output file)")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="regression factor on wall time "
                             f"(default {DEFAULT_THRESHOLD})")
    parser.add_argument("--backends", default=None,
                        help="comma-separated backend subset "
                             "(default: all available)")
    parser.add_argument("--no-e2e", action="store_true",
                        help="kernel micro-benchmarks only (no library "
                             "characterization, much faster)")
    parser.add_argument("--no-fail", action="store_true",
                        help="report regressions but exit 0 (artifact "
                             "recording on foreign machines)")
    parser.add_argument("--fail-ratios", action="store_true",
                        help="fail on parametric/static ratio and "
                             "characterization-gate regressions even with "
                             "--no-fail (both are machine-independent, so "
                             "they gate on foreign machines where raw wall "
                             "times cannot)")
    args = parser.parse_args(argv)

    backends = ([b.strip() for b in args.backends.split(",") if b.strip()]
                if args.backends else None)

    baseline = None
    baseline_path = args.baseline or (
        args.output if os.path.exists(args.output) else None)
    if baseline_path and os.path.exists(baseline_path):
        baseline = load_report(baseline_path)

    report = run_suite(quick=args.quick, backends=backends,
                       include_e2e=not args.no_e2e)
    _print_summary(report)
    write_report(report, args.output)
    print(f"wrote {args.output}")

    if baseline is not None:
        regressions = compare_reports(report, baseline, args.threshold)
        if regressions:
            print(f"{len(regressions)} regression(s) vs {baseline_path}:",
                  file=sys.stderr)
            for message in regressions:
                print(f"  {message}", file=sys.stderr)
            ratio_regressions = [
                m for m in regressions
                if m.startswith(("parametric_ratio[", "characterization["))]
            if not args.no_fail:
                return 3
            if args.fail_ratios and ratio_regressions:
                return 3
        else:
            print(f"no regressions vs {baseline_path} "
                  f"(threshold {args.threshold:.2f}x)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
