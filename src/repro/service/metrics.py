"""Service observability: counters, occupancy histogram, latency quantiles.

A :class:`MetricsRecorder` accumulates under a lock on the hot path
(cheap integer updates plus a bounded latency window);
:meth:`MetricsRecorder.snapshot` materializes an immutable
:class:`ServiceMetrics` for reporting.  The quantities are the ones that
tell you whether dynamic batching is *working*:

* **batch occupancy histogram** — how full the shared slot planes were
  when they dispatched (all-ones means coalescing never happened),
* **coalesce factor** — jobs per engine dispatch (the headline number:
  sequential submission has factor 1.0),
* **cache hit rate** — fraction of lookups served without any dispatch,
* **latency percentiles** — p50/p95/p99 over the recent completion
  window, because batching trades tail latency for throughput and the
  trade must be visible.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

__all__ = ["MetricsRecorder", "ServiceMetrics"]

#: Upper edges of the batch-occupancy buckets (slots per dispatched
#: batch); the last bucket is open-ended.
OCCUPANCY_EDGES = (1, 2, 4, 8, 16, 32, 64, 128, 256)

#: Completed-job latencies kept for the percentile window.
LATENCY_WINDOW = 4096


def _bucket_label(index: int) -> str:
    if index == 0:
        return "1"
    if index >= len(OCCUPANCY_EDGES):
        return f">{OCCUPANCY_EDGES[-1]}"
    low = OCCUPANCY_EDGES[index - 1] + 1
    high = OCCUPANCY_EDGES[index]
    return str(high) if low == high else f"{low}-{high}"


@dataclass(frozen=True)
class ServiceMetrics:
    """Immutable snapshot of one service's lifetime counters."""

    jobs_submitted: int
    jobs_completed: int
    jobs_failed: int
    jobs_rejected: int
    queue_depth: int
    batches_dispatched: int
    jobs_batched: int
    slots_dispatched: int
    occupancy_histogram: Dict[str, int]
    cache: Dict[str, float]
    latency_p50_ms: Optional[float]
    latency_p95_ms: Optional[float]
    latency_p99_ms: Optional[float]
    retry_after_seconds: float = 0.0
    #: Engine wall time per phase (``delay`` / ``merge`` / ``pack``)
    #: summed over every dispatched batch — the fused-dispatch
    #: breakdown surfaced by ``repro bench`` and the service CLI.
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    #: Failure-domain counters (see ``docs/architecture.md`` §10):
    #: deadline expiries, caller cancellations, circuit-breaker
    #: refusals, supervisor worker replacements (``workers_hung`` of
    #: them abandoned as hung), batches re-queued after a worker loss,
    #: and engine backend demotions observed on dispatched batches.
    jobs_timed_out: int = 0
    jobs_cancelled: int = 0
    breaker_rejections: int = 0
    workers_replaced: int = 0
    workers_hung: int = 0
    batches_requeued: int = 0
    backend_demotions: int = 0
    #: Per-compatibility-group breaker snapshots, keyed by the first 12
    #: hex chars of the compat fingerprint.
    breakers: Dict[str, dict] = field(default_factory=dict)
    #: Sharded-service counters (all zero / empty without sharding).
    #: ``shards`` maps shard index (as a string) to that shard's
    #: occupancy and transport counters (queue depth, in-flight batches,
    #: dispatches, respawns, per-shard IPC/shm bytes, …);
    #: ``shard_latency_ms`` holds per-shard p50/p95/p99 over the recent
    #: completion window — the shard dimension of the latency
    #: percentiles.  ``ipc_*_bytes`` count *control-pipe* traffic only
    #: (pickled descriptors), while ``shm_*_bytes`` count the payload
    #: bytes that moved through shared-memory planes — the gap between
    #: the two is the zero-copy contract made measurable.
    shard_rebalances: int = 0
    shard_errors: int = 0
    ipc_tx_bytes: int = 0
    ipc_rx_bytes: int = 0
    shm_in_bytes: int = 0
    shm_out_bytes: int = 0
    shards: Dict[str, dict] = field(default_factory=dict)
    shard_latency_ms: Dict[str, Dict[str, float]] = field(
        default_factory=dict)
    #: Incremental re-simulation counters: lanes actually dispatched vs
    #: lanes served by splicing a cached base arena, summed over every
    #: dispatched batch.  ``delta_fraction`` is the evaluated share —
    #: 1.0 means the delta path never saved anything.
    lanes_evaluated: int = 0
    lanes_spliced: int = 0

    @property
    def delta_fraction(self) -> float:
        """Evaluated share of (evaluated + spliced) lanes."""
        total = self.lanes_evaluated + self.lanes_spliced
        return 1.0 if total == 0 else self.lanes_evaluated / total

    @property
    def base_hits(self) -> int:
        """Delta selections served from the cache's base ring."""
        return int(self.cache.get("base_hits", 0))

    @property
    def base_bytes_pinned(self) -> int:
        """Bytes currently pinned by retained base arenas."""
        return int(self.cache.get("base_bytes_pinned", 0))

    @property
    def integrity_evictions(self) -> int:
        """Cache entries evicted on checksum mismatch (served as misses)."""
        return int(self.cache.get("integrity_evictions", 0))

    @property
    def coalesce_factor(self) -> float:
        """Jobs per engine dispatch (1.0 = no coalescing happened)."""
        if self.batches_dispatched == 0:
            return 1.0
        return self.jobs_batched / self.batches_dispatched

    @property
    def mean_occupancy(self) -> float:
        """Slots per dispatched batch."""
        if self.batches_dispatched == 0:
            return 0.0
        return self.slots_dispatched / self.batches_dispatched

    def to_dict(self) -> dict:
        return {
            "jobs_submitted": self.jobs_submitted,
            "jobs_completed": self.jobs_completed,
            "jobs_failed": self.jobs_failed,
            "jobs_rejected": self.jobs_rejected,
            "queue_depth": self.queue_depth,
            "batches_dispatched": self.batches_dispatched,
            "jobs_batched": self.jobs_batched,
            "slots_dispatched": self.slots_dispatched,
            "coalesce_factor": self.coalesce_factor,
            "mean_occupancy": self.mean_occupancy,
            "occupancy_histogram": dict(self.occupancy_histogram),
            "cache": dict(self.cache),
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p95_ms": self.latency_p95_ms,
            "latency_p99_ms": self.latency_p99_ms,
            "phase_seconds": dict(self.phase_seconds),
            "jobs_timed_out": self.jobs_timed_out,
            "jobs_cancelled": self.jobs_cancelled,
            "breaker_rejections": self.breaker_rejections,
            "workers_replaced": self.workers_replaced,
            "workers_hung": self.workers_hung,
            "batches_requeued": self.batches_requeued,
            "backend_demotions": self.backend_demotions,
            "integrity_evictions": self.integrity_evictions,
            "breakers": {key: dict(value)
                         for key, value in self.breakers.items()},
            "shard_rebalances": self.shard_rebalances,
            "shard_errors": self.shard_errors,
            "ipc_tx_bytes": self.ipc_tx_bytes,
            "ipc_rx_bytes": self.ipc_rx_bytes,
            "shm_in_bytes": self.shm_in_bytes,
            "shm_out_bytes": self.shm_out_bytes,
            "shards": {key: dict(value)
                       for key, value in self.shards.items()},
            "shard_latency_ms": {key: dict(value)
                                 for key, value in
                                 self.shard_latency_ms.items()},
            "lanes_evaluated": self.lanes_evaluated,
            "lanes_spliced": self.lanes_spliced,
            "delta_fraction": self.delta_fraction,
            "base_hits": self.base_hits,
            "base_bytes_pinned": self.base_bytes_pinned,
        }

    def summary(self) -> str:
        """Human-readable digest for the CLI."""
        lines = [
            f"service: {self.jobs_submitted} submitted, "
            f"{self.jobs_completed} completed, {self.jobs_failed} failed, "
            f"{self.jobs_rejected} rejected, queue depth {self.queue_depth}",
            f"  batching: {self.batches_dispatched} dispatches, "
            f"coalesce factor {self.coalesce_factor:.2f}, "
            f"mean occupancy {self.mean_occupancy:.1f} slots",
        ]
        occupied = {k: v for k, v in self.occupancy_histogram.items() if v}
        if occupied:
            lines.append("  occupancy (slots/batch): "
                         + ", ".join(f"{k}: {v}"
                                     for k, v in occupied.items()))
        if self.cache:
            lines.append(
                f"  cache: {self.cache.get('hits', 0):.0f} hits / "
                f"{self.cache.get('misses', 0):.0f} misses "
                f"(rate {self.cache.get('hit_rate', 0.0):.2f}), "
                f"{self.cache.get('evictions', 0):.0f} evictions")
        if self.lanes_spliced:
            lines.append(
                f"  delta: {self.lanes_spliced} lanes spliced / "
                f"{self.lanes_evaluated} evaluated "
                f"(fraction {self.delta_fraction:.3f}), "
                f"{self.base_hits} base hits, "
                f"{self.base_bytes_pinned} B pinned")
        if self.latency_p50_ms is not None:
            lines.append(
                f"  latency: p50 {self.latency_p50_ms:.1f} ms, "
                f"p95 {self.latency_p95_ms:.1f} ms, "
                f"p99 {self.latency_p99_ms:.1f} ms")
        if any(self.phase_seconds.values()):
            lines.append("  engine phases: " + ", ".join(
                f"{name} {seconds:.3f}s"
                for name, seconds in self.phase_seconds.items()))
        faults_line = []
        if self.jobs_timed_out:
            faults_line.append(f"{self.jobs_timed_out} timed out")
        if self.jobs_cancelled:
            faults_line.append(f"{self.jobs_cancelled} cancelled")
        if self.breaker_rejections:
            faults_line.append(
                f"{self.breaker_rejections} breaker rejections")
        if self.workers_replaced:
            faults_line.append(
                f"{self.workers_replaced} workers replaced "
                f"({self.workers_hung} hung), "
                f"{self.batches_requeued} batches re-queued")
        if self.backend_demotions:
            faults_line.append(f"{self.backend_demotions} backend demotions")
        if self.integrity_evictions:
            faults_line.append(
                f"{self.integrity_evictions} integrity evictions")
        if faults_line:
            lines.append("  failures: " + ", ".join(faults_line))
        open_breakers = {key: value["state"]
                         for key, value in self.breakers.items()
                         if value.get("state") != "closed"}
        if open_breakers:
            lines.append("  breakers: " + ", ".join(
                f"{key}: {state}" for key, state in open_breakers.items()))
        if self.shards:
            lines.append(
                f"  shards: {len(self.shards)} processes, "
                f"{self.shard_rebalances} rebalances, "
                f"ipc {self.ipc_tx_bytes + self.ipc_rx_bytes} B, "
                f"shm {self.shm_in_bytes + self.shm_out_bytes} B")
            for key in sorted(self.shards, key=int):
                entry = self.shards[key]
                pcts = self.shard_latency_ms.get(key)
                tail = (f", p95 {pcts['p95']:.1f} ms"
                        if pcts else "")
                lines.append(
                    f"    shard {key}: {entry.get('dispatches', 0)} "
                    f"dispatches, {entry.get('jobs', 0)} jobs, "
                    f"queue {entry.get('queue_depth', 0)}, "
                    f"{entry.get('respawns', 0)} respawns{tail}")
        return "\n".join(lines)


@dataclass
class MetricsRecorder:
    """Thread-safe accumulator behind :meth:`SimulationService.metrics`."""

    jobs_submitted: int = 0
    jobs_completed: int = 0
    jobs_failed: int = 0
    jobs_rejected: int = 0
    jobs_timed_out: int = 0
    jobs_cancelled: int = 0
    breaker_rejections: int = 0
    backend_demotions: int = 0
    batches_dispatched: int = 0
    jobs_batched: int = 0
    slots_dispatched: int = 0
    lanes_evaluated: int = 0
    lanes_spliced: int = 0
    _occupancy: List[int] = field(
        default_factory=lambda: [0] * (len(OCCUPANCY_EDGES) + 1))
    _latencies: deque = field(
        default_factory=lambda: deque(maxlen=LATENCY_WINDOW))
    #: Per-shard completion-latency windows (shard index -> deque).
    _shard_latencies: Dict[int, deque] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock)
    #: Exponential moving average of per-job service seconds (the
    #: admission controller's retry-after estimator).
    ema_job_seconds: float = 0.0
    _phase_seconds: Dict[str, float] = field(default_factory=dict)

    def record_submitted(self, jobs: int = 1) -> None:
        with self._lock:
            self.jobs_submitted += jobs

    def record_rejected(self) -> None:
        with self._lock:
            self.jobs_rejected += 1

    def record_batch(self, num_jobs: int, num_slots: int) -> None:
        with self._lock:
            self.batches_dispatched += 1
            self.jobs_batched += num_jobs
            self.slots_dispatched += num_slots
            bucket = len(OCCUPANCY_EDGES)
            for index, edge in enumerate(OCCUPANCY_EDGES):
                if num_slots <= edge:
                    bucket = index
                    break
            self._occupancy[bucket] += 1

    def record_phases(self, phases: Dict[str, float]) -> None:
        """Accumulate one dispatch's per-phase engine wall time."""
        with self._lock:
            for name, seconds in phases.items():
                self._phase_seconds[name] = (
                    self._phase_seconds.get(name, 0.0) + seconds)

    def record_completed(self, latency_seconds: float,
                         shard: Optional[int] = None) -> None:
        with self._lock:
            self.jobs_completed += 1
            self._latencies.append(latency_seconds)
            if shard is not None:
                window = self._shard_latencies.get(shard)
                if window is None:
                    window = self._shard_latencies[shard] = deque(
                        maxlen=LATENCY_WINDOW)
                window.append(latency_seconds)
            alpha = 0.2
            self.ema_job_seconds = (
                latency_seconds if self.ema_job_seconds == 0.0
                else (1 - alpha) * self.ema_job_seconds
                + alpha * latency_seconds)

    def record_failed(self) -> None:
        with self._lock:
            self.jobs_failed += 1

    def record_timed_out(self) -> None:
        with self._lock:
            self.jobs_timed_out += 1

    def record_cancelled(self) -> None:
        with self._lock:
            self.jobs_cancelled += 1

    def record_breaker_rejected(self) -> None:
        with self._lock:
            self.breaker_rejections += 1

    def record_demotions(self, count: int) -> None:
        with self._lock:
            self.backend_demotions += count

    def record_splice(self, evaluated: int, spliced: int) -> None:
        """Accumulate one batch's evaluated/spliced lane split."""
        with self._lock:
            self.lanes_evaluated += evaluated
            self.lanes_spliced += spliced

    def retry_after(self, backlog: int, workers: int) -> float:
        """Backpressure hint: expected drain time of the current backlog."""
        with self._lock:
            per_job = self.ema_job_seconds or 0.001
        return max(0.001, backlog * per_job / max(workers, 1))

    def snapshot(self, queue_depth: int,
                 cache_stats: Optional[dict] = None,
                 pool_stats: Optional[dict] = None,
                 breakers: Optional[Dict[str, dict]] = None) -> ServiceMetrics:
        pool_stats = pool_stats or {}
        with self._lock:
            latencies = np.asarray(self._latencies, dtype=np.float64)
            percentiles = (
                np.percentile(latencies, [50, 95, 99]) * 1e3
                if latencies.size else None)
            shard_latency_ms: Dict[str, Dict[str, float]] = {}
            for shard, window in self._shard_latencies.items():
                values = np.asarray(window, dtype=np.float64)
                if not values.size:
                    continue
                p50, p95, p99 = np.percentile(values, [50, 95, 99]) * 1e3
                shard_latency_ms[str(shard)] = {
                    "p50": float(p50), "p95": float(p95), "p99": float(p99)}
            return ServiceMetrics(
                jobs_submitted=self.jobs_submitted,
                jobs_completed=self.jobs_completed,
                jobs_failed=self.jobs_failed,
                jobs_rejected=self.jobs_rejected,
                queue_depth=queue_depth,
                batches_dispatched=self.batches_dispatched,
                jobs_batched=self.jobs_batched,
                slots_dispatched=self.slots_dispatched,
                occupancy_histogram={
                    _bucket_label(i): count
                    for i, count in enumerate(self._occupancy)},
                cache=dict(cache_stats or {}),
                latency_p50_ms=(float(percentiles[0])
                                if percentiles is not None else None),
                latency_p95_ms=(float(percentiles[1])
                                if percentiles is not None else None),
                latency_p99_ms=(float(percentiles[2])
                                if percentiles is not None else None),
                phase_seconds=dict(self._phase_seconds),
                jobs_timed_out=self.jobs_timed_out,
                jobs_cancelled=self.jobs_cancelled,
                breaker_rejections=self.breaker_rejections,
                backend_demotions=self.backend_demotions,
                workers_replaced=pool_stats.get("workers_replaced", 0),
                workers_hung=pool_stats.get("workers_hung", 0),
                batches_requeued=pool_stats.get("batches_requeued", 0),
                breakers=dict(breakers or {}),
                shard_rebalances=pool_stats.get("shard_rebalances", 0),
                shard_errors=pool_stats.get("shard_errors", 0),
                ipc_tx_bytes=pool_stats.get("ipc_tx_bytes", 0),
                ipc_rx_bytes=pool_stats.get("ipc_rx_bytes", 0),
                shm_in_bytes=pool_stats.get("shm_in_bytes", 0),
                shm_out_bytes=pool_stats.get("shm_out_bytes", 0),
                shards=dict(pool_stats.get("shards", {})),
                shard_latency_ms=shard_latency_ms,
                lanes_evaluated=self.lanes_evaluated,
                lanes_spliced=self.lanes_spliced,
            )
