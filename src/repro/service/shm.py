"""Shared-memory arenas for the sharded service.

The router (parent) and its shard worker processes exchange *stimuli*
and *result waveforms* through ``multiprocessing.shared_memory``
segments instead of pickling them through a pipe: the parent packs a
batch's pattern pairs and slot plane into a per-shard **input plane**,
the shard runs the engine and writes the packed waveform payload into a
per-shard **result plane**, and the parent maps that segment zero-copy
for demultiplexing.  The control pipe only ever carries small pickled
descriptors (segment names, offsets, counters), which is what the
``ipc_*_bytes`` counters in :class:`~repro.service.metrics.ServiceMetrics`
measure.

Ownership and naming rules (see ``docs/architecture.md`` §11):

* every segment is named ``repro-svc-<owner pid>-<tag>``; the *owner*
  is the process that created the segment and the only one that may
  unlink it during normal operation;
* input planes are owned by the parent, result planes by the shard
  that writes them;
* after a shard dies, the parent reclaims the dead process's segments
  by name (:func:`sweep_pid`) — the owner pid in the name makes that
  safe: a dead pid cannot be writing;
* at startup, :func:`sweep_orphans` unlinks every ``repro-svc-*``
  segment whose embedded owner pid is no longer alive, so a parent
  crash (SIGKILL, OOM) never leaks ``/dev/shm`` space past the next
  service start.

Python < 3.13 footgun: merely *attaching* to a segment registers it
with the attaching process's ``resource_tracker``, which unlinks it
when that process exits — destroying a segment the owner still uses.
:func:`attach` therefore passes ``track=False`` where supported and
unregisters the segment from the tracker otherwise.
"""

from __future__ import annotations

import os
import re
from multiprocessing import shared_memory
from typing import List, Optional, Tuple

import numpy as np

__all__ = [
    "SEGMENT_PREFIX",
    "SharedArena",
    "segment_name",
    "sweep_orphans",
    "sweep_pid",
    "unlink_segment",
]

#: Leading component of every segment name the service creates.
SEGMENT_PREFIX = "repro-svc"

#: Where POSIX shared memory appears as files (Linux).  The sweep is a
#: graceful no-op on platforms without it.
_SHM_ROOT = "/dev/shm"

_NAME_RE = re.compile(rf"^{SEGMENT_PREFIX}-(\d+)-")


def segment_name(owner_pid: int, tag: str) -> str:
    """Canonical segment name: ``repro-svc-<owner pid>-<tag>``."""
    return f"{SEGMENT_PREFIX}-{owner_pid}-{tag}"


def _unregister(shm: shared_memory.SharedMemory) -> None:
    try:
        from multiprocessing import resource_tracker
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals moved
        pass


def _quiet_unlink(shm: shared_memory.SharedMemory) -> None:
    """``shm.unlink()`` without resource-tracker noise.

    ``SharedMemory.unlink`` unregisters from the tracker — but we
    already unregistered at create/attach time, and an unmatched
    unregister makes the tracker process print a ``KeyError`` traceback
    at exit.  Re-register first so the pair balances.  On Python 3.13+
    a ``track=False`` handle skips the unregister (``_track`` is
    False), so no rebalance is needed there.
    """
    if getattr(shm, "_track", True):
        try:
            from multiprocessing import resource_tracker
            resource_tracker.register(shm._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker internals moved
            pass
    shm.unlink()


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        # Python < 3.13: attach, then undo the resource_tracker
        # registration so this process's exit cannot unlink a segment
        # it does not own.
        shm = shared_memory.SharedMemory(name=name)
        _unregister(shm)
        return shm


class SharedArena:
    """One shared-memory segment plus numpy views into it.

    Create with :meth:`create` (owner) or :meth:`attach` (reader /
    writer that does not own the lifetime).  ``close()`` drops this
    process's mapping; ``unlink()`` destroys the segment and is the
    owner's job — attachers never unlink during normal operation.
    """

    def __init__(self, shm: shared_memory.SharedMemory, owner: bool) -> None:
        self._shm = shm
        self.owner = owner
        self.name = shm.name
        self.size = shm.size
        self._closed = False

    @classmethod
    def create(cls, name: str, size: int) -> "SharedArena":
        shm = shared_memory.SharedMemory(name=name, create=True,
                                         size=max(int(size), 1))
        arena = cls(shm, owner=True)
        # The owner manages the lifetime explicitly (and sweep_* covers
        # crashes); keep the tracker out of it so a tracker teardown in
        # one process cannot destroy segments another still maps.
        _unregister(shm)
        return arena

    @classmethod
    def attach(cls, name: str) -> "SharedArena":
        return cls(_attach_untracked(name), owner=False)

    @property
    def buf(self) -> memoryview:
        return self._shm.buf

    def ndarray(self, shape: Tuple[int, ...], dtype, offset: int = 0
                ) -> np.ndarray:
        """A zero-copy numpy view of ``shape``/``dtype`` at ``offset``."""
        return np.ndarray(shape, dtype=dtype, buffer=self._shm.buf,
                          offset=offset)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
        except (OSError, BufferError):  # pragma: no cover - platform noise
            pass

    def unlink(self) -> None:
        """Destroy the segment (idempotent; missing segment is fine)."""
        try:
            _quiet_unlink(self._shm)
        except FileNotFoundError:
            pass

    def __enter__(self) -> "SharedArena":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
        if self.owner:
            self.unlink()


def unlink_segment(name: str) -> bool:
    """Unlink a segment by name; True when it existed."""
    try:
        shm = _attach_untracked(name)
    except FileNotFoundError:
        return False
    try:
        _quiet_unlink(shm)
    except FileNotFoundError:  # pragma: no cover - lost a race
        return False
    finally:
        try:
            shm.close()
        except (OSError, BufferError):  # pragma: no cover
            pass
    return True


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, not ours
        return True
    return True


def _service_segments(root: str = _SHM_ROOT) -> List[Tuple[str, int]]:
    try:
        names = os.listdir(root)
    except OSError:
        return []
    found = []
    for name in names:
        match = _NAME_RE.match(name)
        if match:
            found.append((name, int(match.group(1))))
    return found


def sweep_pid(pid: int, root: str = _SHM_ROOT) -> List[str]:
    """Unlink every service segment owned by (dead) ``pid``.

    The router calls this after a shard process dies: the shard owned
    its result planes, and a dead owner cannot reclaim them itself.
    Only call with a pid known to be dead — the name embeds the owner,
    so this never touches a live process's segments by accident.
    """
    removed = []
    for name, owner in _service_segments(root):
        if owner == pid and unlink_segment(name):
            removed.append(name)
    return removed


def sweep_orphans(root: str = _SHM_ROOT,
                  skip_pid: Optional[int] = None) -> List[str]:
    """Unlink every service segment whose owner process is dead.

    Run at router startup: a parent crash leaves both its own input
    planes and its shards' result planes behind (a SIGKILL outruns any
    ``atexit``); the embedded owner pid makes them identifiable and
    safely reclaimable by the next service on the machine.  Returns the
    reclaimed segment names.
    """
    removed = []
    for name, owner in _service_segments(root):
        if owner == skip_pid or _pid_alive(owner):
            continue
        if unlink_segment(name):
            removed.append(name)
    return removed
