"""Fingerprinted LRU result cache with content-integrity verification.

Keys are the shared :func:`repro.runtime.fingerprint.job_fingerprint`
SHA-256 digests — the exact identity the campaign checkpoint manifest
uses — so a cached entry answers a job precisely when a checkpoint
directory would have resumed it: same circuit, stimuli, slot plane,
semantic config, kernel table and variation model.  Operational knobs
(backend, batching policy, capacity, fault plans) never split the cache.

Integrity: admission deep-copies the waveform arrays (a cached entry
must not share memory with the result already handed to the submitting
caller — and must not pin the engine's whole flat unpack buffer through
zero-copy slices) and stores a CRC32 over the copied content.  Every
hit re-derives the checksum; a mismatch means the entry rotted in
memory (or a ``cache.get`` fault corrupted it), so it is **evicted and
counted** (``integrity_evictions``), the lookup reports a miss, and the
job recomputes instead of serving poisoned waveforms.
"""

from __future__ import annotations

import threading
import zlib
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import faults
from repro.waveform.waveform import Waveform

__all__ = ["CachedResult", "ResultCache", "waveform_checksum"]


@dataclass(frozen=True)
class CachedResult:
    """Engine output retained for one job fingerprint."""

    waveforms: List[Dict[str, Waveform]]
    slot_labels: List[Tuple[int, float]]
    engine: str
    gate_evaluations: int
    #: CRC32 of the waveform content at admission (0 = unverified).
    checksum: int = 0


def waveform_checksum(waveforms: List[Dict[str, Waveform]]) -> int:
    """CRC32 over a result's full waveform content.

    Covers net names, initial values and every toggle time, in slot
    order with nets sorted per slot — the iteration order is part of
    the checksum contract, so admit and verify must both use this
    function.
    """
    crc = 0
    for nets in waveforms:
        for net in sorted(nets):
            wave = nets[net]
            crc = zlib.crc32(net.encode("utf-8"), crc)
            crc = zlib.crc32(bytes((wave.initial,)), crc)
            crc = zlib.crc32(np.ascontiguousarray(wave.times), crc)
    return crc


def _copied_entry(entry: CachedResult) -> CachedResult:
    waveforms = [
        {net: Waveform.trusted(wave.initial, wave.times.copy())
         for net, wave in nets.items()}
        for nets in entry.waveforms
    ]
    return CachedResult(
        waveforms=waveforms,
        slot_labels=list(entry.slot_labels),
        engine=entry.engine,
        gate_evaluations=entry.gate_evaluations,
        checksum=waveform_checksum(waveforms),
    )


class ResultCache:
    """Thread-safe LRU over job fingerprints with hit/miss/eviction counters."""

    def __init__(self, max_entries: int) -> None:
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, CachedResult]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.integrity_evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def enabled(self) -> bool:
        return self.max_entries > 0

    def get(self, fingerprint: str) -> Optional[CachedResult]:
        if not self.enabled:
            return None
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                self.misses += 1
                return None
            # Fault seam: fires on the hit path, before verification —
            # a ``corrupt`` rule rots this entry's (private) arrays,
            # which the checksum below must catch.
            faults.trip("cache.get", corruptible=entry.waveforms)
            if waveform_checksum(entry.waveforms) != entry.checksum:
                del self._entries[fingerprint]
                self.integrity_evictions += 1
                self.misses += 1
                return None
            self._entries.move_to_end(fingerprint)
            self.hits += 1
            return entry

    def put(self, fingerprint: str, entry: CachedResult,
            copy: bool = True) -> None:
        """Admit one entry; verification-on-hit applies either way.

        ``copy=False`` is the demux hot-loop's fast path: the caller
        guarantees the entry's arrays are already private (the service
        builds them with one bulk gather per job instead of one
        ``ndarray.copy`` per waveform), so admission only derives the
        missing checksum instead of deep-copying a second time.
        """
        if not self.enabled:
            return
        if copy:
            entry = _copied_entry(entry)
        elif entry.checksum == 0:
            entry = replace(entry,
                            checksum=waveform_checksum(entry.waveforms))
        with self._lock:
            if fingerprint in self._entries:
                self._entries.move_to_end(fingerprint)
                self._entries[fingerprint] = entry
                return
            self._entries[fingerprint] = entry
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 before the first lookup)."""
        total = self.hits + self.misses
        return 0.0 if total == 0 else self.hits / total

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "integrity_evictions": self.integrity_evictions,
                "hit_rate": self.hit_rate,
            }
