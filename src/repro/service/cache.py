"""Fingerprinted LRU result cache with content-integrity verification.

Keys are the shared :func:`repro.runtime.fingerprint.job_fingerprint`
SHA-256 digests — the exact identity the campaign checkpoint manifest
uses — so a cached entry answers a job precisely when a checkpoint
directory would have resumed it: same circuit, stimuli, slot plane,
semantic config, kernel table and variation model.  Operational knobs
(backend, batching policy, capacity, fault plans) never split the cache.

Integrity: admission deep-copies the waveform arrays (a cached entry
must not share memory with the result already handed to the submitting
caller — and must not pin the engine's whole flat unpack buffer through
zero-copy slices) and stores a CRC32 over the copied content.  Every
hit re-derives the checksum; a mismatch means the entry rotted in
memory (or a ``cache.get`` fault corrupted it), so it is **evicted and
counted** (``integrity_evictions``), the lookup reports a miss, and the
job recomputes instead of serving poisoned waveforms.
"""

from __future__ import annotations

import threading
import zlib
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import faults
from repro.waveform.waveform import Waveform

__all__ = ["CachedBase", "CachedResult", "ResultCache", "base_checksum",
           "waveform_checksum"]


@dataclass(frozen=True)
class CachedResult:
    """Engine output retained for one job fingerprint."""

    waveforms: List[Dict[str, Waveform]]
    slot_labels: List[Tuple[int, float]]
    engine: str
    gate_evaluations: int
    #: CRC32 of the waveform content at admission (0 = unverified).
    checksum: int = 0


def waveform_checksum(waveforms: List[Dict[str, Waveform]]) -> int:
    """CRC32 over a result's full waveform content.

    Covers net names, initial values and every toggle time, in slot
    order with nets sorted per slot — the iteration order is part of
    the checksum contract, so admit and verify must both use this
    function.
    """
    crc = 0
    for nets in waveforms:
        for net in sorted(nets):
            wave = nets[net]
            crc = zlib.crc32(net.encode("utf-8"), crc)
            crc = zlib.crc32(bytes((wave.initial,)), crc)
            crc = zlib.crc32(np.ascontiguousarray(wave.times), crc)
    return crc


@dataclass(frozen=True)
class CachedBase:
    """One pinned base arena in a compatibility group's delta ring.

    ``arena`` is a :class:`~repro.simulation.delta.BaseArena` whose
    payload the service hands over without deep-copying (the engine's
    capture already owns private memory — the base-ring extension of
    the ``put(copy=False)`` fast path); ``tag`` is the producing job's
    fingerprint, which both deduplicates retention and lets operators
    trace a splice back to its origin run.
    """

    arena: object
    tag: str
    checksum: int


def base_checksum(arena) -> int:
    """CRC32 over a base arena's full content.

    Covers the waveform payload *and* the selection metadata — a rotted
    stimulus plane would silently mis-map slots even with pristine
    toggle times, so everything :func:`select_delta` or the splice path
    reads is part of the chain.
    """
    crc = 0
    for array in (arena.initial, arena.counts, arena.starts, arena.times,
                  arena.v1, arena.v2, arena.voltages, arena.global_slots):
        crc = zlib.crc32(np.ascontiguousarray(array), crc)
    return crc


def _base_corruptible(arena) -> List[Dict[str, Waveform]]:
    """A ``[{net: Waveform}]`` view of a base arena for the fault
    layer's ``corrupt`` rules: toggle-bearing ``(net, slot)`` blocks as
    zero-copy :class:`Waveform` views into ``arena.times``, so a flipped
    mantissa bit lands in the pinned payload itself (and the next
    integrity verification must catch it).  Built only when a fault plan
    is armed — the hot path never materializes it.
    """
    views: List[Dict[str, Waveform]] = []
    rows, cols = np.nonzero(arena.counts)
    per_slot: Dict[int, Dict[str, Waveform]] = {}
    for row, col in zip(rows.tolist(), cols.tolist()):
        start = int(arena.starts[row, col])
        count = int(arena.counts[row, col])
        per_slot.setdefault(col, {})[f"n{row}"] = Waveform.trusted(
            int(arena.initial[row, col]), arena.times[start:start + count])
    views.extend(per_slot.values())
    return views


def _copied_entry(entry: CachedResult) -> CachedResult:
    waveforms = [
        {net: Waveform.trusted(wave.initial, wave.times.copy())
         for net, wave in nets.items()}
        for nets in entry.waveforms
    ]
    return CachedResult(
        waveforms=waveforms,
        slot_labels=list(entry.slot_labels),
        engine=entry.engine,
        gate_evaluations=entry.gate_evaluations,
        checksum=waveform_checksum(waveforms),
    )


class ResultCache:
    """Thread-safe LRU over job fingerprints with hit/miss/eviction counters."""

    def __init__(self, max_entries: int, max_bases: int = 0) -> None:
        self.max_entries = max_entries
        #: Per compatibility group, how many base arenas to pin for
        #: incremental re-simulation (0 disables the base ring).
        self.max_bases = max_bases
        self._entries: "OrderedDict[str, CachedResult]" = OrderedDict()
        self._bases: "OrderedDict[str, OrderedDict[str, CachedBase]]" = \
            OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.integrity_evictions = 0
        #: Delta selections served from the base ring.
        self.base_hits = 0
        #: Bytes currently pinned by retained base arenas.
        self.base_bytes_pinned = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def enabled(self) -> bool:
        return self.max_entries > 0

    def get(self, fingerprint: str) -> Optional[CachedResult]:
        if not self.enabled:
            return None
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                self.misses += 1
                return None
            # Fault seam: fires on the hit path, before verification —
            # a ``corrupt`` rule rots this entry's (private) arrays,
            # which the checksum below must catch.
            faults.trip("cache.get", corruptible=entry.waveforms)
            if waveform_checksum(entry.waveforms) != entry.checksum:
                del self._entries[fingerprint]
                self.integrity_evictions += 1
                self.misses += 1
                return None
            self._entries.move_to_end(fingerprint)
            self.hits += 1
            return entry

    def put(self, fingerprint: str, entry: CachedResult,
            copy: bool = True) -> None:
        """Admit one entry; verification-on-hit applies either way.

        ``copy=False`` is the demux hot-loop's fast path: the caller
        guarantees the entry's arrays are already private (the service
        builds them with one bulk gather per job instead of one
        ``ndarray.copy`` per waveform), so admission only derives the
        missing checksum instead of deep-copying a second time.
        """
        if not self.enabled:
            return
        if copy:
            entry = _copied_entry(entry)
        elif entry.checksum == 0:
            entry = replace(entry,
                            checksum=waveform_checksum(entry.waveforms))
        with self._lock:
            if fingerprint in self._entries:
                self._entries.move_to_end(fingerprint)
                self._entries[fingerprint] = entry
                return
            self._entries[fingerprint] = entry
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def put_base(self, group_key: str, arena, tag: str) -> None:
        """Pin a base arena in ``group_key``'s delta ring.

        No deep copy: the arena's payload is already private (engine
        capture / per-job ``take``), so retention is the base-ring
        extension of the ``put(copy=False)`` fast path — admission only
        derives the integrity checksum.  The ring holds the newest
        ``max_bases`` arenas per group; re-admitting an existing ``tag``
        is a no-op (the splice of a fully cached job must not displace
        the ring's diversity with a byte-identical duplicate).
        """
        if self.max_bases <= 0 or not self.enabled:
            return
        entry = CachedBase(arena=arena, tag=tag,
                           checksum=base_checksum(arena))
        with self._lock:
            ring = self._bases.setdefault(group_key, OrderedDict())
            if tag in ring:
                return
            ring[tag] = entry
            self.base_bytes_pinned += arena.nbytes
            while len(ring) > self.max_bases:
                _, dropped = ring.popitem(last=False)
                self.base_bytes_pinned -= dropped.arena.nbytes
                self.evictions += 1

    def bases_for(self, group_key: str) -> List[object]:
        """Integrity-verified candidate base arenas, newest first.

        Every lookup re-derives each candidate's checksum (same
        verify-on-hit contract as :meth:`get`); a mismatch evicts the
        rotted arena and counts an ``integrity_eviction`` instead of
        letting a poisoned base splice into fresh results.  The
        ``cache.get`` fault seam fires per candidate — but its
        corruptible waveform view is only materialized while a fault
        plan is armed.
        """
        if self.max_bases <= 0 or not self.enabled:
            return []
        with self._lock:
            ring = self._bases.get(group_key)
            if not ring:
                return []
            survivors: List[object] = []
            for tag in list(ring):
                entry = ring[tag]
                faults.trip(
                    "cache.get",
                    corruptible=(_base_corruptible(entry.arena)
                                 if faults.active_plan() is not None
                                 else None))
                if base_checksum(entry.arena) != entry.checksum:
                    del ring[tag]
                    self.base_bytes_pinned -= entry.arena.nbytes
                    self.integrity_evictions += 1
                    continue
                survivors.append(entry.arena)
            return survivors[::-1]

    def record_base_hit(self) -> None:
        """Count one delta selection served from the base ring."""
        with self._lock:
            self.base_hits += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bases.clear()
            self.base_bytes_pinned = 0

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 before the first lookup)."""
        total = self.hits + self.misses
        return 0.0 if total == 0 else self.hits / total

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "integrity_evictions": self.integrity_evictions,
                "hit_rate": self.hit_rate,
                "bases": sum(len(ring) for ring in self._bases.values()),
                "max_bases": self.max_bases,
                "base_hits": self.base_hits,
                "base_bytes_pinned": self.base_bytes_pinned,
            }
