"""Fingerprinted LRU result cache.

Keys are the shared :func:`repro.runtime.fingerprint.job_fingerprint`
SHA-256 digests — the exact identity the campaign checkpoint manifest
uses — so a cached entry answers a job precisely when a checkpoint
directory would have resumed it: same circuit, stimuli, slot plane,
semantic config, kernel table and variation model.  Operational knobs
(backend, batching policy, capacity) never split the cache.

Entries are immutable once stored: the waveform lists come straight
from the engine's demultiplexed output and are handed back as shallow
copies, so one caller mutating its per-slot dict cannot poison another
caller's hit.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.waveform.waveform import Waveform

__all__ = ["CachedResult", "ResultCache"]


@dataclass(frozen=True)
class CachedResult:
    """Engine output retained for one job fingerprint."""

    waveforms: List[Dict[str, Waveform]]
    slot_labels: List[Tuple[int, float]]
    engine: str
    gate_evaluations: int


class ResultCache:
    """Thread-safe LRU over job fingerprints with hit/miss/eviction counters."""

    def __init__(self, max_entries: int) -> None:
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, CachedResult]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def enabled(self) -> bool:
        return self.max_entries > 0

    def get(self, fingerprint: str) -> Optional[CachedResult]:
        if not self.enabled:
            return None
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(fingerprint)
            self.hits += 1
            return entry

    def put(self, fingerprint: str, entry: CachedResult) -> None:
        if not self.enabled:
            return
        with self._lock:
            if fingerprint in self._entries:
                self._entries.move_to_end(fingerprint)
                self._entries[fingerprint] = entry
                return
            self._entries[fingerprint] = entry
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 before the first lookup)."""
        total = self.hits + self.misses
        return 0.0 if total == 0 else self.hits / total

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": self.hit_rate,
            }
