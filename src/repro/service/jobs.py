"""Request/response types of the simulation service.

A *job* is the fine-grained unit callers think in: one circuit (by
fingerprint), one set of stimuli, one slot plane of operating points,
one engine configuration.  The service's whole point is that jobs this
small are a terrible match for the engine — the 3-D slot-plane
parallelism (paper Sec. IV-B) only pays off when many of them share one
dispatch — so jobs carry everything the batcher needs to decide *which*
jobs may share a plane (``compat_key``) and everything the cache needs
to recognize a repeat (``fingerprint``).
"""

from __future__ import annotations

from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ServiceError
from repro.runtime.report import RunReport
from repro.simulation.base import PatternPair, SimulationConfig
from repro.simulation.grid import SlotPlan
from repro.waveform.waveform import Waveform

__all__ = ["JobHandle", "JobResult", "ServiceConfig", "SimulationJob"]

ADMISSION_POLICIES = ("block", "reject")


@dataclass(frozen=True)
class ServiceConfig:
    """Operational policy of a :class:`SimulationService`.

    None of these knobs affect computed waveforms — they decide how jobs
    are queued, coalesced and executed — so none of them enter the
    result-cache fingerprint.

    Attributes
    ----------
    max_batch_slots:
        Flush a pending batch once it holds this many slots (the shared
        slot plane's width; also the coalescing ceiling).
    max_wait_ms:
        Flush a pending batch once its oldest job has waited this long,
        even if the batch is not full (tail-latency bound).
    idle_ms:
        Flush everything pending once the intake queue has been empty
        for this long (no point holding jobs when nothing is arriving).
    queue_depth:
        Admission bound: maximum jobs admitted but not yet finished.
    admission:
        ``"block"`` — ``submit`` waits for capacity (optionally up to
        ``block_timeout_s``); ``"reject"`` — ``submit`` raises
        :class:`~repro.errors.AdmissionError` with a retry-after hint.
    block_timeout_s:
        Upper bound on a blocking admission wait (``None`` = forever).
    workers:
        Engine worker threads.  Each worker owns its own engine
        instances (the arena pool is not thread-safe), so memory scales
        with ``workers × circuits``.
    cache_entries:
        LRU result-cache capacity in jobs (``0`` disables caching).
    num_devices:
        ``> 1`` dispatches batches through
        :class:`~repro.simulation.multi.MultiDeviceWaveSim` with that
        many worker processes per batch.
    hang_timeout_s:
        A batch executing longer than this is declared hung: its worker
        slot is abandoned and replaced, the batch re-queued once (see
        :class:`~repro.service.pool.EnginePool`).  Must comfortably
        exceed the largest legitimate batch runtime.
    supervisor_tick_s:
        Supervisor scan period — the granularity of worker health
        checks and job-deadline expiry.
    breaker_failures:
        Consecutive dispatch failures that open a compatibility group's
        circuit breaker (:mod:`repro.service.breaker`).
    breaker_reset_s:
        Open-state hold time before the breaker lets one half-open
        probe job through.
    shards:
        ``> 0`` executes batches in that many spawned shard *processes*
        behind a :class:`~repro.service.router.ShardRouter` instead of
        the in-process engine pool: compatibility groups map to shards
        by consistent hash, stimuli and result waveforms travel through
        shared-memory planes, and dead shards are respawned with their
        in-flight batches re-queued once.  Mutually exclusive with
        ``num_devices > 1`` (a shard is already a process).
    shard_ring_slots:
        Input/result ring slots per shard — the per-shard pipelining
        depth (batches packed or awaiting demux at once).
    shard_queue_depth:
        Backlog (queued + in flight) at which a batch spills from its
        home shard to the least-loaded one.
    shard_spawn_timeout_s:
        A spawned shard that has not reported ready within this window
        is declared wedged, killed and respawned.
    shard_segment_bytes:
        Initial size of every shared-memory plane; planes grow (by
        powers of two, under a new segment generation) when a batch
        overflows them.
    delta_bases:
        Base arenas pinned per compatibility group for incremental
        re-simulation (``0`` disables the delta path).  A completed
        batch's full waveform state is retained (zero-copy, integrity
        checksummed); later near-duplicate jobs in the same group diff
        against the ring, splice unchanged slots and re-evaluate only
        the cone of influence of changed inputs.  Bit-identical to the
        full path, so — like every knob here — never part of the job
        fingerprint.  With ``shards > 0`` the ring lives shard-local
        (arenas never cross the process boundary); a respawned shard
        simply starts cold and falls back to full simulation.
    delta_threshold:
        Changed-input fraction at or above which a candidate base is
        rejected and the job runs the full path — a near-disjoint job
        must not pay cone overhead on top of a full simulation.
    """

    max_batch_slots: int = 256
    max_wait_ms: float = 5.0
    idle_ms: float = 2.0
    queue_depth: int = 1024
    admission: str = "block"
    block_timeout_s: Optional[float] = None
    workers: int = 1
    cache_entries: int = 256
    num_devices: int = 1
    hang_timeout_s: float = 30.0
    supervisor_tick_s: float = 0.05
    breaker_failures: int = 5
    breaker_reset_s: float = 1.0
    shards: int = 0
    shard_ring_slots: int = 4
    shard_queue_depth: int = 4
    shard_spawn_timeout_s: float = 60.0
    shard_segment_bytes: int = 1 << 20
    delta_bases: int = 4
    delta_threshold: float = 0.35

    def __post_init__(self) -> None:
        if self.max_batch_slots < 1:
            raise ServiceError("max_batch_slots must be positive")
        if self.max_wait_ms < 0 or self.idle_ms < 0:
            raise ServiceError("batching waits must be >= 0")
        if self.queue_depth < 1:
            raise ServiceError("queue_depth must be positive")
        if self.admission not in ADMISSION_POLICIES:
            raise ServiceError(
                f"admission must be one of {ADMISSION_POLICIES}, "
                f"got {self.admission!r}")
        if self.workers < 1:
            raise ServiceError("workers must be positive")
        if self.cache_entries < 0:
            raise ServiceError("cache_entries must be >= 0")
        if self.num_devices < 1:
            raise ServiceError("num_devices must be positive")
        if self.hang_timeout_s <= 0 or self.supervisor_tick_s <= 0:
            raise ServiceError("supervision timings must be positive")
        if self.breaker_failures < 1:
            raise ServiceError("breaker_failures must be positive")
        if self.breaker_reset_s < 0:
            raise ServiceError("breaker_reset_s must be >= 0")
        if self.shards < 0:
            raise ServiceError("shards must be >= 0")
        if self.shards > 0 and self.num_devices > 1:
            raise ServiceError(
                "shards and num_devices are mutually exclusive "
                "(a shard is already a process)")
        if self.shard_ring_slots < 1:
            raise ServiceError("shard_ring_slots must be positive")
        if self.shard_queue_depth < 1:
            raise ServiceError("shard_queue_depth must be positive")
        if self.shard_spawn_timeout_s <= 0:
            raise ServiceError("shard_spawn_timeout_s must be positive")
        if self.shard_segment_bytes < 4096:
            raise ServiceError("shard_segment_bytes must be >= 4096")
        if self.delta_bases < 0:
            raise ServiceError("delta_bases must be >= 0")
        if not 0.0 < self.delta_threshold <= 1.0:
            raise ServiceError("delta_threshold must be in (0, 1]")


@dataclass
class SimulationJob:
    """One admitted job travelling through the service (internal)."""

    circuit_key: str
    pairs: List[PatternPair]
    plan: SlotPlan
    config: SimulationConfig
    kernel_table: object
    variation: object
    fingerprint: str
    compat_key: str
    future: "Future[JobResult]" = field(default_factory=Future)
    submitted: float = 0.0
    #: Monotonic completion deadline (``None`` = wait forever).  The
    #: supervisor tick fails expired jobs with
    #: :class:`~repro.errors.JobDeadlineError`; already-expired jobs are
    #: excluded from the batches they rode in.
    deadline: Optional[float] = None
    deadline_ms: Optional[float] = None
    #: Index of the shard that executed (or is executing) the job's
    #: batch; ``None`` until dispatch, and always ``None`` without
    #: sharding.  Feeds the per-shard latency dimension of the metrics.
    shard: Optional[int] = None
    #: Optional :class:`~repro.simulation.delta.DeltaPlan` selected at
    #: submission against the cache's base ring; the batcher merges the
    #: plans of coalesced jobs into one batch-wide delta.
    delta: object = None

    @property
    def num_slots(self) -> int:
        return self.plan.num_slots


@dataclass
class JobResult:
    """Demultiplexed outcome of one job.

    ``report`` reuses the campaign vocabulary
    (:class:`~repro.runtime.report.RunReport`): the job appears as one
    chunk of the shared batch it rode in, with ``from_checkpoint`` set
    when the result came from the cache instead of an engine dispatch.
    ``gate_evaluations`` (and the report counters) are the job's
    slot-share of the batch totals — lane accounting is batch-wide, so
    per-job figures are an apportionment, not a separate measurement.
    """

    waveforms: List[Dict[str, Waveform]]
    slot_labels: List[Tuple[int, float]]
    engine: str
    gate_evaluations: int
    cache_hit: bool
    latency_seconds: float
    report: Optional[RunReport] = None

    @property
    def num_slots(self) -> int:
        return len(self.waveforms)

    def waveform(self, slot: int, net: str) -> Waveform:
        return self.waveforms[slot][net]

    def latest_arrival(self, slot: int, nets=None) -> float:
        """Latest toggle time over ``nets`` (default: all recorded nets)
        — the :class:`~repro.simulation.base.SimulationResult` contract,
        so the analysis layer accepts job results unchanged."""
        chosen = nets if nets is not None else list(self.waveforms[slot])
        latest = float("-inf")
        for net in chosen:
            latest = max(latest,
                         self.waveform(slot, net).latest_transition())
        return latest


class JobHandle:
    """Caller-side future for one submitted job."""

    def __init__(self, fingerprint: str, future: "Future[JobResult]",
                 canceller=None) -> None:
        self.fingerprint = fingerprint
        self._future = future
        self._canceller = canceller

    def done(self) -> bool:
        return self._future.done()

    def result(self, timeout: Optional[float] = None) -> JobResult:
        """Block until the job finishes; re-raises job failures."""
        return self._future.result(timeout=timeout)

    def exception(self, timeout: Optional[float] = None):
        return self._future.exception(timeout=timeout)

    def cancel(self) -> bool:
        """Cancel through the service (releases the job's backlog slot).

        Returns True when the job was settled as cancelled — its
        ``result()`` then raises
        :class:`~repro.errors.JobCancelledError` — and False when it
        had already completed or failed.  A job already riding a
        dispatched batch still executes; its result is discarded.
        """
        if self._canceller is None:
            return False
        return bool(self._canceller())


def resolved_handle(fingerprint: str, result: JobResult) -> JobHandle:
    """An already-completed handle (cache hits never enter the queue)."""
    future: "Future[JobResult]" = Future()
    future.set_result(result)
    return JobHandle(fingerprint, future)


def validate_job(compiled, pairs: Sequence[PatternPair], plan: SlotPlan,
                 kernel_table) -> None:
    """Fail fast at submission time with the engine's own checks.

    The engine would raise identically at dispatch time, but by then the
    job shares a batch — rejecting it synchronously keeps poison jobs
    out of other callers' planes.
    """
    if not pairs:
        raise ServiceError("job needs at least one pattern pair")
    widths = {p.width for p in pairs}
    if widths != {len(compiled.circuit.inputs)}:
        raise ServiceError(
            f"pattern width {sorted(widths)} does not match the "
            f"{len(compiled.circuit.inputs)} circuit inputs")
    if int(plan.pattern_indices.max()) >= len(pairs):
        raise ServiceError("slot plan references missing pattern index")
    if kernel_table is None and plan.distinct_voltages().size > 1:
        raise ServiceError(
            "static delay mode cannot differentiate operating points; "
            "pass a kernel_table for voltage-aware jobs")
