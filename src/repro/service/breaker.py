"""Per-compatibility-group circuit breaker.

A failing compatibility group — a circuit whose kernels crash, a config
that reliably overflows — must not keep burning engine workers while
healthy groups queue behind it.  Each group gets the classic
three-state breaker:

* **closed** — traffic flows; ``failure_threshold`` *consecutive*
  failures trip it open (any success resets the streak);
* **open** — submissions are refused with
  :class:`~repro.errors.CircuitOpenError` (carrying a retry-after hint)
  until ``reset_seconds`` elapse;
* **half-open** — exactly one probe job is admitted; its success closes
  the breaker, its failure re-opens it for another ``reset_seconds``.

Cache hits are served even while open (they touch no engine), and the
breaker only observes *dispatch* outcomes — admission rejections and
deadline expiries of still-queued jobs say nothing about the group's
health.
"""

from __future__ import annotations

import threading
import time as _time
from typing import Tuple

__all__ = ["CircuitBreaker"]

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half-open"


class CircuitBreaker:
    """Thread-safe consecutive-failure breaker for one compatibility group."""

    def __init__(self, failure_threshold: int = 5,
                 reset_seconds: float = 1.0) -> None:
        self.failure_threshold = failure_threshold
        self.reset_seconds = reset_seconds
        self._lock = threading.Lock()
        self._state = STATE_CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_inflight = False
        self.times_opened = 0
        self.rejections = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._peek_state(_time.monotonic())

    def _peek_state(self, now: float) -> str:
        if (self._state == STATE_OPEN
                and now - self._opened_at >= self.reset_seconds):
            return STATE_HALF_OPEN
        return self._state

    def allow(self, now: float = None) -> Tuple[bool, float]:
        """May a job enter?  Returns ``(allowed, retry_after_seconds)``.

        In half-open state the first caller wins the single probe slot;
        everyone else keeps being refused until the probe settles.
        """
        now = _time.monotonic() if now is None else now
        with self._lock:
            state = self._peek_state(now)
            if state == STATE_CLOSED:
                return True, 0.0
            if state == STATE_HALF_OPEN:
                if self._state == STATE_OPEN:
                    self._state = STATE_HALF_OPEN
                    self._probe_inflight = False
                if not self._probe_inflight:
                    self._probe_inflight = True
                    return True, 0.0
                self.rejections += 1
                return False, self.reset_seconds
            self.rejections += 1
            retry = max(self.reset_seconds - (now - self._opened_at), 0.001)
            return False, retry

    def record_success(self) -> None:
        with self._lock:
            self._state = STATE_CLOSED
            self._consecutive_failures = 0
            self._probe_inflight = False

    def record_failure(self, now: float = None) -> None:
        now = _time.monotonic() if now is None else now
        with self._lock:
            if self._state == STATE_HALF_OPEN:
                # The probe failed: straight back to open.
                self._state = STATE_OPEN
                self._opened_at = now
                self._probe_inflight = False
                self.times_opened += 1
                return
            self._consecutive_failures += 1
            if (self._state == STATE_CLOSED
                    and self._consecutive_failures >= self.failure_threshold):
                self._state = STATE_OPEN
                self._opened_at = now
                self.times_opened += 1

    def stats(self) -> dict:
        with self._lock:
            return {
                "state": self._peek_state(_time.monotonic()),
                "consecutive_failures": self._consecutive_failures,
                "times_opened": self.times_opened,
                "rejections": self.rejections,
            }
