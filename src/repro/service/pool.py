"""Supervised engine-worker pool.

The service used to dispatch batches through a bare
``ThreadPoolExecutor`` — fine until a worker *dies* (an injected
``WorkerDeathError``, or any future native crash surfacing as thread
death) or *hangs* (a wedged native kernel, an injected ``hang``), at
which point its in-flight batch simply never resolves and every rider
waits forever.  :class:`EnginePool` replaces it with worker threads a
supervisor actively watches:

* a **dead** worker (thread no longer alive, batch still assigned) is
  replaced and its batch re-queued **once** (``PendingBatch.requeued``);
  a second loss fails only that batch's jobs with
  :class:`~repro.errors.WorkerLostError`;
* a **hung** worker (batch executing past ``hang_timeout_s``) cannot be
  killed — Python threads are not cancellable — so its slot is
  *abandoned*: ownership of the batch transfers to the supervisor (same
  re-queue-once policy) and a fresh thread takes the slot.  If the
  stale thread eventually finishes, its completions are harmless — job
  futures settle exactly once and re-executed results are bit-identical
  by the service's bit-identity contract;
* every supervisor tick also invokes ``on_tick`` so the service can
  expire job deadlines without running its own timer thread.

Replacement threads build fresh engine instances on first use (the
service keys engines in ``threading.local``), so a worker lost mid-
batch never leaks a half-mutated arena into the next dispatch.
"""

from __future__ import annotations

import queue as _queue
import threading
import time as _time
from typing import Callable, Optional

from repro.errors import WorkerLostError
from repro.faults.plan import WorkerDeathError

__all__ = ["EnginePool"]

_STOP = object()


class _WorkerSlot:
    """One worker thread plus its in-flight batch (pool-lock guarded)."""

    __slots__ = ("thread", "item", "started", "stolen")

    def __init__(self) -> None:
        self.thread: Optional[threading.Thread] = None
        self.item = None
        self.started = 0.0
        #: Ownership transferred to the supervisor (hung-slot abandon):
        #: the stale thread must not settle or decrement anything.
        self.stolen = False


class EnginePool:
    """Worker threads with death/hang supervision and re-queue-once."""

    def __init__(
        self,
        workers: int,
        handler: Callable,
        on_batch_lost: Callable,
        hang_timeout_s: float = 30.0,
        tick_s: float = 0.05,
        on_tick: Optional[Callable[[], None]] = None,
        name: str = "repro-service",
    ) -> None:
        self._handler = handler
        self._on_batch_lost = on_batch_lost
        self._hang_timeout_s = hang_timeout_s
        self._tick_s = tick_s
        self._on_tick = on_tick
        self._name = name
        self._queue: "_queue.Queue" = _queue.Queue()
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._outstanding = 0
        self._closed = False
        self._serial = 0
        self.workers_replaced = 0
        self.workers_hung = 0
        self.batches_requeued = 0
        self._slots = [self._spawn(index) for index in range(workers)]
        self._stop_supervisor = threading.Event()
        self._supervisor = threading.Thread(
            target=self._supervise, name=f"{name}-supervisor", daemon=True)
        self._supervisor.start()

    # -- submission -----------------------------------------------------------

    def submit(self, batch) -> None:
        """Queue one batch for execution (one ``handler(batch)`` call)."""
        with self._lock:
            self._outstanding += 1
        self._queue.put(batch)

    def stats(self) -> dict:
        with self._lock:
            return {
                "workers_replaced": self.workers_replaced,
                "workers_hung": self.workers_hung,
                "batches_requeued": self.batches_requeued,
            }

    # -- worker loop ----------------------------------------------------------

    def _spawn(self, index: int) -> _WorkerSlot:
        slot = _WorkerSlot()
        self._serial += 1
        slot.thread = threading.Thread(
            target=self._worker_loop, args=(slot,),
            name=f"{self._name}-worker-{index}.{self._serial}", daemon=True)
        slot.thread.start()
        return slot

    def _worker_loop(self, slot: _WorkerSlot) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            with self._lock:
                if slot.stolen:
                    # This thread's slot was abandoned while it idled on
                    # the queue (cannot happen for a *blocked* thread,
                    # but close() may race a steal): hand the item back.
                    self._queue.put(item)
                    return
                slot.item = item
                slot.started = _time.monotonic()
            try:
                self._handler(item)
            except WorkerDeathError:
                # Simulated worker death: exit *without* settling, so
                # the supervisor finds the corpse holding its batch and
                # runs the real recovery path.
                return
            except BaseException as error:  # noqa: BLE001 - defensive
                if self._settle(slot, item, error):
                    return
            else:
                if self._settle(slot, item, None):
                    return

    def _settle(self, slot: _WorkerSlot, item, error) -> bool:
        """Finish one batch; returns True when this thread must exit
        (its slot was abandoned while it was wedged — a replacement owns
        the batch now, so a stale completion is a no-op)."""
        with self._lock:
            if slot.stolen:
                return True
            slot.item = None
        if error is not None:
            self._on_batch_lost(item, error)
        self._batch_done()
        return False

    def _batch_done(self) -> None:
        with self._lock:
            self._outstanding -= 1
            if self._outstanding <= 0:
                self._idle.notify_all()

    # -- supervision ----------------------------------------------------------

    def _supervise(self) -> None:
        while not self._stop_supervisor.wait(self._tick_s):
            self._scan(_time.monotonic())
            if self._on_tick is not None:
                self._on_tick()

    def _scan(self, now: float) -> None:
        with self._lock:
            slots = list(enumerate(self._slots))
        for index, slot in slots:
            if not slot.thread.is_alive():
                self._recover(index, slot, hung=False)
            elif (slot.item is not None and not slot.stolen
                  and now - slot.started > self._hang_timeout_s):
                self._recover(index, slot, hung=True)

    def _recover(self, index: int, slot: _WorkerSlot, hung: bool) -> None:
        with self._lock:
            if self._slots[index] is not slot or slot.stolen:
                return
            if self._closed and slot.item is None:
                # Worker exited via _STOP during shutdown: not a death.
                return
            item = slot.item
            slot.stolen = True
            self._slots[index] = self._spawn(index)
            self.workers_replaced += 1
            if hung:
                self.workers_hung += 1
            requeue = False
            if item is not None and not item.requeued:
                item.requeued = True
                self.batches_requeued += 1
                requeue = True
        if item is None:
            return
        if requeue:
            self._queue.put(item)  # the obligation stays outstanding
        else:
            self._on_batch_lost(item, WorkerLostError(
                "engine worker lost while executing a re-queued batch"))
            self._batch_done()

    # -- shutdown -------------------------------------------------------------

    def close(self, timeout_s: Optional[float] = None) -> None:
        """Drain the queue, wait for quiescence, stop every thread.

        Queued batches still execute (the service decides beforehand
        whether to fail them, for an aborting close).  The quiescence
        wait is bounded: pending work is given ``hang_timeout_s`` plus
        grace per outstanding wave, after which shutdown proceeds and
        abandons whatever is still wedged (daemon threads).
        """
        deadline = _time.monotonic() + (
            timeout_s if timeout_s is not None
            else self._hang_timeout_s * 2 + 10.0)
        with self._idle:
            self._closed = True
            while self._outstanding > 0:
                remaining = deadline - _time.monotonic()
                if remaining <= 0:
                    break
                self._idle.wait(timeout=min(remaining, 0.1))
        self._stop_supervisor.set()
        self._supervisor.join(timeout=5.0)
        with self._lock:
            slots = list(self._slots)
        for _ in slots:
            self._queue.put(_STOP)
        for slot in slots:
            slot.thread.join(timeout=5.0)
