"""Programmatic client and JSON-lines driver for the service.

Two front ends over one :class:`~repro.service.core.SimulationService`:

* :class:`ServiceClient` — in-process convenience wrapper that speaks
  *request dicts* (circuit spec, pattern count, voltages) instead of
  compiled circuits, resolving and registering circuit specs once each;
* :func:`serve_jsonl` — the ``repro serve`` transport: read one JSON
  request per line, submit as they arrive, and stream one JSON response
  per line **in submission order** (an emitter thread blocks on the
  oldest outstanding handle, so responses flow while requests are still
  being read — no buffering until EOF).

Request line schema (unknown keys are ignored)::

    {"id": "r1", "circuit": "suite:s27", "patterns": 8, "seed": 0,
     "voltages": [0.8], "record_all_nets": false, "deadline_ms": 5000}

Response line schema::

    {"id": "r1", "ok": true, "slots": 8, "cache_hit": false,
     "engine": "...", "latency_ms": 1.2, "latest_arrival_s": 1.9e-10,
     "gate_evaluations": 1234}

Failures respond ``{"id": ..., "ok": false, "error": "..."}``; an
admission rejection or open circuit breaker additionally carries
``retry_after_ms`` (the breaker also sets ``"breaker": "open"``), and
a deadline expiry sets ``"timeout": true`` with the ``deadline_ms``
that was exceeded.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from typing import Dict, Optional

from repro.atpg.patterns import random_pattern_set
from repro.cells.library import CellLibrary
from repro.errors import (
    AdmissionError,
    CircuitOpenError,
    JobDeadlineError,
    ReproError,
)
from repro.service.core import SimulationService
from repro.service.jobs import JobHandle, JobResult
from repro.simulation.base import SimulationConfig
from repro.simulation.grid import SlotPlan

__all__ = ["ServiceClient", "serve_jsonl"]


class ServiceClient:
    """Spec-level front door: resolves circuit specs, submits jobs."""

    def __init__(self, service: SimulationService, library: CellLibrary,
                 circuit_loader, kernel_table=None,
                 backend: Optional[str] = None) -> None:
        self.service = service
        self.library = library
        self.kernel_table = kernel_table
        self.backend = backend
        self._loader = circuit_loader
        self._keys: Dict[str, str] = {}
        self._lock = threading.Lock()

    def circuit_key(self, spec: str) -> str:
        """Resolve a circuit spec to a registered fingerprint (cached)."""
        with self._lock:
            key = self._keys.get(spec)
        if key is not None:
            return key
        circuit = self._loader(spec, self.library)
        key = self.service.register_circuit(circuit, self.library)
        with self._lock:
            self._keys[spec] = key
        return key

    def request(self, req: dict) -> JobHandle:
        """Submit one request dict; returns the job handle."""
        spec = req.get("circuit")
        if not spec:
            raise ReproError("request needs a 'circuit' spec")
        key = self.circuit_key(spec)
        compiled = self.service.circuit(key)
        patterns = random_pattern_set(compiled.circuit,
                                      int(req.get("patterns", 8)),
                                      seed=int(req.get("seed", 0)))
        voltages = req.get("voltages", [0.8])
        if isinstance(voltages, str):
            voltages = [float(part) for part in voltages.split(",")
                        if part.strip()]
        plan = SlotPlan.cross(len(patterns), [float(v) for v in voltages])
        config = SimulationConfig(
            record_all_nets=bool(req.get("record_all_nets", False)),
            backend=self.backend)
        deadline_ms = req.get("deadline_ms")
        return self.service.submit(
            key, patterns.pairs, plan=plan, config=config,
            kernel_table=self.kernel_table,
            deadline_ms=None if deadline_ms is None else float(deadline_ms))


def _response(req_id, result: JobResult) -> dict:
    latest = max((w.latest_transition()
                  for slot in result.waveforms for w in slot.values()),
                 default=float("-inf"))
    return {
        "id": req_id,
        "ok": True,
        "slots": result.num_slots,
        "cache_hit": result.cache_hit,
        "engine": result.engine,
        "latency_ms": round(result.latency_seconds * 1e3, 3),
        "latest_arrival_s": None if latest == float("-inf") else latest,
        "gate_evaluations": result.gate_evaluations,
    }


def _error_response(req_id, error: Exception) -> dict:
    response = {"id": req_id, "ok": False,
                "error": f"{type(error).__name__}: {error}"}
    if isinstance(error, AdmissionError):
        response["retry_after_ms"] = round(
            error.retry_after_seconds * 1e3, 3)
    if isinstance(error, CircuitOpenError):
        response["breaker"] = "open"
    if isinstance(error, JobDeadlineError):
        response["timeout"] = True
        if error.deadline_ms is not None:
            response["deadline_ms"] = error.deadline_ms
    return response


def serve_jsonl(input_stream, output_stream, client: ServiceClient) -> int:
    """Drive a service from a JSON-lines stream; returns an exit code.

    Responses stream in submission order while input is still being
    read.  Failed lines (bad JSON, unknown circuit, admission
    rejection) produce error responses; only a broken output stream
    aborts the loop.
    """
    write_lock = threading.Lock()

    def emit(payload: dict) -> None:
        with write_lock:
            output_stream.write(json.dumps(payload) + "\n")
            output_stream.flush()

    outstanding: "deque[tuple]" = deque()
    available = threading.Semaphore(0)
    done = threading.Event()

    def emitter() -> None:
        while True:
            available.acquire()
            if done.is_set() and not outstanding:
                return
            req_id, handle = outstanding.popleft()
            try:
                emit(_response(req_id, handle.result()))
            except Exception as error:  # noqa: BLE001 - report per line
                emit(_error_response(req_id, error))

    thread = threading.Thread(target=emitter, name="repro-serve-emitter",
                              daemon=True)
    thread.start()

    for line in input_stream:
        line = line.strip()
        if not line:
            continue
        req_id: Optional[object] = None
        try:
            req = json.loads(line)
            if not isinstance(req, dict):
                raise ReproError("request line must be a JSON object")
            req_id = req.get("id")
            handle = client.request(req)
        except Exception as error:  # noqa: BLE001 - report per line
            emit(_error_response(req_id, error))
            continue
        outstanding.append((req_id, handle))
        available.release()

    done.set()
    available.release()  # wake the emitter for the exit check
    thread.join()
    # Drain stragglers in case the emitter exited between the final
    # response and the sentinel wake-up.
    while outstanding:
        req_id, handle = outstanding.popleft()
        try:
            emit(_response(req_id, handle.result()))
        except Exception as error:  # noqa: BLE001 - report per line
            emit(_error_response(req_id, error))
    return 0
