"""Simulation service layer (the inference-server-shaped front door).

Aggregates fine-grained simulation jobs from many callers into the wide
slot planes the engines need: an async intake queue with admission
control, a dynamic batcher (flush on fullness / age / queue-idle), a
supervised worker pool dispatching through the existing engines
(dead/hung workers replaced, their batch re-queued once), per-job
result demultiplexing with deadlines and cancellation,
per-compatibility-group circuit breakers, and a checksummed
fingerprinted LRU result cache.  With ``ServiceConfig(shards=N)`` the
worker pool is replaced by a multi-process shard router: batches route
to spawned worker processes by consistent hash of their compatibility
group, with stimuli and result waveforms carried through zero-copy
shared-memory planes (:mod:`repro.service.shm`,
:mod:`repro.service.shard`, :mod:`repro.service.router`).  See
:mod:`repro.service.core` for the execution model and the bit-identity
contract, and ``docs/architecture.md`` §9–§11 for the design.
"""

from repro.service.batcher import DynamicBatcher, PendingBatch
from repro.service.breaker import CircuitBreaker
from repro.service.cache import CachedResult, ResultCache, waveform_checksum
from repro.service.client import ServiceClient, serve_jsonl
from repro.service.core import SimulationService
from repro.service.jobs import JobHandle, JobResult, ServiceConfig
from repro.service.metrics import MetricsRecorder, ServiceMetrics
from repro.service.pool import EnginePool
from repro.service.router import ShardRouter
from repro.service.shm import SharedArena, sweep_orphans

__all__ = [
    "CachedResult",
    "CircuitBreaker",
    "DynamicBatcher",
    "EnginePool",
    "JobHandle",
    "JobResult",
    "MetricsRecorder",
    "PendingBatch",
    "ResultCache",
    "ServiceClient",
    "ServiceConfig",
    "ServiceMetrics",
    "SharedArena",
    "ShardRouter",
    "SimulationService",
    "serve_jsonl",
    "sweep_orphans",
    "waveform_checksum",
]
