"""Dynamic request batching: coalesce compatible jobs into slot planes.

The same policy triangle every inference server exposes:

* **flush on fullness** — a batch reaching ``max_batch_slots`` slots
  dispatches immediately (occupancy is the throughput lever),
* **flush on age** — a batch whose oldest job has waited ``max_wait``
  dispatches even half-empty (tail latency must stay bounded),
* **flush on idle** — when the intake queue runs dry there is nothing
  left to coalesce with, so holding jobs any longer is pure added
  latency.

Jobs coalesce only within a *compatibility group*
(:func:`repro.runtime.fingerprint.compatibility_fingerprint`): same
compiled circuit, same semantic config, same kernel table and variation
model — the preconditions for sharing one engine dispatch without
changing any job's results.

This module is pure data-structure logic — no threads, no clocks of its
own (callers pass ``now``) — so the flush policy is unit-testable
without timing races.  :class:`~repro.service.core.SimulationService`
owns the thread that drives it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.service.jobs import SimulationJob

__all__ = ["DynamicBatcher", "PendingBatch"]


@dataclass
class PendingBatch:
    """Jobs accumulated for one compatibility group."""

    compat_key: str
    jobs: List[SimulationJob] = field(default_factory=list)
    oldest: float = 0.0
    #: Already re-queued once after a worker death/hang; a second loss
    #: fails the batch's jobs instead (see ``repro.service.pool``).
    requeued: bool = False

    @property
    def num_jobs(self) -> int:
        return len(self.jobs)

    @property
    def num_slots(self) -> int:
        return sum(job.num_slots for job in self.jobs)

    def add(self, job: SimulationJob, now: float) -> None:
        if not self.jobs:
            self.oldest = now
        self.jobs.append(job)


class DynamicBatcher:
    """Accumulates jobs per compatibility group and decides when to flush."""

    def __init__(self, max_batch_slots: int, max_wait_seconds: float) -> None:
        self.max_batch_slots = max_batch_slots
        self.max_wait_seconds = max_wait_seconds
        self._pending: Dict[str, PendingBatch] = {}

    # -- state ----------------------------------------------------------------

    @property
    def pending_jobs(self) -> int:
        return sum(b.num_jobs for b in self._pending.values())

    @property
    def pending_slots(self) -> int:
        return sum(b.num_slots for b in self._pending.values())

    def next_deadline(self, now: float) -> Optional[float]:
        """Seconds until the oldest pending batch ages out (None if empty)."""
        if not self._pending:
            return None
        oldest = min(b.oldest for b in self._pending.values())
        return max(0.0, oldest + self.max_wait_seconds - now)

    # -- policy ---------------------------------------------------------------

    def add(self, job: SimulationJob, now: float) -> List[PendingBatch]:
        """Fold one job in; returns batches made ready by this arrival.

        A job that would push its group past ``max_batch_slots`` flushes
        the group first (the in-flight batch stays within the plane
        width the engine was sized for); a single job wider than the
        ceiling becomes a batch of its own — the engine's own
        memory-budget chunking handles oversized planes.
        """
        ready: List[PendingBatch] = []
        batch = self._pending.get(job.compat_key)
        if batch is not None and \
                batch.num_slots + job.num_slots > self.max_batch_slots:
            ready.append(self._pending.pop(job.compat_key))
            batch = None
        if batch is None:
            batch = PendingBatch(compat_key=job.compat_key)
            self._pending[job.compat_key] = batch
        batch.add(job, now)
        if batch.num_slots >= self.max_batch_slots:
            ready.append(self._pending.pop(job.compat_key))
        return ready

    def due(self, now: float) -> List[PendingBatch]:
        """Batches whose oldest job has waited at least ``max_wait``."""
        ready = [key for key, batch in self._pending.items()
                 if now - batch.oldest >= self.max_wait_seconds]
        return [self._pending.pop(key) for key in ready]

    def drain(self) -> List[PendingBatch]:
        """Everything pending (idle flush and shutdown)."""
        batches = list(self._pending.values())
        self._pending.clear()
        return batches
