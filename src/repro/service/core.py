"""The simulation service: queue → batcher → engine pool → demux.

:class:`SimulationService` is the shared front door the engines never
had: callers submit fine-grained jobs (circuit fingerprint, stimuli,
operating points, config) and get back per-job futures, while behind
the queue a dynamic batcher coalesces compatible jobs into the wide
slot planes the paper's 3-D parallelism (Sec. IV-B) actually needs to
pay off.  The shape is deliberately that of an inference server:

* **admission control** — a bounded backlog with a configurable policy
  (block until capacity, or reject with a retry-after hint), so a
  traffic burst degrades to backpressure instead of unbounded memory;
* **dynamic batching** — flush on fullness / age / queue-idle
  (:mod:`repro.service.batcher`), per compatibility group;
* **engine pool** — worker threads each owning their engine instances
  (the waveform-arena pool is per engine and not thread-safe); batches
  dispatch through :class:`~repro.simulation.gpu.GpuWaveSim` or, with
  ``num_devices > 1``, :class:`~repro.simulation.multi.MultiDeviceWaveSim`;
  with ``shards > 0`` the pool is replaced wholesale by a
  :class:`~repro.service.router.ShardRouter` over spawned worker
  *processes* — compatibility groups map to shards by consistent hash,
  stimuli and result waveforms move through shared-memory planes
  (:mod:`repro.service.shm`), and demux happens in the parent directly
  on the shard's mapped result plane;
* **demultiplexing** — each job receives exactly its slice of the
  shared plane, with a per-job :class:`~repro.runtime.report.RunReport`
  describing the batch it rode in;
* **result cache** — a fingerprinted LRU (:mod:`repro.service.cache`)
  keyed by the same SHA-256 identity as campaign checkpoints; hits
  resolve at submission time and never touch the queue or an engine;
* **failure domains** — per-job deadlines and cancellation, a
  supervised worker pool that replaces dead or hung workers and
  re-queues their in-flight batch once (:mod:`repro.service.pool`),
  per-compatibility-group circuit breakers
  (:mod:`repro.service.breaker`), checksummed cache entries, and
  automatic backend demotion on repeated native-kernel faults — all
  exercised by the deterministic fault-injection plans of
  :mod:`repro.faults`.

**Bit-identity contract.**  A job's waveforms are bit-identical to a
standalone ``GpuWaveSim.run`` of the same request no matter which
batch it coalesced into: the combined plane keeps every job's slots
contiguous, pattern indices are offset per job, and ``global_slots``
pins each slot's *job-local* index so Monte-Carlo die factors ignore
the job's position in the batch.

**Graceful shutdown.**  ``close()`` (or leaving the context manager)
stops intake, flushes the batcher, drains in-flight batches and joins
the workers; ``close(drain=False)`` instead fails every unfinished job
with :class:`~repro.errors.ServiceClosedError`.
"""

from __future__ import annotations

import queue as _queue
import threading
import time as _time
from concurrent.futures import InvalidStateError
from typing import Dict, List, Optional, Sequence

import numpy as np

import repro.errors as _errors
from repro import faults
from repro.cells.library import CellLibrary
from repro.errors import (
    AdmissionError,
    CircuitOpenError,
    JobCancelledError,
    JobDeadlineError,
    ServiceClosedError,
    ServiceError,
    ShardError,
)
from repro.netlist.circuit import Circuit
from repro.runtime.fingerprint import (
    circuit_fingerprint,
    compatibility_fingerprint,
    job_fingerprint,
)
from repro.runtime.report import AttemptReport, ChunkReport, RunReport
from repro.service.batcher import DynamicBatcher, PendingBatch
from repro.service.breaker import CircuitBreaker
from repro.service.cache import CachedResult, ResultCache
from repro.service.jobs import (
    JobHandle,
    JobResult,
    ServiceConfig,
    SimulationJob,
    resolved_handle,
    validate_job,
)
from repro.service.metrics import MetricsRecorder, ServiceMetrics
from repro.service.pool import EnginePool
from repro.simulation.base import PatternPair, SimulationConfig
from repro.simulation.compiled import CompiledCircuit, compile_circuit
from repro.simulation.delta import DeltaPlan, select_delta
from repro.simulation.grid import SlotPlan
from repro.waveform.waveform import Waveform

__all__ = ["SimulationService"]

#: Engine name recorded on cache-served results.
ENGINE_CACHE = "cache"

_STOP = object()   # drain pending batches, then exit the batch loop
_ABORT = object()  # fail pending jobs, then exit the batch loop


class SimulationService:
    """Dynamic-batching, caching, admission-controlled simulation server.

    Usage::

        with SimulationService(config=ServiceConfig(max_wait_ms=2.0)) as svc:
            key = svc.register_circuit(circuit, library)
            handles = [svc.submit(key, job_pairs) for job_pairs in jobs]
            results = [h.result() for h in handles]
    """

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        self._circuits: Dict[str, CompiledCircuit] = {}
        self._circuits_lock = threading.Lock()
        # Delta evaluation needs the engine-level capture/delta kwargs
        # and a parent-side base ring; with shards the ring lives inside
        # each shard process instead (arenas never cross a pipe), and
        # the multi-device engine has no delta path.
        self._delta_enabled = (self.config.shards == 0
                               and self.config.num_devices == 1
                               and self.config.delta_bases > 0
                               and self.config.cache_entries > 0)
        self._cache = ResultCache(
            self.config.cache_entries,
            max_bases=(self.config.delta_bases
                       if self._delta_enabled else 0))
        self._metrics = MetricsRecorder()
        self._queue: "_queue.Queue" = _queue.Queue()
        self._batcher = DynamicBatcher(self.config.max_batch_slots,
                                       self.config.max_wait_ms / 1e3)
        self._engines = threading.local()
        self._admission = threading.Condition()
        self._backlog = 0
        self._closed = False
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._breakers_lock = threading.Lock()
        self._live: Dict[int, SimulationJob] = {}
        self._live_lock = threading.Lock()
        self._pool = None
        self._router = None
        if self.config.shards > 0:
            from repro.service.router import ShardRouter
            self._router = ShardRouter(
                num_shards=self.config.shards,
                combine=self._combine,
                on_batch_done=self._complete_shard_batch,
                on_batch_error=self._shard_batch_error,
                on_batch_lost=self._fail_batch_jobs,
                on_dispatch=self._record_shard_dispatch,
                ring_slots=self.config.shard_ring_slots,
                segment_bytes=self.config.shard_segment_bytes,
                queue_depth=self.config.shard_queue_depth,
                hang_timeout_s=self.config.hang_timeout_s,
                tick_s=self.config.supervisor_tick_s,
                spawn_timeout_s=self.config.shard_spawn_timeout_s,
                on_tick=self._expire_deadlines,
                delta_bases=self.config.delta_bases,
                delta_threshold=self.config.delta_threshold,
            )
        else:
            self._pool = EnginePool(
                workers=self.config.workers,
                handler=self._execute_batch,
                on_batch_lost=self._fail_batch_jobs,
                hang_timeout_s=self.config.hang_timeout_s,
                tick_s=self.config.supervisor_tick_s,
                on_tick=self._expire_deadlines,
            )
        self._batch_thread = threading.Thread(
            target=self._batch_loop, name="repro-service-batcher", daemon=True)
        self._batch_thread.start()

    # -- lifecycle ------------------------------------------------------------

    def __enter__(self) -> "SimulationService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self, drain: bool = True) -> None:
        """Stop intake and shut down.

        ``drain=True`` finishes every admitted job first (pending batches
        are flushed and executed); ``drain=False`` fails every unfinished
        job with :class:`~repro.errors.ServiceClosedError`.  Idempotent.
        """
        with self._admission:
            if self._closed:
                return
            self._closed = True
            self._admission.notify_all()
        self._queue.put(_STOP if drain else _ABORT)
        self._batch_thread.join()
        self._executor.close()

    @property
    def _executor(self):
        """The batch executor: shard router or in-process engine pool."""
        return self._router if self._router is not None else self._pool

    @property
    def closed(self) -> bool:
        return self._closed

    # -- circuits -------------------------------------------------------------

    def register_circuit(
        self,
        circuit: Circuit,
        library: CellLibrary,
        annotation=None,
        loads=None,
        compiled: Optional[CompiledCircuit] = None,
    ) -> str:
        """Compile (once) and register a circuit; returns its fingerprint.

        Registering the same circuit again is a no-op returning the same
        key — the compiled form is shared by every job referencing it.
        """
        compiled = compiled or compile_circuit(circuit, library, annotation,
                                               loads)
        key = circuit_fingerprint(compiled)
        with self._circuits_lock:
            self._circuits.setdefault(key, compiled)
        if self._router is not None:
            # Broadcast the compiled form together with the parent's
            # already-built level plans: every shard's plan cache is
            # warm before its first batch (and after every respawn —
            # the router replays this registration).
            self._router.register_circuit(key, compiled, compiled.plans())
        return key

    def circuit(self, circuit_key: str) -> CompiledCircuit:
        with self._circuits_lock:
            try:
                return self._circuits[circuit_key]
            except KeyError:
                raise ServiceError(
                    f"unknown circuit fingerprint {circuit_key[:12]}…; "
                    "register_circuit() first") from None

    # -- submission -----------------------------------------------------------

    def submit(
        self,
        circuit_key: str,
        pairs: Sequence[PatternPair],
        plan: Optional[SlotPlan] = None,
        voltage: float = 0.8,
        config: Optional[SimulationConfig] = None,
        kernel_table=None,
        variation=None,
        deadline_ms: Optional[float] = None,
    ) -> JobHandle:
        """Submit one job; returns a :class:`JobHandle` future.

        Raises :class:`~repro.errors.AdmissionError` under the
        ``reject`` policy (or a timed-out ``block``) when the backlog is
        full, :class:`~repro.errors.CircuitOpenError` when the job's
        compatibility group has tripped its circuit breaker, and
        :class:`~repro.errors.ServiceClosedError` after :meth:`close`.

        ``deadline_ms`` bounds the job's total time in the service:
        past it, the handle fails with
        :class:`~repro.errors.JobDeadlineError` and the job is excluded
        from any batch it had not yet ridden.  Cache hits resolve
        immediately and never time out.
        """
        started = _time.monotonic()
        if self._closed:
            raise ServiceClosedError("service is closed")
        compiled = self.circuit(circuit_key)
        config = config or SimulationConfig()
        pairs = list(pairs)
        if not pairs:
            raise ServiceError("job needs at least one pattern pair")
        plan = plan or SlotPlan.uniform(len(pairs), voltage)
        validate_job(compiled, pairs, plan, kernel_table)
        if deadline_ms is not None and deadline_ms <= 0:
            raise ServiceError("deadline_ms must be positive")
        fingerprint = job_fingerprint(compiled, pairs, plan, config,
                                      kernel_table, variation)
        self._metrics.record_submitted()

        cached = self._cache.get(fingerprint)
        if cached is not None:
            latency = _time.monotonic() - started
            self._metrics.record_completed(latency)
            return resolved_handle(
                fingerprint, self._cached_result(compiled, cached, latency))

        compat_key = compatibility_fingerprint(
            compiled, config, kernel_table, variation,
            static_voltages=(plan.voltages if kernel_table is None
                             else None))
        allowed, retry_after = self._breaker_for(compat_key).allow()
        if not allowed:
            self._metrics.record_breaker_rejected()
            raise CircuitOpenError(
                f"circuit breaker open for group {compat_key[:12]}…; "
                f"retry in {retry_after:.3f}s",
                retry_after_seconds=retry_after)

        job = SimulationJob(
            circuit_key=circuit_key, pairs=pairs, plan=plan, config=config,
            kernel_table=kernel_table, variation=variation,
            fingerprint=fingerprint, compat_key=compat_key,
        )
        if self._delta_enabled:
            job.delta = self._select_delta(job)
        self._admit(job)
        job.submitted = _time.monotonic()
        if deadline_ms is not None:
            job.deadline_ms = float(deadline_ms)
            job.deadline = job.submitted + deadline_ms / 1e3
        with self._live_lock:
            self._live[id(job)] = job
        self._queue.put(job)
        return JobHandle(fingerprint, job.future,
                         canceller=lambda: self._cancel_job(job))

    def _select_delta(self, job: SimulationJob):
        """Pick a base from the compat group's ring, or ``None``.

        Exact-fingerprint hits never reach here (they resolve above),
        so a selected plan always has *something* to re-evaluate — but
        a job repeating a base's stimuli under the same plane still
        fully splices.  ``global_slots`` are job-local on both sides
        (the combine step pins them), so Monte-Carlo eligibility holds
        no matter which batches the base and the variant rode in.
        """
        bases = self._cache.bases_for(job.compat_key)
        if not bases:
            return None
        v1 = np.stack([pair.v1 for pair in job.pairs])
        v2 = np.stack([pair.v2 for pair in job.pairs])
        selected = select_delta(
            bases, v1, v2, job.plan.pattern_indices, job.plan.voltages,
            None, job.variation, self.config.delta_threshold)
        if selected is None:
            return None
        self._cache.record_base_hit()
        return selected[0]

    def metrics(self) -> ServiceMetrics:
        """Point-in-time service metrics snapshot."""
        with self._admission:
            depth = self._backlog
        with self._breakers_lock:
            breakers = {key[:12]: breaker.stats()
                        for key, breaker in self._breakers.items()}
        return self._metrics.snapshot(depth, self._cache.stats(),
                                      pool_stats=self._executor.stats(),
                                      breakers=breakers)

    @property
    def engine_dispatches(self) -> int:
        """Engine ``run()`` calls so far (cache hits never increment it)."""
        return self._metrics.batches_dispatched

    # -- admission ------------------------------------------------------------

    def _admit(self, job: SimulationJob) -> None:
        with self._admission:
            if self.config.admission == "reject":
                if self._backlog >= self.config.queue_depth:
                    self._metrics.record_rejected()
                    retry = self._metrics.retry_after(self._backlog,
                                                      self.config.workers)
                    raise AdmissionError(
                        f"queue depth {self.config.queue_depth} reached; "
                        f"retry in {retry:.3f}s",
                        retry_after_seconds=retry)
            else:
                deadline = (None if self.config.block_timeout_s is None
                            else _time.monotonic()
                            + self.config.block_timeout_s)
                while self._backlog >= self.config.queue_depth:
                    if self._closed:
                        raise ServiceClosedError(
                            "service closed while waiting for admission")
                    remaining = (None if deadline is None
                                 else deadline - _time.monotonic())
                    if remaining is not None and remaining <= 0:
                        self._metrics.record_rejected()
                        retry = self._metrics.retry_after(
                            self._backlog, self.config.workers)
                        raise AdmissionError(
                            "admission wait timed out; "
                            f"retry in {retry:.3f}s",
                            retry_after_seconds=retry)
                    self._admission.wait(timeout=remaining)
            self._backlog += 1

    def _release(self, jobs: int = 1) -> None:
        with self._admission:
            self._backlog -= jobs
            self._admission.notify_all()

    # -- job settlement -------------------------------------------------------

    def _finish_job(self, job: SimulationJob, result=None,
                    error=None) -> bool:
        """Settle one job exactly once; returns False if already settled.

        Every path that ends a job — demux success, batch failure,
        deadline expiry, cancellation, worker loss, aborting close —
        funnels through here.  The future's own set-once semantics are
        the synchronizer: whichever caller wins updates the metrics and
        releases the backlog slot; losers see ``InvalidStateError`` and
        walk away.
        """
        try:
            if error is not None:
                job.future.set_exception(error)
            else:
                job.future.set_result(result)
        except InvalidStateError:
            return False
        with self._live_lock:
            self._live.pop(id(job), None)
        if error is None:
            self._metrics.record_completed(result.latency_seconds,
                                           shard=job.shard)
        elif isinstance(error, JobDeadlineError):
            self._metrics.record_timed_out()
        elif isinstance(error, JobCancelledError):
            self._metrics.record_cancelled()
        else:
            self._metrics.record_failed()
        self._release()
        return True

    def _cancel_job(self, job: SimulationJob) -> bool:
        return self._finish_job(job, error=JobCancelledError(
            "job cancelled by caller"))

    def _expire_deadlines(self) -> None:
        """Supervisor tick: fail every live job past its deadline."""
        now = _time.monotonic()
        with self._live_lock:
            expired = [job for job in self._live.values()
                       if job.deadline is not None and now >= job.deadline]
        for job in expired:
            self._finish_job(job, error=JobDeadlineError(
                f"job exceeded its {job.deadline_ms:g} ms deadline",
                deadline_ms=job.deadline_ms))

    def _fail_batch_jobs(self, batch: PendingBatch, error) -> None:
        """Batch-wide failure path (worker loss, handler escape)."""
        breaker = self._breaker_for(batch.compat_key)
        for job in batch.jobs:
            if self._finish_job(job, error=error):
                breaker.record_failure()

    def _breaker_for(self, compat_key: str) -> CircuitBreaker:
        with self._breakers_lock:
            breaker = self._breakers.get(compat_key)
            if breaker is None:
                breaker = CircuitBreaker(
                    failure_threshold=self.config.breaker_failures,
                    reset_seconds=self.config.breaker_reset_s)
                self._breakers[compat_key] = breaker
            return breaker

    # -- batching loop --------------------------------------------------------

    def _batch_loop(self) -> None:
        idle_s = self.config.idle_ms / 1e3
        while True:
            now = _time.monotonic()
            deadline = self._batcher.next_deadline(now)
            timeout = None if deadline is None else max(
                min(deadline, idle_s), 1e-4)
            try:
                item = self._queue.get(timeout=timeout)
            except _queue.Empty:
                # The queue stayed empty for `timeout`: everything whose
                # max-wait deadline passed is due, and if the wait covered
                # a full idle period there is nothing arriving to coalesce
                # with — flush it all.
                now = _time.monotonic()
                ready = self._batcher.due(now)
                if timeout is not None and timeout >= idle_s:
                    ready.extend(self._batcher.drain())
                for batch in ready:
                    self._dispatch(batch)
                continue
            if item is _STOP or item is _ABORT:
                self._finish(item is _STOP)
                return
            ready = self._batcher.add(item, _time.monotonic())
            # Opportunistic non-blocking drain: a submission burst lands
            # in one plane instead of one batch per wakeup.
            stop_item = None
            while stop_item is None:
                try:
                    nxt = self._queue.get_nowait()
                except _queue.Empty:
                    break
                if nxt is _STOP or nxt is _ABORT:
                    stop_item = nxt
                    break
                ready.extend(self._batcher.add(nxt, _time.monotonic()))
            ready.extend(self._batcher.due(_time.monotonic()))
            for batch in ready:
                self._dispatch(batch)
            if stop_item is not None:
                self._finish(stop_item is _STOP)
                return

    def _finish(self, drain: bool) -> None:
        """Terminal flush: run or fail everything still pending."""
        batches = self._batcher.drain()
        leftovers: List[SimulationJob] = []
        while True:
            try:
                item = self._queue.get_nowait()
            except _queue.Empty:
                break
            if item is not _STOP and item is not _ABORT:
                leftovers.append(item)
        if drain:
            for batch in batches:
                self._dispatch(batch)
            for job in leftovers:
                batch = PendingBatch(compat_key=job.compat_key)
                batch.add(job, _time.monotonic())
                self._dispatch(batch)
        else:
            error = ServiceClosedError("service closed before execution")
            for job in leftovers + [j for b in batches for j in b.jobs]:
                self._finish_job(job, error=error)

    def _dispatch(self, batch: PendingBatch) -> None:
        if self._router is not None:
            # Group registration rides the same FIFO control pipe as
            # the batch, so it always lands first; register_group is an
            # idempotent no-op after the first call per group.
            job = batch.jobs[0]
            self._router.register_group(
                batch.compat_key, job.circuit_key, job.config,
                job.kernel_table, job.variation)
            self._router.submit(batch)
        else:
            self._pool.submit(batch)

    # -- execution ------------------------------------------------------------

    def _engine_for(self, circuit_key: str, config: SimulationConfig):
        """Per-worker-thread engine instances (arena pools don't share)."""
        engines = getattr(self._engines, "by_key", None)
        if engines is None:
            engines = self._engines.by_key = {}
        key = (circuit_key, config)
        engine = engines.get(key)
        if engine is None:
            compiled = self.circuit(circuit_key)
            if self.config.num_devices > 1:
                from repro.simulation.multi import MultiDeviceWaveSim
                engine = MultiDeviceWaveSim(
                    compiled.circuit, compiled.library, config=config,
                    compiled=compiled, num_devices=self.config.num_devices)
            else:
                from repro.simulation.gpu import GpuWaveSim
                engine = GpuWaveSim(compiled.circuit, compiled.library,
                                    config=config, compiled=compiled)
            engines[key] = engine
        return engine

    def _execute_batch(self, batch: PendingBatch) -> None:
        # Jobs settled while queued (deadline expiry, cancellation) ride
        # no further: excluding them cannot change the other jobs'
        # results because slot identity is job-local (``global_slots``).
        jobs = [job for job in batch.jobs if not job.future.done()]
        if not jobs:
            return
        self._metrics.record_batch(len(jobs),
                                   sum(job.num_slots for job in jobs))
        started = _time.monotonic()
        breaker = self._breaker_for(batch.compat_key)
        try:
            self._run_and_demux(jobs, started)
        except Exception as error:  # noqa: BLE001 - isolate, then report
            if len(jobs) > 1:
                # One poison job must not sink its batch neighbours:
                # re-run each job as a singleton (inline, same worker) so
                # only the guilty one surfaces the failure.
                for job in jobs:
                    single = PendingBatch(compat_key=job.compat_key)
                    single.add(job, _time.monotonic())
                    self._execute_batch(single)
            else:
                if self._finish_job(jobs[0], error=error):
                    breaker.record_failure()
        else:
            breaker.record_success()

    def _combine(self, jobs: List[SimulationJob]):
        """Concatenate a batch's jobs into one shared slot plane."""
        combined_pairs: List[PatternPair] = []
        offsets: List[int] = []
        for job in jobs:
            offsets.append(len(combined_pairs))
            combined_pairs.extend(job.pairs)
        plan = SlotPlan.concat([job.plan for job in jobs], offsets)
        # Job-local slot indices: Monte-Carlo die factors must not
        # depend on where in the shared plane a job landed.
        global_slots = np.concatenate(
            [np.arange(job.num_slots, dtype=np.int64) for job in jobs])
        return combined_pairs, plan, global_slots

    def _run_and_demux(self, jobs: List[SimulationJob],
                       started: float) -> None:
        compiled = self.circuit(jobs[0].circuit_key)
        config = jobs[0].config
        combined_pairs, plan, global_slots = self._combine(jobs)
        engine = self._engine_for(jobs[0].circuit_key, config)
        kwargs = {}
        if self._delta_enabled:
            delta = DeltaPlan.concat(
                [job.delta for job in jobs],
                [job.num_slots for job in jobs],
                width=len(compiled.circuit.inputs))
            if delta is not None:
                kwargs["delta"] = delta
            kwargs["capture_base"] = True
        result = engine.run(combined_pairs, plan=plan,
                            kernel_table=jobs[0].kernel_table,
                            variation=jobs[0].variation,
                            global_slots=global_slots, **kwargs)
        faults.trip("service.demux", corruptible=result.waveforms)
        stats = engine.last_stats
        self._settle_batch(
            jobs, compiled, config, result.waveforms,
            engine_name=result.engine, backend=stats.backend,
            gate_evaluations=stats.gate_evaluations,
            lanes_skipped=stats.lanes_skipped,
            demotions=list(stats.demotions),
            phase_seconds=stats.phase_seconds(), started=started,
            lanes_spliced=stats.lanes_spliced,
            base_arena=result.base_arena)

    def _settle_batch(self, jobs: List[SimulationJob],
                      compiled: CompiledCircuit, config: SimulationConfig,
                      waveforms, engine_name: str, backend,
                      gate_evaluations: int, lanes_skipped: int,
                      demotions: List[str], phase_seconds: Dict[str, float],
                      started: float, lanes_spliced: int = 0,
                      base_arena=None) -> None:
        """Demultiplex one executed plane into per-job results.

        Shared by the in-process path (waveforms fresh off the engine)
        and the sharded path (waveforms rebuilt from a mapped result
        plane) — the apportionment, reports, caching and settlement are
        identical either way, which is most of the bit-identity
        contract.  ``base_arena`` (in-process delta path only) is the
        batch's captured waveform state; each job's slice is pinned in
        its compat group's base ring for later incremental jobs.
        """
        if demotions:
            self._metrics.record_demotions(len(demotions))
        self._metrics.record_splice(gate_evaluations, lanes_spliced)
        seconds = _time.monotonic() - started
        total_slots = sum(job.num_slots for job in jobs)
        self._metrics.record_phases(phase_seconds)

        start = 0
        now = _time.monotonic()
        for position, job in enumerate(jobs):
            n = job.num_slots
            wave_slice = waveforms[start:start + n]
            if base_arena is not None:
                self._cache.put_base(
                    job.compat_key,
                    base_arena.take(np.arange(start, start + n)),
                    tag=job.fingerprint)
            start += n
            evals = gate_evaluations * n // total_slots
            skipped = lanes_skipped * n // total_slots
            spliced = lanes_spliced * n // total_slots
            report = RunReport(
                circuit_name=compiled.circuit.name,
                num_slots=n,
                chunk_slots=total_slots,
                chunks=[ChunkReport(index=position, num_slots=n,
                                    attempts=[AttemptReport(
                                        engine=f"service:{engine_name}",
                                        waveform_capacity=config.waveform_capacity,
                                        memory_budget=0,
                                        seconds=seconds)])],
                backend=backend,
                backend_demotions=list(demotions),
                wall_seconds=seconds,
                gate_evaluations=evals,
                lanes_skipped=skipped,
                lanes_spliced=spliced,
                phase_seconds={name: value * n / total_slots
                               for name, value in phase_seconds.items()},
            )
            job_result = JobResult(
                waveforms=wave_slice,
                slot_labels=job.plan.labels(),
                engine=engine_name,
                gate_evaluations=evals,
                cache_hit=False,
                latency_seconds=now - job.submitted,
                report=report,
            )
            # One bulk gather makes the cache entry private up front, so
            # admission can skip its per-waveform deep copy
            # (``copy=False``); the CRC32 verify-on-hit is unchanged.
            self._cache.put(job.fingerprint, CachedResult(
                waveforms=_private_waveforms(wave_slice),
                slot_labels=job_result.slot_labels,
                engine=engine_name,
                gate_evaluations=evals,
            ), copy=False)
            self._finish_job(job, result=job_result)

    # -- sharded execution (router callbacks) ---------------------------------

    def _record_shard_dispatch(self, batch: PendingBatch,
                               jobs: List[SimulationJob],
                               shard_index: int) -> None:
        """Router callback: one batch left for a shard process."""
        for job in jobs:
            job.shard = shard_index
        self._metrics.record_batch(len(jobs),
                                   sum(job.num_slots for job in jobs))

    def _complete_shard_batch(self, batch: PendingBatch,
                              jobs: List[SimulationJob], outcome: dict,
                              arena, shard_index: int,
                              started: float) -> None:
        """Router callback: demux one ``done`` reply.

        ``arena`` is the parent's zero-copy mapping of the shard's
        result plane; the waveform payload never crossed a pipe.
        """
        from repro.service.shard import unpack_result_plane, wanted_nets

        breaker = self._breaker_for(batch.compat_key)
        try:
            compiled = self.circuit(jobs[0].circuit_key)
            config = jobs[0].config
            waveforms = unpack_result_plane(
                arena, outcome["layout"], wanted_nets(compiled, config))
            faults.trip("service.demux", corruptible=waveforms)
            self._settle_batch(
                jobs, compiled, config, waveforms,
                engine_name=outcome["engine"], backend=outcome["backend"],
                gate_evaluations=outcome["gate_evaluations"],
                lanes_skipped=outcome["lanes_skipped"],
                demotions=list(outcome["demotions"]),
                phase_seconds=outcome["phase_seconds"], started=started,
                lanes_spliced=outcome.get("lanes_spliced", 0))
        except Exception as error:  # noqa: BLE001 - isolate, then report
            self._isolate_or_fail(jobs, error, breaker)
        else:
            breaker.record_success()

    def _shard_batch_error(self, batch: PendingBatch,
                           jobs: List[SimulationJob], exc_name: str,
                           message: str) -> None:
        """Router callback: the shard reported a batch failure."""
        error = self._rebuild_shard_error(exc_name, message)
        breaker = self._breaker_for(batch.compat_key)
        self._isolate_or_fail(jobs, error, breaker)

    def _isolate_or_fail(self, jobs: List[SimulationJob],
                         error: BaseException, breaker) -> None:
        """Sharded poison isolation: singletons re-dispatch, one fails.

        The in-process pool re-runs singletons inline on the same
        worker; here the re-dispatch goes back through the router (the
        shard serves other groups meanwhile), with the same outcome:
        only the guilty job surfaces the failure.
        """
        if len(jobs) > 1:
            for job in jobs:
                if job.future.done():
                    continue
                single = PendingBatch(compat_key=job.compat_key)
                single.add(job, _time.monotonic())
                self._dispatch(single)
        else:
            if self._finish_job(jobs[0], error=error):
                breaker.record_failure()

    @staticmethod
    def _rebuild_shard_error(exc_name: str, message: str) -> Exception:
        """Best-effort reconstruction of a shard-side exception.

        Only ``(type name, message)`` cross the process boundary — a
        traceback object would not pickle and the classes may carry
        unpicklable payloads.  Names resolve against
        :mod:`repro.errors`, then builtins; anything else (or a
        constructor wanting more arguments) degrades to
        :class:`~repro.errors.ShardError` with the name preserved in
        the text.
        """
        import builtins

        for namespace in (_errors, builtins):
            cls = getattr(namespace, exc_name, None)
            if isinstance(cls, type) and issubclass(cls, Exception):
                try:
                    return cls(message)
                except TypeError:
                    break
        return ShardError(f"shard raised {exc_name}: {message}")

    # -- cache ----------------------------------------------------------------

    def _cached_result(self, compiled: CompiledCircuit, entry: CachedResult,
                       latency: float) -> JobResult:
        n = len(entry.waveforms)
        report = RunReport(
            circuit_name=compiled.circuit.name,
            num_slots=n,
            chunk_slots=n,
            chunks=[ChunkReport(index=0, num_slots=n, from_checkpoint=True)],
            wall_seconds=latency,
        )
        return JobResult(
            waveforms=[dict(slot) for slot in entry.waveforms],
            slot_labels=list(entry.slot_labels),
            engine=ENGINE_CACHE,
            gate_evaluations=0,
            cache_hit=True,
            latency_seconds=latency,
            report=report,
        )


def _private_waveforms(wave_slice) -> List[Dict[str, Waveform]]:
    """Privately-owned copy of one job's waveform slice, in one gather.

    The cache must not retain views into the engine's (or the shard
    plane's) batch-wide flat buffer; instead of one ``ndarray.copy``
    per waveform, every toggle array is gathered into a single freshly
    allocated buffer and sliced back out — one C-level ``concatenate``
    for the whole job.
    """
    chunks = [wave.times
              for nets in wave_slice for wave in nets.values()]
    flat = (np.concatenate(chunks) if chunks
            else np.empty(0, dtype=np.float64))
    out: List[Dict[str, Waveform]] = []
    position = 0
    for nets in wave_slice:
        copied = {}
        for net, wave in nets.items():
            size = wave.times.size
            copied[net] = Waveform.trusted(
                wave.initial, flat[position:position + size])
            position += size
        out.append(copied)
    return out
