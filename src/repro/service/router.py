"""Shard router: consistent-hash dispatch over supervised worker processes.

:class:`ShardRouter` is the process-pool sibling of the threaded
:class:`~repro.service.pool.EnginePool` — the service's batching loop
hands it :class:`~repro.service.batcher.PendingBatch` es and the router
owns everything between the batcher and the job futures:

* **placement** — a batch's compatibility group maps to a *home* shard
  on a consistent-hash ring (stable vnode points per shard index, so
  one group's engine/plan/arena state stays hot in one process); when
  the home shard's backlog reaches ``shard_queue_depth``, the batch
  *spills* to the least-loaded shard instead (load-aware rebalancing —
  one hot group still saturates every core);
* **transport** — per shard, a small ring of parent-owned input planes
  and shard-owned result planes in shared memory; the control pipe
  carries only pickled descriptors, whose sizes feed the
  ``ipc_tx/rx_bytes`` counters (waveform payloads never cross a pipe);
* **supervision** — a tick thread watches every shard: a dead process
  (or one wedged past ``hang_timeout_s``, which — unlike a thread —
  can simply be killed) is respawned, its registry replayed, its
  in-flight batches re-queued **once** (``PendingBatch.requeued``; a
  second loss fails those jobs with
  :class:`~repro.errors.WorkerLostError`), and every shared segment the
  dead process owned is reclaimed by name.  Job futures settle exactly
  once through the service's ``_finish_job``, so a duplicate completion
  from a recovered race is harmless;
* **fault seams** — ``shard.spawn`` trips in this process right before
  each spawn (a ``raise``/``die`` rule fails the attempt; the router
  retries once, then surfaces :class:`~repro.errors.ShardError`);
  ``shard.dispatch`` trips inside the shard (see
  :mod:`repro.service.shard`).
"""

from __future__ import annotations

import bisect
import hashlib
import multiprocessing
import os
import pickle
import threading
import time as _time
from collections import deque
from typing import Callable, Dict, List, Optional, Tuple

from repro import faults
from repro.errors import InjectedFaultError, ShardError, WorkerLostError
from repro.faults.plan import WorkerDeathError
from repro.service.batcher import PendingBatch
from repro.service.shard import _shard_main, input_layout, pack_batch_inputs
from repro.service.shm import (
    SharedArena,
    segment_name,
    sweep_orphans,
    sweep_pid,
)

__all__ = ["ShardRouter"]

#: Vnode points per shard on the consistent-hash ring.
_RING_POINTS = 32

_PICKLE_PROTOCOL = 4

_router_serial_lock = threading.Lock()
_router_serial = 0


def _next_serial() -> int:
    global _router_serial
    with _router_serial_lock:
        _router_serial += 1
        return _router_serial


def _build_ring(num_shards: int) -> List[Tuple[int, int]]:
    ring: List[Tuple[int, int]] = []
    for shard in range(num_shards):
        for point in range(_RING_POINTS):
            digest = hashlib.sha256(
                f"repro-shard-{shard}-{point}".encode("ascii")).digest()
            ring.append((int.from_bytes(digest[:8], "big"), shard))
    ring.sort()
    return ring


class _InputPlane:
    """One parent-owned input-ring slot, grown by generation."""

    def __init__(self, serial: int, shard_index: int, slot: int,
                 min_bytes: int) -> None:
        self.tag = f"r{serial}s{shard_index}i{slot}"
        self.generation = 0
        self.arena = SharedArena.create(
            segment_name(os.getpid(), f"{self.tag}g0"), min_bytes)
        #: Old generation names the shard must drop its mapping of.
        self.stale: List[str] = []

    def ensure(self, nbytes: int) -> SharedArena:
        if self.arena.size >= nbytes:
            return self.arena
        self.stale.append(self.arena.name)
        self.arena.close()
        self.arena.unlink()
        self.generation += 1
        size = 4096
        while size < nbytes:
            size *= 2
        self.arena = SharedArena.create(
            segment_name(os.getpid(), f"{self.tag}g{self.generation}"), size)
        return self.arena

    def destroy(self) -> None:
        self.arena.close()
        self.arena.unlink()


class _ShardHandle:
    """Parent-side state of one shard (guarded by its condition)."""

    def __init__(self, index: int, ring_slots: int) -> None:
        self.index = index
        self.cv = threading.Condition()
        self.send_lock = threading.Lock()
        self.proc: Optional[multiprocessing.process.BaseProcess] = None
        self.conn = None
        self.generation = 0
        self.ready = threading.Event()
        self.spawned_at = 0.0
        self.dead = False
        self.broken = False
        self.queue: "deque[PendingBatch]" = deque()
        #: batch_id -> (batch, jobs, started, in_slot, out_slot)
        self.inflight: Dict[int, tuple] = {}
        self.in_free: List[int] = list(range(ring_slots))
        self.out_free: List[int] = list(range(ring_slots))
        self.inputs: List[_InputPlane] = []
        #: Result-plane attachments, keyed by segment name; one live
        #: entry per ring slot (a grown segment replaces its slot's).
        self.attachments: Dict[str, SharedArena] = {}
        self.slot_names: Dict[int, str] = {}
        self.pong: Optional[dict] = None
        self.counters = {
            "dispatches": 0, "jobs": 0, "slots": 0,
            "respawns": 0, "kills": 0, "requeues": 0, "rebalanced_in": 0,
            "ipc_tx_bytes": 0, "ipc_rx_bytes": 0,
            "shm_in_bytes": 0, "shm_out_bytes": 0,
        }

    @property
    def load(self) -> int:
        return len(self.queue) + len(self.inflight)


class ShardRouter:
    """Consistent-hash batch routing over supervised shard processes."""

    def __init__(
        self,
        num_shards: int,
        combine: Callable,
        on_batch_done: Callable,
        on_batch_error: Callable,
        on_batch_lost: Callable,
        on_dispatch: Callable,
        ring_slots: int = 4,
        segment_bytes: int = 1 << 20,
        queue_depth: int = 4,
        hang_timeout_s: float = 30.0,
        tick_s: float = 0.05,
        spawn_timeout_s: float = 120.0,
        on_tick: Optional[Callable[[], None]] = None,
        name: str = "repro-router",
        delta_bases: int = 0,
        delta_threshold: float = 0.35,
    ) -> None:
        if num_shards < 1:
            raise ShardError("need at least one shard")
        #: Delta policy forwarded with every group registration — the
        #: base rings live shard-local (arenas never cross a pipe), so
        #: the policy travels to where the selection happens.
        self._delta_bases = delta_bases
        self._delta_threshold = delta_threshold
        self._combine = combine
        self._on_batch_done = on_batch_done
        self._on_batch_error = on_batch_error
        self._on_batch_lost = on_batch_lost
        self._on_dispatch = on_dispatch
        self._on_tick = on_tick
        self._queue_depth = queue_depth
        self._ring_slots = ring_slots
        self._segment_bytes = segment_bytes
        self._hang_timeout_s = hang_timeout_s
        self._tick_s = tick_s
        self._spawn_timeout_s = spawn_timeout_s
        self._name = name
        self._serial = _next_serial()
        self._ctx = multiprocessing.get_context("spawn")
        self._ring = _build_ring(num_shards)
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._outstanding = 0
        self._batch_serial = 0
        self._closed = False
        self.shards_respawned = 0
        self.shards_hung = 0
        self.batches_requeued = 0
        self.rebalances = 0
        self.shard_errors = 0
        #: Registry replayed into respawned shards:
        #: circuit_key -> (compiled, plans); compat_key -> group tuple.
        self._circuits: Dict[str, tuple] = {}
        self._groups: Dict[str, tuple] = {}
        self._registry_lock = threading.Lock()

        # Reclaim segments leaked by crashed services before allocating
        # our own (a SIGKILLed parent never unlinks anything).
        sweep_orphans(skip_pid=os.getpid())

        self._handles = [_ShardHandle(index, ring_slots)
                         for index in range(num_shards)]
        try:
            for handle in self._handles:
                handle.inputs = [
                    _InputPlane(self._serial, handle.index, slot,
                                segment_bytes)
                    for slot in range(ring_slots)
                ]
                self._start_shard(handle)
        except ShardError:
            self._abort_startup()
            raise
        self._dispatchers = [
            threading.Thread(target=self._dispatch_loop, args=(handle,),
                             name=f"{name}-dispatch-{handle.index}",
                             daemon=True)
            for handle in self._handles
        ]
        for thread in self._dispatchers:
            thread.start()
        self._stop_supervisor = threading.Event()
        self._supervisor = threading.Thread(
            target=self._supervise, name=f"{name}-supervisor", daemon=True)
        self._supervisor.start()

    def _abort_startup(self) -> None:
        """Tear down whatever a failed construction managed to start."""
        for handle in self._handles:
            process = handle.proc
            if process is not None:
                if process.is_alive():
                    process.kill()
                process.join(timeout=5.0)
                if process.pid is not None:
                    sweep_pid(process.pid)
            with handle.send_lock:
                if handle.conn is not None:
                    handle.conn.close()
                    handle.conn = None
            for plane in handle.inputs:
                plane.destroy()
            handle.inputs = []

    # -- registry -------------------------------------------------------------

    def register_circuit(self, key: str, compiled, plans) -> None:
        """Record and broadcast one compiled circuit (idempotent).

        ``plans`` is the parent's already-built ``CircuitPlans`` —
        pickled along so every shard's plan cache is warm before its
        first batch (and re-warmed on respawn replay).
        """
        with self._registry_lock:
            if key in self._circuits:
                return
            self._circuits[key] = (compiled, plans)
        message = ("circuit", key, compiled, plans)
        for handle in self._handles:
            self._send(handle, message)

    def register_group(self, compat_key: str, circuit_key: str, config,
                       kernel_table, variation) -> None:
        """Record and broadcast one compatibility group (idempotent)."""
        with self._registry_lock:
            if compat_key in self._groups:
                return
            self._groups[compat_key] = (circuit_key, config, kernel_table,
                                        variation, self._delta_bases,
                                        self._delta_threshold)
        message = ("group", compat_key) + self._groups[compat_key]
        for handle in self._handles:
            self._send(handle, message)

    def _replay_registry(self, handle: "_ShardHandle") -> None:
        with self._registry_lock:
            circuits = list(self._circuits.items())
            groups = list(self._groups.items())
        for key, (compiled, plans) in circuits:
            self._send(handle, ("circuit", key, compiled, plans))
        for compat_key, group in groups:
            self._send(handle, ("group", compat_key) + group)

    # -- submission -----------------------------------------------------------

    def submit(self, batch: PendingBatch) -> None:
        with self._lock:
            self._outstanding += 1
        handle, rebalanced = self._route(batch.compat_key)
        if handle is None:
            self._lost(batch, ShardError("every shard is broken"))
            return
        with handle.cv:
            if rebalanced:
                handle.counters["rebalanced_in"] += 1
            handle.queue.append(batch)
            handle.cv.notify_all()
        if rebalanced:
            with self._lock:
                self.rebalances += 1

    def _route(self, compat_key: str
               ) -> Tuple[Optional["_ShardHandle"], bool]:
        """Home shard by consistent hash, least-loaded spill when full."""
        point = int(compat_key[:16], 16)
        index = bisect.bisect_left(self._ring, (point, -1)) % len(self._ring)
        home = self._handles[self._ring[index][1]]
        candidates = [h for h in self._handles if not h.broken]
        if not candidates:
            return None, False
        if home.broken:
            return min(candidates, key=lambda h: h.load), False
        if len(candidates) > 1 and home.load >= self._queue_depth:
            spill = min(candidates, key=lambda h: h.load)
            if spill is not home and spill.load < home.load:
                return spill, True
        return home, False

    # -- shard lifecycle ------------------------------------------------------

    def _start_shard(self, handle: "_ShardHandle") -> None:
        """Spawn (or respawn) one shard; retries a failed spawn once."""
        last_error: Optional[BaseException] = None
        for _ in range(2):
            try:
                faults.trip("shard.spawn")
                self._spawn_process(handle)
                return
            except (InjectedFaultError, WorkerDeathError, OSError) as error:
                last_error = error
        handle.broken = True
        raise ShardError(
            f"shard {handle.index} failed to spawn twice: {last_error}")

    def _spawn_process(self, handle: "_ShardHandle") -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        handle.generation += 1
        process = self._ctx.Process(
            target=_shard_main,
            args=(handle.index, child_conn, self._ring_slots,
                  self._segment_bytes),
            name=f"{self._name}-shard-{handle.index}.{handle.generation}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        handle.proc = process
        handle.conn = parent_conn
        handle.ready.clear()
        handle.spawned_at = _time.monotonic()
        handle.dead = False
        receiver = threading.Thread(
            target=self._receive_loop, args=(handle, handle.generation),
            name=f"{self._name}-recv-{handle.index}.{handle.generation}",
            daemon=True)
        receiver.start()
        self._replay_registry(handle)

    def _send(self, handle: "_ShardHandle", message: tuple) -> bool:
        payload = pickle.dumps(message, protocol=_PICKLE_PROTOCOL)
        try:
            with handle.send_lock:
                conn = handle.conn
                if conn is None:
                    return False
                conn.send_bytes(payload)
        except (OSError, ValueError, BrokenPipeError):
            return False
        with handle.cv:
            handle.counters["ipc_tx_bytes"] += len(payload)
        return True

    # -- dispatcher (one thread per shard) ------------------------------------

    def _dispatch_loop(self, handle: "_ShardHandle") -> None:
        while True:
            with handle.cv:
                while not self._dispatchable(handle):
                    if self._closed and not handle.queue:
                        return
                    handle.cv.wait(timeout=0.1)
                if self._closed and not handle.queue:
                    return
                batch = handle.queue.popleft()
                in_slot = handle.in_free.pop()
                out_slot = handle.out_free.pop()
                generation = handle.generation
            try:
                self._dispatch_one(handle, batch, in_slot, out_slot,
                                   generation)
            except Exception as error:  # noqa: BLE001 - fail batch, not thread
                # Recovery resets the free lists wholesale; only return
                # slots popped from the generation still in force.
                with handle.cv:
                    if handle.generation == generation:
                        handle.in_free.append(in_slot)
                        handle.out_free.append(out_slot)
                        handle.cv.notify_all()
                self._lost(batch, error)

    def _dispatchable(self, handle: "_ShardHandle") -> bool:
        if self._closed and not handle.queue:
            return True
        return bool(handle.queue and not handle.dead and not handle.broken
                    and handle.in_free and handle.out_free)

    def _dispatch_one(self, handle: "_ShardHandle", batch: PendingBatch,
                      in_slot: int, out_slot: int, generation: int) -> None:
        jobs = [job for job in batch.jobs if not job.future.done()]
        if not jobs:
            with handle.cv:
                if handle.generation == generation:
                    handle.in_free.append(in_slot)
                    handle.out_free.append(out_slot)
                    handle.cv.notify_all()
            self._batch_finished()
            return
        pairs, plan, global_slots = self._combine(jobs)
        layout = input_layout(len(pairs), pairs[0].width, plan.num_slots)
        plane = handle.inputs[in_slot]
        arena = plane.ensure(layout["nbytes"])
        pack_batch_inputs(arena, pairs, plan, global_slots, layout)
        with self._lock:
            self._batch_serial += 1
            batch_id = self._batch_serial
        started = _time.monotonic()
        with handle.cv:
            if handle.generation != generation:
                # Recovery ran while we packed: the free lists were
                # reset (our slots are no longer ours) and the batch was
                # never in flight — just put it back for the new shard.
                handle.queue.appendleft(batch)
                handle.cv.notify_all()
                return
            drop, plane.stale = plane.stale, []
            handle.inflight[batch_id] = (batch, jobs, started, in_slot,
                                         out_slot)
            handle.counters["dispatches"] += 1
            handle.counters["jobs"] += len(jobs)
            handle.counters["slots"] += plan.num_slots
            handle.counters["shm_in_bytes"] += layout["nbytes"]
        descriptor = ("batch", {
            "batch_id": batch_id,
            "compat_key": batch.compat_key,
            "in_name": arena.name,
            "layout": layout,
            "out_slot": out_slot,
            "drop_segments": drop,
        })
        if not self._send(handle, descriptor):
            # The shard died under us: mark it so the supervisor's
            # recovery path re-queues the batch (it sits in inflight,
            # which is exactly where recovery looks).
            with handle.cv:
                if handle.generation == generation:
                    handle.dead = True
            return
        self._on_dispatch(batch, jobs, handle.index)

    # -- receiver (one thread per shard process generation) -------------------

    def _receive_loop(self, handle: "_ShardHandle", generation: int) -> None:
        conn = handle.conn
        while True:
            try:
                payload = conn.recv_bytes()
            except (EOFError, OSError):
                return
            with handle.cv:
                if handle.generation != generation:
                    return
                handle.counters["ipc_rx_bytes"] += len(payload)
            try:
                message = pickle.loads(payload)
            except Exception:  # noqa: BLE001 - corrupt control stream
                with handle.cv:
                    handle.dead = True
                return
            kind = message[0]
            if kind == "ready":
                handle.ready.set()
            elif kind == "pong":
                with handle.cv:
                    handle.pong = message[1]
                    handle.cv.notify_all()
            elif kind == "done":
                self._handle_done(handle, generation, message[1], message[2])
            elif kind == "error":
                self._handle_error(handle, generation, message[1],
                                   message[2], message[3])

    def _pop_inflight(self, handle: "_ShardHandle", generation: int,
                      batch_id: int) -> Optional[tuple]:
        with handle.cv:
            if handle.generation != generation:
                # A previous incarnation's completion arrived after
                # recovery already re-queued the batch: drop it — job
                # futures settle exactly once, and the re-executed
                # results are bit-identical by contract.
                return None
            return handle.inflight.pop(batch_id, None)

    def _handle_done(self, handle: "_ShardHandle", generation: int,
                     batch_id: int, outcome: dict) -> None:
        entry = self._pop_inflight(handle, generation, batch_id)
        if entry is None:
            return
        batch, jobs, started, in_slot, out_slot = entry
        out_name = outcome["out_name"]
        with handle.cv:
            stale = handle.slot_names.get(out_slot)
            handle.counters["shm_out_bytes"] += outcome["layout"]["nbytes"]
        if stale is not None and stale != out_name:
            old = handle.attachments.pop(stale, None)
            if old is not None:
                old.close()
        arena = handle.attachments.get(out_name)
        if arena is None:
            arena = handle.attachments[out_name] = SharedArena.attach(
                out_name)
        handle.slot_names[out_slot] = out_name
        try:
            self._on_batch_done(batch, jobs, outcome, arena,
                                handle.index, started)
        except Exception as error:  # noqa: BLE001 - demux must not kill recv
            self._on_batch_lost(batch, error)
        self._free_slots(handle, in_slot, out_slot)
        self._batch_finished()

    def _handle_error(self, handle: "_ShardHandle", generation: int,
                      batch_id: Optional[int], exc_name: str,
                      message: str) -> None:
        if batch_id is None:
            with self._lock:
                self.shard_errors += 1
            return
        entry = self._pop_inflight(handle, generation, batch_id)
        if entry is None:
            return
        batch, jobs, _, in_slot, out_slot = entry
        try:
            self._on_batch_error(batch, jobs, exc_name, message)
        except Exception as error:  # noqa: BLE001 - defensive
            self._on_batch_lost(batch, error)
        self._free_slots(handle, in_slot, out_slot)
        self._batch_finished()

    def _free_slots(self, handle: "_ShardHandle", in_slot: int,
                    out_slot: int) -> None:
        with handle.cv:
            handle.in_free.append(in_slot)
            handle.out_free.append(out_slot)
            handle.cv.notify_all()

    def _batch_finished(self) -> None:
        with self._lock:
            self._outstanding -= 1
            if self._outstanding <= 0:
                self._idle.notify_all()

    def _lost(self, batch: PendingBatch, error: BaseException) -> None:
        self._on_batch_lost(batch, error)
        self._batch_finished()

    # -- supervision ----------------------------------------------------------

    def _supervise(self) -> None:
        while not self._stop_supervisor.wait(self._tick_s):
            now = _time.monotonic()
            for handle in self._handles:
                self._check_shard(handle, now)
            if self._on_tick is not None:
                self._on_tick()

    def _check_shard(self, handle: "_ShardHandle", now: float) -> None:
        if handle.broken or self._closed:
            return
        process = handle.proc
        if process is None:
            return
        if not process.is_alive():
            self._recover(handle, hung=False)
            return
        if (not handle.ready.is_set()
                and now - handle.spawned_at > self._spawn_timeout_s):
            self._kill(handle)
            self._recover(handle, hung=True)
            return
        with handle.cv:
            wedged = any(now - started > self._hang_timeout_s
                         for _, _, started, _, _ in handle.inflight.values())
        if wedged:
            # A process — unlike a thread — can actually be killed.
            self._kill(handle)
            self._recover(handle, hung=True)

    def _kill(self, handle: "_ShardHandle") -> None:
        process = handle.proc
        if process is not None and process.is_alive():
            process.kill()
            process.join(timeout=5.0)

    def _recover(self, handle: "_ShardHandle", hung: bool) -> None:
        with handle.cv:
            handle.dead = True
            # Invalidate slots a dispatcher may have popped mid-pack:
            # generation guards every slot return and inflight insert.
            handle.generation += 1
            inflight = list(handle.inflight.values())
            handle.inflight.clear()
            handle.in_free = list(range(self._ring_slots))
            handle.out_free = list(range(self._ring_slots))
            attachments = list(handle.attachments.values())
            handle.attachments.clear()
            handle.slot_names.clear()
            handle.counters["respawns"] += 1
            if hung:
                handle.counters["kills"] += 1
        for arena in attachments:
            arena.close()
        process = handle.proc
        dead_pid = process.pid if process is not None else None
        if process is not None:
            process.join(timeout=5.0)
        if dead_pid is not None:
            # The dead shard owned its result planes; reclaim by name.
            sweep_pid(dead_pid)
        # A crash storm within one service lifetime must not accumulate
        # orphans: the startup sweep only ran once, so every respawn
        # re-sweeps segments whose owning pid no longer exists (other
        # live services keep theirs — the sweep checks liveness).
        sweep_orphans(skip_pid=os.getpid())
        with self._lock:
            self.shards_respawned += 1
            if hung:
                self.shards_hung += 1

        requeue: List[PendingBatch] = []
        for batch, _, _, _, _ in inflight:
            if batch.requeued:
                self._lost(batch, WorkerLostError(
                    "shard process lost while executing a re-queued batch"))
            else:
                batch.requeued = True
                requeue.append(batch)
        with self._lock:
            self.batches_requeued += len(requeue)
            with handle.cv:
                handle.counters["requeues"] += len(requeue)

        try:
            self._start_shard(handle)
        except ShardError as error:
            with handle.cv:
                queued = list(handle.queue)
                handle.queue.clear()
                handle.cv.notify_all()
            for batch in requeue + queued:
                self._lost(batch, error)
            return
        with handle.cv:
            # Re-queued batches go back to the front: their jobs have
            # been waiting longest.
            for batch in reversed(requeue):
                handle.queue.appendleft(batch)
            handle.cv.notify_all()

    # -- observability --------------------------------------------------------

    def ping(self, index: int, timeout_s: float = 10.0) -> Optional[dict]:
        """Round-trip health probe; shard info dict, or None on timeout."""
        handle = self._handles[index]
        with handle.cv:
            handle.pong = None
        if not self._send(handle, ("ping",)):
            return None
        deadline = _time.monotonic() + timeout_s
        with handle.cv:
            while handle.pong is None:
                remaining = deadline - _time.monotonic()
                if remaining <= 0:
                    return None
                handle.cv.wait(timeout=remaining)
            return handle.pong

    @property
    def num_shards(self) -> int:
        return len(self._handles)

    def shard_pid(self, index: int) -> Optional[int]:
        process = self._handles[index].proc
        return process.pid if process is not None else None

    def shard_load(self, index: int) -> int:
        handle = self._handles[index]
        with handle.cv:
            return handle.load

    def stats(self) -> dict:
        shards: Dict[str, dict] = {}
        totals = {"ipc_tx_bytes": 0, "ipc_rx_bytes": 0,
                  "shm_in_bytes": 0, "shm_out_bytes": 0}
        for handle in self._handles:
            with handle.cv:
                entry = dict(handle.counters)
                entry["queue_depth"] = len(handle.queue)
                entry["inflight"] = len(handle.inflight)
                entry["alive"] = bool(handle.proc is not None
                                      and handle.proc.is_alive())
                entry["pid"] = (handle.proc.pid
                                if handle.proc is not None else None)
            for key in totals:
                totals[key] += entry[key]
            shards[str(handle.index)] = entry
        with self._lock:
            return {
                "workers_replaced": self.shards_respawned,
                "workers_hung": self.shards_hung,
                "batches_requeued": self.batches_requeued,
                "shard_rebalances": self.rebalances,
                "shard_errors": self.shard_errors,
                "shards": shards,
                **totals,
            }

    # -- shutdown -------------------------------------------------------------

    def close(self, timeout_s: Optional[float] = None) -> None:
        """Drain outstanding batches, stop every shard, reclaim segments."""
        deadline = _time.monotonic() + (
            timeout_s if timeout_s is not None
            else self._hang_timeout_s * 2 + 10.0)
        with self._idle:
            while self._outstanding > 0:
                remaining = deadline - _time.monotonic()
                if remaining <= 0:
                    break
                self._idle.wait(timeout=min(remaining, 0.1))
            self._closed = True
        self._stop_supervisor.set()
        self._supervisor.join(timeout=5.0)
        for handle in self._handles:
            with handle.cv:
                handle.cv.notify_all()
        for thread in self._dispatchers:
            thread.join(timeout=5.0)
        for handle in self._handles:
            self._send(handle, ("close",))
        for handle in self._handles:
            process = handle.proc
            if process is None:
                continue
            process.join(timeout=5.0)
            if process.is_alive():
                process.kill()
                process.join(timeout=5.0)
            if process.pid is not None:
                sweep_pid(process.pid)
            with handle.send_lock:
                if handle.conn is not None:
                    handle.conn.close()
                    handle.conn = None
            for arena in handle.attachments.values():
                arena.close()
            handle.attachments.clear()
            for plane in handle.inputs:
                plane.destroy()
