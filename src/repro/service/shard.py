"""Shard worker process: engine execution behind a shared-memory plane.

One shard is one spawned process owning its own engines (and therefore
its own waveform-arena pool, plan cache and compute-backend state).  The
parent router talks to it over a control pipe that only ever carries
small pickled descriptors; the actual payloads move through shared
memory (:mod:`repro.service.shm`):

* **stimuli in** — the parent packs a batch's pattern pairs, slot plane
  and job-local ``global_slots`` into a parent-owned input plane; the
  shard builds zero-copy views over that segment and hands them
  straight to :meth:`~repro.simulation.gpu.GpuWaveSim.run`;
* **waveforms out** — the shard packs the result into a shard-owned
  result plane (per-``(net, slot)`` toggle counts + initial values +
  one flat toggle-time array, net-major), grows the segment by
  generation when a batch overflows it, and reports only the layout
  over the pipe.  The parent maps the segment zero-copy for demux.

Shard state is *replayable*: the parent records every ``circuit`` and
``group`` registration and replays them into a respawned shard after a
death, so recovery needs no handshake beyond the normal command stream.
Level plans travel with the circuit registration (the parent pickles
its already-built :class:`~repro.simulation.compiled.CircuitPlans`) and
seed the shard's plan cache at registration time — the first batch a
fresh shard executes hits a warm cache.

Fault seams: ``shard.dispatch`` trips in this process right before a
batch executes (``die`` exits the process without a reply, which is
exactly what a native crash looks like to the router); ``shard.spawn``
trips in the *parent* (see :mod:`repro.service.router`).  The fault
plan itself arrives through the inherited ``REPRO_FAULTS`` environment
or through ``SimulationConfig.faults`` riding the group registration.
"""

from __future__ import annotations

import os
import pickle
from collections import deque
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import faults
from repro.faults.plan import WorkerDeathError
from repro.service.shm import SharedArena, segment_name
from repro.simulation.base import PatternPair, SimulationConfig
from repro.simulation.compiled import CompiledCircuit, seed_level_plan_cache
from repro.simulation.delta import select_delta
from repro.simulation.grid import SlotPlan
from repro.waveform.waveform import Waveform

__all__ = [
    "input_layout",
    "pack_batch_inputs",
    "result_layout",
    "unpack_result_plane",
    "wanted_nets",
]

#: Exit codes distinguishing deliberate shard exits from interpreter
#: failures in the parent's post-mortem (purely diagnostic).
EXIT_DIED = 70       # injected WorkerDeathError (shard.dispatch:die)
EXIT_PROTOCOL = 71   # unusable control stream

_ALIGN = 8


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


def wanted_nets(compiled: CompiledCircuit, config: SimulationConfig
                ) -> List[str]:
    """The nets a result carries, in packing order.

    Must match the engine's own unpack order
    (``GpuWaveSim._unpack_waveforms``): every net in ``net_index``
    insertion order under ``record_all_nets``, else the circuit outputs.
    Parent and shard both derive this list from their own copy of the
    compiled circuit, so net names never cross the process boundary
    per batch.
    """
    if config.record_all_nets:
        return list(compiled.net_index)
    return list(compiled.circuit.outputs)


def input_layout(num_pairs: int, width: int, num_slots: int) -> dict:
    """Byte offsets of one packed input plane (and its total size)."""
    off_v1 = 0
    off_v2 = off_v1 + num_pairs * width
    off_idx = _align(off_v2 + num_pairs * width)
    off_volt = off_idx + num_slots * 8
    off_gslots = off_volt + num_slots * 8
    return {
        "num_pairs": num_pairs,
        "width": width,
        "num_slots": num_slots,
        "off_v1": off_v1,
        "off_v2": off_v2,
        "off_idx": off_idx,
        "off_volt": off_volt,
        "off_gslots": off_gslots,
        "nbytes": off_gslots + num_slots * 8,
    }


def pack_batch_inputs(arena: SharedArena, pairs: List[PatternPair],
                      plan: SlotPlan, global_slots: np.ndarray,
                      layout: dict) -> None:
    """Write one batch's stimuli into an input plane (parent side)."""
    shape = (layout["num_pairs"], layout["width"])
    v1 = arena.ndarray(shape, np.uint8, layout["off_v1"])
    v2 = arena.ndarray(shape, np.uint8, layout["off_v2"])
    for row, pair in enumerate(pairs):
        v1[row] = pair.v1
        v2[row] = pair.v2
    slots = (layout["num_slots"],)
    arena.ndarray(slots, np.int64, layout["off_idx"])[:] = \
        plan.pattern_indices
    arena.ndarray(slots, np.float64, layout["off_volt"])[:] = plan.voltages
    arena.ndarray(slots, np.int64, layout["off_gslots"])[:] = global_slots


def result_layout(num_nets: int, num_slots: int, total_toggles: int) -> dict:
    """Byte offsets of one packed result plane (and its total size)."""
    off_counts = 0
    off_initials = off_counts + num_nets * num_slots * 8
    off_times = _align(off_initials + num_nets * num_slots)
    return {
        "num_nets": num_nets,
        "num_slots": num_slots,
        "total_toggles": total_toggles,
        "off_counts": off_counts,
        "off_initials": off_initials,
        "off_times": off_times,
        "nbytes": off_times + total_toggles * 8,
    }


def unpack_result_plane(arena: SharedArena, layout: dict,
                        nets: List[str]) -> List[Dict[str, Waveform]]:
    """Rebuild per-slot waveform dicts from a mapped result plane.

    The segment itself is read zero-copy; one bulk ``copy()`` of the
    flat toggle array decouples the returned waveforms from the ring
    slot (which the shard will overwrite with a later batch) — the
    per-``(net, slot)`` :meth:`Waveform.trusted` slices then share that
    single parent-owned buffer, exactly like the in-process engine's
    flat unpack buffer.
    """
    shape = (layout["num_nets"], layout["num_slots"])
    counts = arena.ndarray(shape, np.int64, layout["off_counts"]).copy()
    initials = arena.ndarray(shape, np.uint8, layout["off_initials"]).copy()
    flat = arena.ndarray((layout["total_toggles"],), np.float64,
                         layout["off_times"]).copy()
    num_slots = layout["num_slots"]
    ends = np.cumsum(counts.reshape(-1))
    starts = ends - counts.reshape(-1)
    result: List[Dict[str, Waveform]] = [dict() for _ in range(num_slots)]
    trusted = Waveform.trusted
    lane = 0
    for row, net in enumerate(nets):
        row_initials = initials[row].tolist()
        for slot in range(num_slots):
            result[slot][net] = trusted(
                row_initials[slot], flat[starts[lane]:ends[lane]])
            lane += 1
    return result


def _pack_result(arena_for, waveforms: List[Dict[str, Waveform]],
                 nets: List[str]) -> Tuple[SharedArena, dict]:
    """Pack a result into a plane obtained from ``arena_for(nbytes)``."""
    num_slots = len(waveforms)
    num_nets = len(nets)
    counts = np.empty((num_nets, num_slots), dtype=np.int64)
    initials = np.empty((num_nets, num_slots), dtype=np.uint8)
    chunks: List[np.ndarray] = []
    for row, net in enumerate(nets):
        for slot in range(num_slots):
            wave = waveforms[slot][net]
            counts[row, slot] = wave.times.size
            initials[row, slot] = wave.initial
            chunks.append(wave.times)
    layout = result_layout(num_nets, num_slots, int(counts.sum()))
    arena = arena_for(layout["nbytes"])
    arena.ndarray(counts.shape, np.int64, layout["off_counts"])[:] = counts
    arena.ndarray(initials.shape, np.uint8,
                  layout["off_initials"])[:] = initials
    if layout["total_toggles"]:
        np.concatenate(chunks, out=arena.ndarray(
            (layout["total_toggles"],), np.float64, layout["off_times"]))
    return arena, layout


class _ResultPlane:
    """One shard-owned result-ring slot, grown by generation."""

    def __init__(self, shard_index: int, slot: int, min_bytes: int) -> None:
        self.shard_index = shard_index
        self.slot = slot
        self.min_bytes = min_bytes
        self.generation = 0
        self.arena: Optional[SharedArena] = None

    def ensure(self, nbytes: int) -> SharedArena:
        """A plane at least ``nbytes`` big; grows by replacing the
        segment under a new (generation-suffixed) name.  The old
        segment is unlinked immediately: the parent only reads a slot
        between dispatch and demux, and a slot being written was — by
        the ring protocol — already demuxed and freed by the parent, so
        nothing maps the old generation except (harmlessly) the
        parent's attachment cache, which drops it on the next ``done``.
        """
        if self.arena is not None and self.arena.size >= nbytes:
            return self.arena
        if self.arena is not None:
            self.arena.close()
            self.arena.unlink()
        self.generation += 1
        size = max(self.min_bytes, _next_size(nbytes))
        name = segment_name(
            os.getpid(),
            f"s{self.shard_index}o{self.slot}g{self.generation}")
        self.arena = SharedArena.create(name, size)
        return self.arena

    def destroy(self) -> None:
        if self.arena is not None:
            self.arena.close()
            self.arena.unlink()
            self.arena = None


def _next_size(nbytes: int) -> int:
    """Round segment sizes up so steady growth settles quickly."""
    size = 4096
    while size < nbytes:
        size *= 2
    return size


class _ShardWorker:
    """The state and command loop living inside one shard process."""

    def __init__(self, shard_index: int, conn, result_ring_slots: int,
                 min_result_bytes: int) -> None:
        self.shard_index = shard_index
        self.conn = conn
        self.circuits: Dict[str, CompiledCircuit] = {}
        #: compat_key -> (circuit_key, config, kernel_table, variation,
        #:                delta_bases, delta_threshold)
        self.groups: Dict[str, tuple] = {}
        #: compat_key -> ring of retained base arenas (shard-local: the
        #: arenas never cross the pipe, and a respawned shard simply
        #: starts cold — full simulation until new bases accumulate).
        self.bases: Dict[str, deque] = {}
        self.engines: Dict[tuple, object] = {}
        self.inputs: Dict[str, SharedArena] = {}
        self.results = [
            _ResultPlane(shard_index, slot, min_result_bytes)
            for slot in range(result_ring_slots)
        ]

    # -- control pipe ---------------------------------------------------------

    def send(self, message: tuple) -> None:
        self.conn.send_bytes(pickle.dumps(message, protocol=4))

    def run(self) -> None:
        self.send(("ready", os.getpid()))
        while True:
            try:
                message = pickle.loads(self.conn.recv_bytes())
            except (EOFError, OSError):
                # Parent went away (crash or hard kill): nothing left to
                # serve.  Segments this process owns are reclaimed by
                # the next service start's orphan sweep.
                os._exit(EXIT_PROTOCOL)
            if not self.dispatch(message):
                return

    def dispatch(self, message: tuple) -> bool:
        kind = message[0]
        if kind == "close":
            self.shutdown()
            return False
        try:
            if kind == "circuit":
                self.register_circuit(*message[1:])
            elif kind == "group":
                self.register_group(*message[1:])
            elif kind == "batch":
                self.execute(message[1])
            elif kind == "ping":
                self.send(("pong", self.info()))
            else:
                self.send(("error", None, "ShardError",
                           f"unknown command {kind!r}"))
        except WorkerDeathError:
            # Simulated shard crash: exit without a reply so the router
            # finds a corpse holding its batch — the real recovery path.
            os._exit(EXIT_DIED)
        except Exception as error:  # noqa: BLE001 - report, keep serving
            batch_id = message[1].get("batch_id") if kind == "batch" else None
            self.send(("error", batch_id, type(error).__name__, str(error)))
        return True

    # -- registry -------------------------------------------------------------

    def register_circuit(self, key: str, compiled: CompiledCircuit,
                         plans) -> None:
        self.circuits[key] = compiled
        if plans is not None:
            seed_level_plan_cache(plans)

    def register_group(self, compat_key: str, circuit_key: str,
                       config: SimulationConfig, kernel_table,
                       variation, delta_bases: int = 0,
                       delta_threshold: float = 0.35) -> None:
        if config.faults:
            faults.ensure(config.faults)
        self.groups[compat_key] = (circuit_key, config, kernel_table,
                                   variation, delta_bases, delta_threshold)

    def info(self) -> dict:
        from repro.simulation.compiled import level_plan_cache_stats
        return {
            "pid": os.getpid(),
            "shard": self.shard_index,
            "circuits": len(self.circuits),
            "groups": len(self.groups),
            "engines": len(self.engines),
            "plan_cache": level_plan_cache_stats(),
        }

    # -- execution ------------------------------------------------------------

    def engine_for(self, circuit_key: str, config: SimulationConfig):
        key = (circuit_key, config)
        engine = self.engines.get(key)
        if engine is None:
            from repro.simulation.gpu import GpuWaveSim
            compiled = self.circuits[circuit_key]
            engine = GpuWaveSim(compiled.circuit, compiled.library,
                                config=config, compiled=compiled)
            self.engines[key] = engine
        return engine

    def attach_input(self, name: str) -> SharedArena:
        arena = self.inputs.get(name)
        if arena is None:
            arena = self.inputs[name] = SharedArena.attach(name)
        return arena

    def execute(self, desc: dict) -> None:
        faults.trip("shard.dispatch")
        for stale in desc.get("drop_segments", ()):
            arena = self.inputs.pop(stale, None)
            if arena is not None:
                arena.close()
        group = self.groups.get(desc["compat_key"])
        if group is None:
            raise KeyError(
                f"unregistered compatibility group {desc['compat_key'][:12]}")
        (circuit_key, config, kernel_table, variation, delta_bases,
         delta_threshold) = group
        compiled = self.circuits[circuit_key]
        layout = desc["layout"]
        arena = self.attach_input(desc["in_name"])
        shape = (layout["num_pairs"], layout["width"])
        v1 = arena.ndarray(shape, np.uint8, layout["off_v1"])
        v2 = arena.ndarray(shape, np.uint8, layout["off_v2"])
        pairs = [PatternPair(v1[row], v2[row])
                 for row in range(layout["num_pairs"])]
        slots = (layout["num_slots"],)
        plan = SlotPlan(arena.ndarray(slots, np.int64, layout["off_idx"]),
                        arena.ndarray(slots, np.float64, layout["off_volt"]))
        global_slots = arena.ndarray(slots, np.int64, layout["off_gslots"])

        engine = self.engine_for(circuit_key, config)
        kwargs = {}
        if delta_bases > 0:
            # Shard-local delta: diff against this shard's retained
            # base ring.  Selection compares the batch's own stimulus
            # views; the captured arena owns private memory (the base
            # ring must survive the input plane's slot being recycled).
            ring = self.bases.get(desc["compat_key"])
            if ring:
                selected = select_delta(
                    list(ring)[::-1], v1, v2, plan.pattern_indices,
                    plan.voltages, global_slots, variation,
                    delta_threshold)
                if selected is not None:
                    kwargs["delta"] = selected[0]
            kwargs["capture_base"] = True
        result = engine.run(pairs, plan=plan, kernel_table=kernel_table,
                            variation=variation, global_slots=global_slots,
                            **kwargs)
        if result.base_arena is not None:
            ring = self.bases.get(desc["compat_key"])
            if ring is None or ring.maxlen != delta_bases:
                ring = self.bases[desc["compat_key"]] = deque(
                    maxlen=delta_bases)
            ring.append(result.base_arena)
        stats = engine.last_stats
        plane = self.results[desc["out_slot"]]
        _, out_layout = _pack_result(
            plane.ensure, result.waveforms, wanted_nets(compiled, config))
        self.send(("done", desc["batch_id"], {
            "out_name": plane.arena.name,
            "layout": out_layout,
            "engine": result.engine,
            "backend": stats.backend,
            "gate_evaluations": int(stats.gate_evaluations),
            "lanes_skipped": int(stats.lanes_skipped),
            "lanes_spliced": int(stats.lanes_spliced),
            "demotions": list(stats.demotions),
            "phase_seconds": stats.phase_seconds(),
        }))

    # -- shutdown -------------------------------------------------------------

    def shutdown(self) -> None:
        for arena in self.inputs.values():
            arena.close()
        for plane in self.results:
            plane.destroy()


def _shard_main(shard_index: int, conn, result_ring_slots: int,
                min_result_bytes: int) -> None:
    """Spawn target: serve the control pipe until ``close`` or death."""
    worker = _ShardWorker(shard_index, conn, result_ring_slots,
                          min_result_bytes)
    worker.run()
