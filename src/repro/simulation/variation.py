"""Per-instance process variation — Monte-Carlo on the slot plane.

The paper motivates voltage-aware simulation with the growing
process/voltage/temperature sensitivity of nano-scale devices and treats
its kernel residual as "uncertainty due to random process variations"
(Sec. V-C).  This module makes that uncertainty explicit: every slot of
the plane becomes one Monte-Carlo *die sample* with its own random
per-gate delay factors, so a single parallel run yields a whole
statistical population of timing outcomes — variation-aware validation
and fault grading (paper refs. [12, 13]) on the same engine.

Factors are derived deterministically from ``(seed, slot)`` so results
are independent of batching and reproducible across engines.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError

__all__ = ["ProcessVariation"]


@dataclass(frozen=True)
class ProcessVariation:
    """Random per-gate delay scaling for Monte-Carlo timing.

    Attributes
    ----------
    sigma:
        Relative spread of the per-gate delay factor.  With the default
        log-normal model the factor's median is exactly 1 and its log
        has standard deviation ``sigma`` — delays stay positive for any
        sigma.  The ``"normal"`` model uses ``1 + N(0, sigma)`` clipped
        at 0.05.
    seed:
        Base seed; die ``d`` uses the stream ``(seed, d)``.
    distribution:
        ``"lognormal"`` (default) or ``"normal"``.
    group_size:
        Number of consecutive slots sharing one die sample (``die =
        slot // group_size``).  Use it to simulate the *same* die under
        many patterns: lay the plan out die-major with ``group_size``
        patterns per die and every pattern of a die sees identical
        silicon.  The default 1 makes every slot its own die.
    """

    sigma: float
    seed: int = 0
    distribution: str = "lognormal"
    group_size: int = 1

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise SimulationError("variation sigma must be non-negative")
        if self.distribution not in ("lognormal", "normal"):
            raise SimulationError(
                f"unknown variation distribution {self.distribution!r}"
            )
        if self.group_size < 1:
            raise SimulationError("group_size must be >= 1")

    def factors(self, num_gates: int, slot_indices: np.ndarray) -> np.ndarray:
        """Delay factors of shape ``(num_gates, len(slot_indices))``.

        ``slot_indices`` are *global* slot numbers; the same slot always
        receives the same factors regardless of how the plane is
        batched or which engine asks.
        """
        slot_indices = np.asarray(slot_indices, dtype=np.int64)
        result = np.empty((num_gates, slot_indices.size), dtype=np.float64)
        cache = {}
        for column, slot in enumerate(slot_indices):
            die = int(slot) // self.group_size
            if die not in cache:
                rng = np.random.default_rng([self.seed, die])
                noise = rng.standard_normal(num_gates)
                if self.distribution == "lognormal":
                    cache[die] = np.exp(self.sigma * noise)
                else:
                    cache[die] = np.maximum(1.0 + self.sigma * noise, 0.05)
            result[:, column] = cache[die]
        return result
