"""Per-instance process variation — Monte-Carlo on the slot plane.

The paper motivates voltage-aware simulation with the growing
process/voltage/temperature sensitivity of nano-scale devices and treats
its kernel residual as "uncertainty due to random process variations"
(Sec. V-C).  This module makes that uncertainty explicit: every slot of
the plane becomes one Monte-Carlo *die sample* with its own random
per-gate delay factors, so a single parallel run yields a whole
statistical population of timing outcomes — variation-aware validation
and fault grading (paper refs. [12, 13]) on the same engine.

Factors are derived deterministically from ``(seed, slot)`` so results
are independent of batching and reproducible across engines.

:class:`StateDependentVariation` extends the model with the
voltage-dependence Pirbadian et al. observe for voltage-scaled circuits:
delay variability grows as the supply approaches threshold, so the
per-slot sigma scales with each slot's operating voltage while the
underlying per-die noise stream stays keyed on the global slot index.
Two slots with the same global slot *and* the same voltage therefore see
identical factors — exactly the eligibility rule
:func:`repro.simulation.delta.select_delta` enforces, so spliced and
recomputed lanes agree bit-for-bit under state-dependent statistics too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from repro.errors import SimulationError

__all__ = ["ProcessVariation", "StateDependentVariation"]


@dataclass(frozen=True)
class ProcessVariation:
    """Random per-gate delay scaling for Monte-Carlo timing.

    Attributes
    ----------
    sigma:
        Relative spread of the per-gate delay factor.  With the default
        log-normal model the factor's median is exactly 1 and its log
        has standard deviation ``sigma`` — delays stay positive for any
        sigma.  The ``"normal"`` model uses ``1 + N(0, sigma)`` clipped
        at 0.05.
    seed:
        Base seed; die ``d`` uses the stream ``(seed, d)``.
    distribution:
        ``"lognormal"`` (default) or ``"normal"``.
    group_size:
        Number of consecutive slots sharing one die sample (``die =
        slot // group_size``).  Use it to simulate the *same* die under
        many patterns: lay the plan out die-major with ``group_size``
        patterns per die and every pattern of a die sees identical
        silicon.  The default 1 makes every slot its own die.
    """

    sigma: float
    seed: int = 0
    distribution: str = "lognormal"
    group_size: int = 1

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise SimulationError("variation sigma must be non-negative")
        if self.distribution not in ("lognormal", "normal"):
            raise SimulationError(
                f"unknown variation distribution {self.distribution!r}"
            )
        if self.group_size < 1:
            raise SimulationError("group_size must be >= 1")

    def factors(self, num_gates: int, slot_indices: np.ndarray) -> np.ndarray:
        """Delay factors of shape ``(num_gates, len(slot_indices))``.

        ``slot_indices`` are *global* slot numbers; the same slot always
        receives the same factors regardless of how the plane is
        batched or which engine asks.
        """
        slot_indices = np.asarray(slot_indices, dtype=np.int64)
        result = np.empty((num_gates, slot_indices.size), dtype=np.float64)
        cache = {}
        for column, slot in enumerate(slot_indices):
            die = int(slot) // self.group_size
            if die not in cache:
                rng = np.random.default_rng([self.seed, die])
                noise = rng.standard_normal(num_gates)
                if self.distribution == "lognormal":
                    cache[die] = np.exp(self.sigma * noise)
                else:
                    cache[die] = np.maximum(1.0 + self.sigma * noise, 0.05)
            result[:, column] = cache[die]
        return result


@dataclass(frozen=True)
class StateDependentVariation:
    """Voltage-dependent Monte-Carlo delay spread (state-dependent
    statistical timing, per Pirbadian et al.).

    The effective sigma of a slot grows linearly as its supply drops
    below ``v_ref``::

        sigma_eff(v) = sigma * (1 + voltage_sensitivity * max(0, v_ref - v))

    and the per-die noise stream is the same deterministic
    ``(seed, die)`` stream :class:`ProcessVariation` uses, so the
    voltage only re-scales the spread — it never re-rolls the dice.  The
    instance must be *bound* to a slot plane (:meth:`bound`) before the
    engine asks for factors: ``slot_voltages[global_slot]`` supplies the
    voltage of every global slot, which is how per-pattern factors stay
    independent of batching.

    Attributes
    ----------
    sigma:
        Spread at (and above) ``v_ref`` — the :class:`ProcessVariation`
        baseline.
    voltage_sensitivity:
        Relative sigma growth per volt below ``v_ref`` (1/V).  0 makes
        the model collapse to plain :class:`ProcessVariation`.
    v_ref:
        Supply at which the characterized ``sigma`` was extracted.
    slot_voltages:
        Voltage per *global* slot index (a tuple, so instances stay
        hashable/fingerprintable).  Empty until :meth:`bound`.
    """

    sigma: float
    seed: int = 0
    distribution: str = "lognormal"
    group_size: int = 1
    voltage_sensitivity: float = 0.0
    v_ref: float = 1.0
    slot_voltages: Tuple[float, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise SimulationError("variation sigma must be non-negative")
        if self.distribution not in ("lognormal", "normal"):
            raise SimulationError(
                f"unknown variation distribution {self.distribution!r}")
        if self.group_size < 1:
            raise SimulationError("group_size must be >= 1")
        if self.voltage_sensitivity < 0:
            raise SimulationError("voltage sensitivity must be non-negative")
        if self.v_ref <= 0:
            raise SimulationError("reference voltage must be positive")

    def bound(self, voltages, global_slots=None) -> "StateDependentVariation":
        """A copy bound to a slot plane: ``voltages[i]`` is the supply of
        the slot whose *global* index is ``global_slots[i]`` (identity
        mapping by default)."""
        voltages = np.asarray(voltages, dtype=np.float64)
        if global_slots is None:
            table = tuple(float(v) for v in voltages)
        else:
            global_slots = np.asarray(global_slots, dtype=np.int64)
            if global_slots.shape != voltages.shape:
                raise SimulationError(
                    "global_slots must align with voltages")
            size = int(global_slots.max()) + 1 if global_slots.size else 0
            dense = np.full(size, self.v_ref, dtype=np.float64)
            dense[global_slots] = voltages
            table = tuple(float(v) for v in dense)
        return StateDependentVariation(
            sigma=self.sigma, seed=self.seed,
            distribution=self.distribution, group_size=self.group_size,
            voltage_sensitivity=self.voltage_sensitivity, v_ref=self.v_ref,
            slot_voltages=table)

    def sigma_at(self, voltage: float) -> float:
        """Effective spread at one supply voltage."""
        headroom = max(0.0, self.v_ref - voltage)
        return self.sigma * (1.0 + self.voltage_sensitivity * headroom)

    def factors(self, num_gates: int, slot_indices: np.ndarray) -> np.ndarray:
        """Delay factors of shape ``(num_gates, len(slot_indices))``.

        Same contract as :meth:`ProcessVariation.factors`; raises when a
        requested global slot has no bound voltage.
        """
        slot_indices = np.asarray(slot_indices, dtype=np.int64)
        result = np.empty((num_gates, slot_indices.size), dtype=np.float64)
        noise_cache = {}
        for column, slot in enumerate(slot_indices):
            index = int(slot)
            if index >= len(self.slot_voltages):
                raise SimulationError(
                    f"global slot {index} has no bound voltage — call "
                    "StateDependentVariation.bound(voltages, global_slots) "
                    "for the slot plane first")
            die = index // self.group_size
            if die not in noise_cache:
                rng = np.random.default_rng([self.seed, die])
                noise_cache[die] = rng.standard_normal(num_gates)
            sigma = self.sigma_at(self.slot_voltages[index])
            noise = noise_cache[die]
            if self.distribution == "lognormal":
                result[:, column] = np.exp(sigma * noise)
            else:
                result[:, column] = np.maximum(1.0 + sigma * noise, 0.05)
        return result
