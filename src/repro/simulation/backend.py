"""Pluggable compute backends for the hot simulation kernels.

The engine's inner loops — the waveform-merge kernel and the online
delay calculation (polynomial Horner evaluation, Sec. IV-A) — exist in
several implementations behind one interface:

* ``numpy``  — the vectorized lockstep port (always available).  All
  lanes of a thread group advance through their event streams together;
  a single long-waveform lane keeps every live lane iterating
  (mitigated, but not removed, by live-set compaction).
* ``numba``  — ``@njit(parallel=True)`` per-lane scalar loops over
  ``prange``: each lane runs its own event loop to exhaustion, the shape
  GATSPI demonstrates for gate-level SIMT throughput.  Includes a JIT
  Horner evaluator for :meth:`DelayKernelTable.delays_for_gates`.
  Gated on ``import numba``.
* ``cext``   — the same per-lane scalar loops as portable C99, compiled
  on first use with the system C compiler (OpenMP-parallel) and loaded
  through :mod:`ctypes`.  Covers machines where numba is not installed
  but a toolchain is.
* ``auto``   — the best available: numba, else cext, else numpy.  Never
  an import error.

Selection order: explicit :attr:`SimulationConfig.backend` (e.g. from
the ``--backend`` CLI flag), else the ``REPRO_BACKEND`` environment
variable, else ``auto``.

Equivalence guarantee: every backend implements the exact per-lane
algorithm of :func:`~repro.simulation.kernels.waveform_merge_kernel`
with identical IEEE-754 operation order, so results are **bit-identical**
across backends (asserted in ``tests/simulation/test_backend.py``).

Adding a backend: subclass :class:`ComputeBackend`, implement
``merge_kernel`` (lane-oriented API, used by micro-benchmarks and the
gather path), ``merge_group`` (dense arena API, used by the engine) and
``merge_group_sparse`` (the lane-compacted arena path driven by the
engine's activity tracker), add a loader branch to :func:`_load` and
the name to :data:`BACKEND_CHOICES`.
"""

from __future__ import annotations

import os
import time as _time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from repro.errors import SimulationError
from repro.simulation.kernels import MergeResult, waveform_merge_kernel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulation.compiled import CircuitPlans, LevelPlan

__all__ = [
    "BACKEND_CHOICES",
    "AUTO_ORDER",
    "DEMOTION_ORDER",
    "ComputeBackend",
    "GroupResult",
    "LevelsResult",
    "NumpyBackend",
    "available_backends",
    "backend_status",
    "demote_backend",
    "resolve_backend",
]

#: Valid values for ``SimulationConfig.backend`` / ``REPRO_BACKEND``.
BACKEND_CHOICES = ("auto", "numpy", "numba", "cext")

#: Preference order tried by ``auto``.
AUTO_ORDER = ("numba", "cext", "numpy")

#: Environment variable consulted when no explicit backend is configured.
ENV_VAR = "REPRO_BACKEND"


@dataclass
class GroupResult:
    """Outcome of one arena-level thread-group evaluation."""

    lanes: int            # gate instances evaluated (gates × slots)
    iterations: int       # kernel loop trips (diagnostics; see note below)
    overflow_lanes: int   # lanes that exceeded the waveform capacity
    #: Seconds spent materializing per-voltage delay arrays inside the
    #: call (numpy ``run_level`` only; the per-lane backends evaluate
    #: the Horner kernel inside the merge loop, so their delay work is
    #: inseparable from — and reported as — merge time).
    delay_seconds: float = 0.0

    # Note: the numpy backend reports global lockstep iterations, the
    # per-lane backends report the summed per-lane event count — both
    # measure kernel work, on different axes.


@dataclass
class LevelsResult:
    """Outcome of a whole-batch :meth:`ComputeBackend.run_levels` call.

    Accounting matches the equivalent sequence of per-level
    :meth:`ComputeBackend.run_level` calls exactly: ``kernel_calls``
    counts non-empty levels dispatched (the overflowing level
    included), ``lanes`` sums ``gates × slots`` over those levels.
    """

    lanes: int
    iterations: int
    overflow_lanes: int
    kernel_calls: int
    delay_seconds: float = 0.0


class ComputeBackend:
    """Interface shared by all kernel implementations."""

    name = "?"

    #: Which implementation actually executes :meth:`delays_for_gates`.
    #: The base class evaluates through numpy; backends with a native
    #: Horner evaluator override this so benchmarks and logs record the
    #: real execution path instead of a silent fallback.
    delays_impl = "numpy"

    def merge_kernel(
        self,
        input_times: np.ndarray,
        input_initial: np.ndarray,
        delays: np.ndarray,
        truth_tables: np.ndarray,
        out_capacity: int,
        inertial: bool = True,
    ) -> MergeResult:
        """Lane-oriented merge: same contract as
        :func:`~repro.simulation.kernels.waveform_merge_kernel`."""
        raise NotImplementedError

    def merge_group(
        self,
        times_all: np.ndarray,
        initial_all: np.ndarray,
        in_ids: np.ndarray,
        out_ids: np.ndarray,
        per_voltage: np.ndarray,
        slot_to_v: np.ndarray,
        factors: Optional[np.ndarray],
        truth_tables: np.ndarray,
        capacity: int,
        inertial: bool,
    ) -> GroupResult:
        """Evaluate one thread group directly against the waveform arena.

        Parameters
        ----------
        times_all, initial_all:
            The ``(nets, slots, capacity)`` toggle-time arena and the
            ``(nets, slots)`` initial values.  Inputs are read from and
            outputs written to these arrays in place.
        in_ids:
            ``(g, k)`` input net ids per gate of the group.
        out_ids:
            ``(g,)`` output net ids.
        per_voltage:
            ``(g, k, 2, V)`` pin-to-pin delays per *distinct* voltage.
        slot_to_v:
            ``(S,)`` index of each slot's voltage into the ``V`` axis.
        factors:
            Optional ``(g, S)`` Monte-Carlo delay factors.
        truth_tables:
            ``(g,)`` int64 truth tables.

        On overflow the arena contents for the group's output nets are
        unspecified — the caller discards the arena and retries at a
        larger capacity.
        """
        raise NotImplementedError

    def merge_group_sparse(
        self,
        times_all: np.ndarray,
        initial_all: np.ndarray,
        in_ids: np.ndarray,
        out_ids: np.ndarray,
        per_voltage: np.ndarray,
        slot_to_v: np.ndarray,
        factors: Optional[np.ndarray],
        truth_tables: np.ndarray,
        capacity: int,
        inertial: bool,
        lane_gates: np.ndarray,
        lane_slots: np.ndarray,
    ) -> GroupResult:
        """Lane-compacted variant of :meth:`merge_group`.

        Instead of the dense ``gates × slots`` plane, only the lanes
        listed in ``lane_gates`` / ``lane_slots`` — parallel ``(i,)``
        index arrays into the group's gate axis and the slot axis — are
        evaluated.  The engine's activity tracker compacts the plane
        down to lanes whose inputs actually carry toggles; every other
        lane's output is a pure logic settle the engine writes itself.

        The per-lane algorithm is the same, so results for dispatched
        lanes are bit-identical to a dense :meth:`merge_group` call.
        Output rows of undispatched lanes are left untouched.
        """
        raise NotImplementedError

    def delays_for_gates(self, kernel_table, type_ids, loads, nominal_delays,
                         voltages) -> np.ndarray:
        """Online delay calculation; same contract as
        :meth:`DelayKernelTable.delays_for_gates`."""
        return kernel_table.delays_for_gates(type_ids, loads, nominal_delays,
                                             voltages)

    def run_level(
        self,
        plan: "LevelPlan",
        times_all: np.ndarray,
        initial_all: np.ndarray,
        slot_to_v: np.ndarray,
        factors: Optional[np.ndarray],
        capacity: int,
        inertial: bool,
        kernel_table=None,
        nv: Optional[np.ndarray] = None,
        nc: Optional[np.ndarray] = None,
        delay_cache: Optional[Dict] = None,
        lane_gates: Optional[np.ndarray] = None,
        lane_slots: Optional[np.ndarray] = None,
    ) -> GroupResult:
        """Evaluate one whole level (all arity groups) in one call.

        ``plan`` is the level's compile-time
        :class:`~repro.simulation.compiled.LevelPlan`: arity-sorted
        compacted arrays, so the backend loops the arity runs natively
        instead of one engine dispatch per group.  Delay handling folds
        into the same entry point:

        * static mode (``kernel_table is None``) uses ``plan.nominal``
          unchanged,
        * parametric mode receives the polynomial table plus the
          *pre-normalized* predictors — ``nv`` = ``φ_V`` per distinct
          voltage, ``nc`` = ``φ_C`` per plan gate (cached on the plan) —
          and evaluates the 2-D Horner kernel per (gate, voltage); the
          per-lane backends do so inside the merge loop, never
          materializing a per-lane delay array,
        * Monte-Carlo ``factors`` (level-local ``(g, S)``, plan gate
          order) scale each delay exactly as in :meth:`merge_group`.

        ``lane_gates`` / ``lane_slots`` (plan-local, ``lane_gates``
        non-decreasing) select the activity-compacted sparse path.
        ``delay_cache`` memoizes materialized per-voltage arrays across
        overflow retries (numpy path only).  Results are bit-identical
        to the equivalent per-group :meth:`merge_group` dispatch.
        """
        raise NotImplementedError

    def run_levels(
        self,
        plans: "CircuitPlans",
        times_all: np.ndarray,
        initial_all: np.ndarray,
        slot_to_v: np.ndarray,
        factors: Optional[np.ndarray],
        capacity: int,
        inertial: bool,
        kernel_table=None,
        nv: Optional[np.ndarray] = None,
        delay_cache: Optional[Dict] = None,
    ) -> LevelsResult:
        """Evaluate *every* level of the circuit in one backend call.

        Dense (non-activity-tracked) counterpart of level-by-level
        :meth:`run_level` dispatch: levels run strictly in order, each
        against the arena the preceding levels finalized.  ``factors``
        is the full ``(num_gates, S)`` Monte-Carlo array (circuit gate
        order); backends gather it into plan order themselves.  ``nc``
        is not a parameter — the per-level ``φ_C`` memos live on
        ``plans``.  Stops at the first level with overflowing lanes so
        the caller can retry at doubled capacity.

        The base implementation loops :meth:`run_level`; backends with
        per-call dispatch overhead (ctypes marshalling in the C
        extension) override it with a single native whole-batch entry.
        Results are bit-identical either way.
        """
        space = kernel_table.space if kernel_table is not None else None
        nc_levels = (plans.normalized_loads(space)
                     if kernel_table is not None else None)
        lanes = 0
        iterations = 0
        kernel_calls = 0
        delay_seconds = 0.0
        num_slots = int(slot_to_v.size)
        for index, plan in enumerate(plans.levels):
            if plan.num_gates == 0:
                continue
            group_factors = (factors[plan.gate_indices]
                             if factors is not None else None)
            result = self.run_level(
                plan, times_all, initial_all, slot_to_v, group_factors,
                capacity, inertial, kernel_table=kernel_table, nv=nv,
                nc=nc_levels[index] if nc_levels is not None else None,
                delay_cache=delay_cache,
            )
            lanes += plan.num_gates * num_slots
            iterations += result.iterations
            kernel_calls += 1
            delay_seconds += result.delay_seconds
            if result.overflow_lanes:
                return LevelsResult(lanes=lanes, iterations=iterations,
                                    overflow_lanes=result.overflow_lanes,
                                    kernel_calls=kernel_calls,
                                    delay_seconds=delay_seconds)
        return LevelsResult(lanes=lanes, iterations=iterations,
                            overflow_lanes=0, kernel_calls=kernel_calls,
                            delay_seconds=delay_seconds)


class NumpyBackend(ComputeBackend):
    """The vectorized lockstep reference implementation."""

    name = "numpy"

    def merge_kernel(self, input_times, input_initial, delays, truth_tables,
                     out_capacity, inertial=True):
        return waveform_merge_kernel(input_times, input_initial, delays,
                                     truth_tables, out_capacity,
                                     inertial=inertial)

    def merge_group(self, times_all, initial_all, in_ids, out_ids,
                    per_voltage, slot_to_v, factors, truth_tables, capacity,
                    inertial):
        group_size, arity = in_ids.shape
        num_slots = slot_to_v.size
        lanes = group_size * num_slots

        # Gather inputs: (g, k, S, C) -> (k, g*S, C).
        input_times = times_all[in_ids].transpose(1, 0, 2, 3).reshape(
            arity, lanes, capacity
        )
        input_initial = initial_all[in_ids].transpose(1, 0, 2).reshape(
            arity, lanes
        )

        delays = per_voltage[..., slot_to_v]                     # (g, k, 2, S)
        if factors is not None:
            delays = delays * factors[:, None, None, :]
        delays = np.ascontiguousarray(delays.transpose(1, 2, 0, 3)).reshape(
            arity, 2, lanes
        )
        lane_tables = np.repeat(truth_tables, num_slots)

        merged = waveform_merge_kernel(input_times, input_initial, delays,
                                       lane_tables, capacity,
                                       inertial=inertial)
        overflow_lanes = int(merged.overflow.sum())
        if overflow_lanes == 0:
            times_all[out_ids] = merged.times.reshape(group_size, num_slots,
                                                      capacity)
            initial_all[out_ids] = merged.initial.reshape(group_size,
                                                          num_slots)
        return GroupResult(lanes=lanes, iterations=merged.iterations,
                           overflow_lanes=overflow_lanes)

    def merge_group_sparse(self, times_all, initial_all, in_ids, out_ids,
                           per_voltage, slot_to_v, factors, truth_tables,
                           capacity, inertial, lane_gates, lane_slots):
        lanes = int(lane_gates.size)

        # Gather only the active lanes: (lanes, k, C) -> (k, lanes, C).
        lane_nets = in_ids[lane_gates]                           # (lanes, k)
        input_times = np.ascontiguousarray(
            times_all[lane_nets, lane_slots[:, None]].transpose(1, 0, 2))
        input_initial = np.ascontiguousarray(
            initial_all[lane_nets, lane_slots[:, None]].T)       # (k, lanes)

        delays = per_voltage[lane_gates, :, :, slot_to_v[lane_slots]]
        if factors is not None:                                  # (lanes, k, 2)
            delays = delays * factors[lane_gates, lane_slots][:, None, None]
        delays = np.ascontiguousarray(delays.transpose(1, 2, 0))  # (k, 2, lanes)
        lane_tables = truth_tables[lane_gates]

        merged = waveform_merge_kernel(input_times, input_initial, delays,
                                       lane_tables, capacity,
                                       inertial=inertial)
        overflow_lanes = int(merged.overflow.sum())
        if overflow_lanes == 0:
            times_all[out_ids[lane_gates], lane_slots] = merged.times
            initial_all[out_ids[lane_gates], lane_slots] = merged.initial
        return GroupResult(lanes=lanes, iterations=merged.iterations,
                           overflow_lanes=overflow_lanes)

    def run_level(self, plan, times_all, initial_all, slot_to_v, factors,
                  capacity, inertial, kernel_table=None, nv=None, nc=None,
                  delay_cache=None, lane_gates=None, lane_slots=None):
        delay_seconds = 0.0
        if kernel_table is None:
            per_voltage = plan.nominal[..., None]        # (g, P, 2, 1)
        else:
            key = ("fused", plan.level, nv.tobytes())
            per_voltage = (delay_cache.get(key)
                           if delay_cache is not None else None)
            if per_voltage is None:
                start = _time.perf_counter()
                per_voltage = kernel_table.delays_from_normalized(
                    plan.type_ids, nv, nc, plan.nominal)
                delay_seconds = _time.perf_counter() - start
                if delay_cache is not None:
                    delay_cache[key] = per_voltage
        # One padded dispatch for the whole level — the same max_pins
        # group shape as the unfused level path (don't-care-padded
        # tables, spare pins on the constant-0 dummy net).  Splitting
        # into per-arity calls would multiply the lockstep kernel's
        # fixed per-call cost; per lane the padded op sequence is
        # bit-identical anyway.
        if lane_gates is not None:
            result = self.merge_group_sparse(
                times_all, initial_all, plan.in_ids, plan.out_ids,
                per_voltage, slot_to_v, factors, plan.padded_tables,
                capacity, inertial, lane_gates, lane_slots)
        else:
            result = self.merge_group(
                times_all, initial_all, plan.in_ids, plan.out_ids,
                per_voltage, slot_to_v, factors, plan.padded_tables,
                capacity, inertial)
        return GroupResult(lanes=result.lanes, iterations=result.iterations,
                           overflow_lanes=result.overflow_lanes,
                           delay_seconds=delay_seconds)


class _LaneBackend(ComputeBackend):
    """Shared shim for the per-lane scalar backends (numba / cext).

    The kernel modules expose a uniform API:

    * ``merge_lanes(times, initial, delays, tables, out_capacity,
      inertial)`` → ``(initial, times, counts, overflow, iterations)``
    * ``merge_group(times_all, initial_all, in_ids, out_ids, per_voltage,
      slot_to_v, factors, tables, capacity, inertial)``
      → ``(overflow_lanes, iterations)``
    * ``merge_group_sparse(..., lane_gates, lane_slots)`` — the
      lane-compacted entry path, same return shape
    """

    def __init__(self, kernels) -> None:
        self._kernels = kernels

    def merge_kernel(self, input_times, input_initial, delays, truth_tables,
                     out_capacity, inertial=True):
        k, num_lanes, _ = input_times.shape
        if input_initial.shape != (k, num_lanes):
            raise ValueError("input_initial shape mismatch")
        if delays.shape != (k, 2, num_lanes):
            raise ValueError("delays shape mismatch")
        initial, times, counts, overflow, iterations = self._kernels.merge_lanes(
            input_times, input_initial, delays, truth_tables, out_capacity,
            inertial,
        )
        return MergeResult(initial=initial, times=times, counts=counts,
                           overflow=overflow, iterations=int(iterations))

    def merge_group(self, times_all, initial_all, in_ids, out_ids,
                    per_voltage, slot_to_v, factors, truth_tables, capacity,
                    inertial):
        lanes = in_ids.shape[0] * slot_to_v.size
        overflow_lanes, iterations = self._kernels.merge_group(
            times_all, initial_all, in_ids, out_ids, per_voltage, slot_to_v,
            factors, truth_tables, capacity, inertial,
        )
        return GroupResult(lanes=lanes, iterations=int(iterations),
                           overflow_lanes=int(overflow_lanes))

    def merge_group_sparse(self, times_all, initial_all, in_ids, out_ids,
                           per_voltage, slot_to_v, factors, truth_tables,
                           capacity, inertial, lane_gates, lane_slots):
        overflow_lanes, iterations = self._kernels.merge_group_sparse(
            times_all, initial_all, in_ids, out_ids, per_voltage, slot_to_v,
            factors, truth_tables, capacity, inertial, lane_gates, lane_slots,
        )
        return GroupResult(lanes=int(lane_gates.size),
                           iterations=int(iterations),
                           overflow_lanes=int(overflow_lanes))

    def run_level(self, plan, times_all, initial_all, slot_to_v, factors,
                  capacity, inertial, kernel_table=None, nv=None, nc=None,
                  delay_cache=None, lane_gates=None, lane_slots=None):
        coeffs = None
        if kernel_table is not None:
            if plan.nominal.shape[1] > kernel_table.max_pins:
                raise SimulationError(
                    f"gates have {plan.nominal.shape[1]} pins but the "
                    f"kernel table holds {kernel_table.max_pins}"
                )
            coeffs = kernel_table.coefficients
        overflow_lanes, iterations = self._kernels.run_level(
            times_all, initial_all, plan.in_ids, plan.out_ids, plan.tables,
            plan.arities, plan.type_ids, plan.nominal, coeffs, nv, nc,
            slot_to_v, factors, capacity, inertial, lane_gates, lane_slots,
        )
        lanes = (int(lane_gates.size) if lane_gates is not None
                 else plan.num_gates * int(slot_to_v.size))
        return GroupResult(lanes=lanes, iterations=int(iterations),
                           overflow_lanes=int(overflow_lanes))


class NumbaBackend(_LaneBackend):
    """``@njit(parallel=True)`` per-lane loops (requires numba)."""

    name = "numba"
    delays_impl = "numba"

    def delays_for_gates(self, kernel_table, type_ids, loads, nominal_delays,
                         voltages):
        if not hasattr(kernel_table, "coefficients"):
            # Duck-typed delay model (LUT / analytical): only the
            # ``delays_for_gates`` protocol is guaranteed.
            return super().delays_for_gates(kernel_table, type_ids, loads,
                                            nominal_delays, voltages)
        return self._kernels.delays_for_gates(kernel_table, type_ids, loads,
                                              nominal_delays, voltages)


class CextBackend(_LaneBackend):
    """ctypes-loaded C kernels (requires a working C compiler)."""

    name = "cext"
    delays_impl = "cext"

    def run_levels(self, plans, times_all, initial_all, slot_to_v, factors,
                   capacity, inertial, kernel_table=None, nv=None,
                   delay_cache=None):
        # One ctypes crossing for the whole batch: the C entry loops the
        # levels over the concatenated plan arrays, so the per-call
        # marshalling cost (~15 array arguments) is paid once instead of
        # once per level.
        cat = plans.concat()
        if cat.out_ids.size == 0:
            return LevelsResult(lanes=0, iterations=0, overflow_lanes=0,
                                kernel_calls=0)
        coeffs = nc = None
        if kernel_table is not None:
            if cat.nominal.shape[1] > kernel_table.max_pins:
                raise SimulationError(
                    f"gates have {cat.nominal.shape[1]} pins but the "
                    f"kernel table holds {kernel_table.max_pins}"
                )
            coeffs = kernel_table.coefficients
            nc = plans.concat_normalized_loads(kernel_table.space)
        gathered = (np.ascontiguousarray(factors[cat.gate_indices])
                    if factors is not None else None)
        overflow_lanes, iterations, levels_done, lanes = \
            self._kernels.run_levels(
                times_all, initial_all, cat, coeffs, nv, nc, slot_to_v,
                gathered, capacity, inertial,
            )
        return LevelsResult(lanes=int(lanes), iterations=int(iterations),
                            overflow_lanes=int(overflow_lanes),
                            kernel_calls=int(levels_done))

    def delays_for_gates(self, kernel_table, type_ids, loads, nominal_delays,
                         voltages):
        if not hasattr(kernel_table, "coefficients"):
            # Duck-typed delay model (LUT / analytical): only the
            # ``delays_for_gates`` protocol is guaranteed.
            return super().delays_for_gates(kernel_table, type_ids, loads,
                                            nominal_delays, voltages)
        return self._kernels.delays_for_gates(kernel_table, type_ids, loads,
                                              nominal_delays, voltages)


# -- registry ----------------------------------------------------------------------

_CACHE: Dict[str, ComputeBackend] = {}
_FAILURES: Dict[str, str] = {}


def _clear_caches() -> None:
    """Forget loaded backends and failure reasons (for tests)."""
    _CACHE.clear()
    _FAILURES.clear()


def _load(name: str) -> Optional[ComputeBackend]:
    """Load a concrete backend, caching both successes and failures."""
    if name in _CACHE:
        return _CACHE[name]
    if name in _FAILURES:
        return None
    try:
        from repro import faults
        faults.trip("backend.load")
        if name == "numpy":
            backend: ComputeBackend = NumpyBackend()
        elif name == "numba":
            from repro.simulation import kernels_numba
            backend = NumbaBackend(kernels_numba)
        elif name == "cext":
            from repro.simulation import kernels_cext
            backend = CextBackend(kernels_cext.load())
        else:  # pragma: no cover - guarded by resolve_backend
            raise SimulationError(f"unknown backend {name!r}")
    except Exception as error:  # gated dependency missing / build failure
        _FAILURES[name] = f"{type(error).__name__}: {error}"
        return None
    _CACHE[name] = backend
    return backend


def resolve_backend(name: Optional[str] = None) -> ComputeBackend:
    """Resolve a backend by name, env var or ``auto`` preference.

    ``auto`` silently falls back along :data:`AUTO_ORDER` and can never
    fail (numpy always loads); a concrete name raises
    :class:`~repro.errors.SimulationError` when its dependency is
    missing.
    """
    requested = (name or os.environ.get(ENV_VAR) or "auto").strip().lower()
    if requested not in BACKEND_CHOICES:
        raise SimulationError(
            f"unknown compute backend {requested!r} "
            f"(choose from {', '.join(BACKEND_CHOICES)})"
        )
    if requested == "auto":
        for candidate in AUTO_ORDER:
            backend = _load(candidate)
            if backend is not None:
                return backend
        raise SimulationError(  # pragma: no cover - numpy always loads
            "no compute backend available"
        )
    backend = _load(requested)
    if backend is None:
        raise SimulationError(
            f"compute backend {requested!r} is unavailable "
            f"({_FAILURES[requested]}); use backend='auto' for automatic "
            f"fallback"
        )
    return backend


def available_backends() -> List[str]:
    """Names of the concrete backends that load on this machine."""
    return [name for name in BACKEND_CHOICES[1:] if _load(name) is not None]


def backend_status() -> Dict[str, str]:
    """Per-backend availability ("ok" or the load-failure reason)."""
    status = {}
    for name in BACKEND_CHOICES[1:]:
        status[name] = "ok" if _load(name) is not None else _FAILURES[name]
    return status


#: Demotion ladder walked when a native kernel faults repeatedly: from
#: the most accelerated backend down to the always-available numpy port.
DEMOTION_ORDER = ("cext", "numba", "numpy")


def demote_backend(name: str) -> Optional[ComputeBackend]:
    """Next *loadable* backend below ``name`` on the demotion ladder.

    Skips rungs whose dependency is missing on this machine (e.g.
    cext → numpy when numba is not installed).  Returns ``None`` at the
    numpy floor — there is nothing safer to fall back to.
    """
    try:
        position = DEMOTION_ORDER.index(name)
    except ValueError:  # pragma: no cover - unknown engine name
        return None
    for candidate in DEMOTION_ORDER[position + 1:]:
        backend = _load(candidate)
        if backend is not None:
            return backend
    return None
