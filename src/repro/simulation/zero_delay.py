"""Zero-delay (functional) logic simulation, bit-parallel over patterns.

Used wherever only settled values matter: expected test responses, fault
simulation in the ATPG substrate, and as a cross-check for the time
simulators (a time simulator's final values must equal the zero-delay
response).  Patterns are packed 64 per machine word, so one pass through
the netlist evaluates 64 vectors.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.cells.library import CellLibrary
from repro.netlist.circuit import Circuit

__all__ = ["ZeroDelaySimulator"]

_WORD_BITS = 64
_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


def _pack(bits: np.ndarray) -> np.ndarray:
    """Pack a (patterns,) 0/1 vector into uint64 words (little-endian bits)."""
    patterns = bits.size
    words = (patterns + _WORD_BITS - 1) // _WORD_BITS
    padded = np.zeros(words * _WORD_BITS, dtype=np.uint8)
    padded[:patterns] = bits
    lanes = padded.reshape(words, _WORD_BITS).astype(np.uint64)
    shifts = np.arange(_WORD_BITS, dtype=np.uint64)
    return np.bitwise_or.reduce(lanes << shifts, axis=1)


def _unpack(words: np.ndarray, patterns: int) -> np.ndarray:
    lanes = words[:, None] >> np.arange(_WORD_BITS, dtype=np.uint64)[None, :]
    return (lanes & np.uint64(1)).astype(np.uint8).reshape(-1)[:patterns]


class ZeroDelaySimulator:
    """Levelized bit-parallel functional simulator."""

    def __init__(self, circuit: Circuit, library: CellLibrary) -> None:
        circuit.validate(library)
        self.circuit = circuit
        self.library = library
        self._order = list(circuit.topological_gates())

    def evaluate(
        self,
        vectors: np.ndarray,
        nets: Optional[Sequence[str]] = None,
    ) -> Dict[str, np.ndarray]:
        """Evaluate input ``vectors`` of shape ``(patterns, num_inputs)``.

        Returns net → value vector ``(patterns,)`` for the requested nets
        (default: primary outputs).
        """
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.uint8))
        if vectors.shape[1] != len(self.circuit.inputs):
            raise ValueError(
                f"vectors have {vectors.shape[1]} columns, circuit has "
                f"{len(self.circuit.inputs)} inputs"
            )
        patterns = vectors.shape[0]
        values: Dict[str, np.ndarray] = {}
        for index, net in enumerate(self.circuit.inputs):
            values[net] = _pack(vectors[:, index])

        for gate in self._order:
            cell = self.library[gate.cell]
            operands = [values[net] for net in gate.inputs]
            values[gate.output] = np.asarray(
                cell.evaluate(operands, mask=_ALL_ONES), dtype=np.uint64
            )

        wanted = list(nets) if nets is not None else list(self.circuit.outputs)
        return {net: _unpack(values[net], patterns) for net in wanted}

    def responses(self, vectors: np.ndarray) -> np.ndarray:
        """Primary-output response matrix of shape ``(patterns, num_outputs)``."""
        outputs = self.evaluate(vectors)
        return np.stack(
            [outputs[net] for net in self.circuit.outputs], axis=1
        )
