"""Netlist compilation for the simulation engines (paper Fig. 2, step 1).

The combinational network is extracted into flat integer arrays — the
form in which the paper stores the netlist in GPU global memory:

* nets are numbered (primary inputs first, then gate outputs),
* per gate: cell type id, input net ids (padded), output net id, load
  capacitance, nominal pin-to-pin delays and a truth table,
* gates are bucketed into topological levels, and within each level into
  same-arity groups (the SIMD thread groups of Sec. IV-B: all threads of
  a group execute the same gate-function kernel).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cells.library import CellLibrary
from repro.netlist.circuit import Circuit
from repro.netlist.sdf import SdfAnnotation, annotate_nominal

__all__ = [
    "CompiledCircuit",
    "CircuitPlans",
    "ConcatPlans",
    "LevelPlan",
    "clear_level_plan_cache",
    "compile_circuit",
    "level_plan_cache_stats",
    "seed_level_plan_cache",
]


def _truth_table(cell) -> int:
    """Truth table as an integer: bit ``idx`` = output for input index
    ``idx`` where input pin ``i`` contributes bit ``i`` of ``idx``."""
    arity = cell.num_inputs
    table = 0
    for idx in range(1 << arity):
        bits = [(idx >> i) & 1 for i in range(arity)]
        if int(cell.evaluate(bits)) & 1:
            table |= 1 << idx
    return table


def _pad_truth_table(table: int, arity: int, padded_arity: int) -> int:
    """Extend a truth table with don't-care upper pins.

    The padded table returns the original output for any setting of the
    extra pins, so a gate can run in a wider SIMD group with dummy
    (constant) inputs wired to the spare pins.
    """
    padded = 0
    for idx in range(1 << padded_arity):
        if (table >> (idx & ((1 << arity) - 1))) & 1:
            padded |= 1 << idx
    return padded


@dataclass
class LevelPlan:
    """Compacted per-level execution plan for the fused dispatch path.

    All arrays are gathered once at plan-build time and list the level's
    gates sorted by (arity, gate index), so same-arity gates form
    contiguous runs — a backend's ``run_level`` walks every arity group
    in one native call instead of one Python dispatch per group.  The
    per-lane backends use the *unpadded* ``tables`` and loop only each
    gate's real pins; the vectorized numpy backend uses the don't-care
    ``padded_tables`` and dispatches the whole level as one
    ``max_pins``-wide group.  With the spare-pin inputs wired to the
    constant-0 dummy net the two are bit-equivalent.
    """

    level: int
    gate_indices: np.ndarray   # (g,) original gate ids, arity-sorted
    arities: np.ndarray        # (g,) input pin counts
    in_ids: np.ndarray         # (g, max_pins) net ids, spare pins -> dummy
    out_ids: np.ndarray        # (g,) output net ids
    tables: np.ndarray         # (g,) int64 truth tables (unpadded)
    padded_tables: np.ndarray  # (g,) int64 truth tables (don't-care padded)
    type_ids: np.ndarray       # (g,) cell type ids
    loads: np.ndarray          # (g,) output load capacitances (farads)
    nominal: np.ndarray        # (g, max_pins, 2) nominal delays (seconds)
    group_offsets: np.ndarray  # (n_groups + 1,) row bounds of arity runs
    group_arity: np.ndarray    # (n_groups,) arity of each run

    @property
    def num_gates(self) -> int:
        return int(self.gate_indices.size)

    @property
    def num_groups(self) -> int:
        return int(self.group_arity.size)


@dataclass
class ConcatPlans:
    """All level plans of a circuit concatenated row-wise.

    The whole-batch native dispatch (``ComputeBackend.run_levels``)
    walks every level in one call; ``level_offsets`` bounds each level's
    rows in the concatenated arrays.  Row order inside a level matches
    the per-level plan (arity-sorted), so per-level slices of these
    arrays are exactly the :class:`LevelPlan` arrays.
    """

    level_offsets: np.ndarray  # (L + 1,) row bounds per level
    gate_indices: np.ndarray   # (G,) original gate ids
    arities: np.ndarray        # (G,)
    in_ids: np.ndarray         # (G, max_pins)
    out_ids: np.ndarray        # (G,)
    tables: np.ndarray         # (G,) unpadded truth tables
    type_ids: np.ndarray       # (G,)
    nominal: np.ndarray        # (G, max_pins, 2)

    @property
    def num_levels(self) -> int:
        return int(self.level_offsets.size - 1)


def _build_level_plan(compiled: "CompiledCircuit", level: int,
                      bucket: np.ndarray) -> LevelPlan:
    arities = compiled.gate_arity[bucket]
    order = np.argsort(arities, kind="stable")       # keeps gate-id order
    gate_indices = np.ascontiguousarray(bucket[order])
    arities = np.ascontiguousarray(arities[order])
    group_arity, counts = np.unique(arities, return_counts=True)
    offsets = np.zeros(group_arity.size + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return LevelPlan(
        level=level,
        gate_indices=gate_indices,
        arities=arities,
        in_ids=np.ascontiguousarray(compiled.padded_inputs[gate_indices]),
        out_ids=np.ascontiguousarray(compiled.gate_output[gate_indices]),
        tables=np.ascontiguousarray(compiled.truth_tables_i64[gate_indices]),
        padded_tables=np.ascontiguousarray(
            compiled.padded_truth_tables_i64[gate_indices]),
        type_ids=np.ascontiguousarray(compiled.gate_type_ids[gate_indices]),
        loads=np.ascontiguousarray(compiled.gate_loads[gate_indices]),
        nominal=np.ascontiguousarray(compiled.nominal_delays[gate_indices]),
        group_offsets=offsets,
        group_arity=np.ascontiguousarray(group_arity, dtype=np.int64),
    )


class CircuitPlans:
    """All level plans of one circuit plus predictor-normalization memos.

    Instances are shared through a fingerprint-keyed process cache (see
    :meth:`CompiledCircuit.plans`), so two independently compiled copies
    of the same circuit — e.g. two service jobs or campaign retries with
    the same ``circuit_fingerprint`` — reuse one set of plans *and* one
    set of cached normalizations (``φ_V`` per distinct-voltage set,
    ``φ_C`` per gate) instead of recomputing them per batch/chunk.
    """

    #: Distinct-voltage normalization memos kept per parameter space.
    _VOLTAGE_MEMO_LIMIT = 16

    #: Cone-of-influence memos kept per distinct changed-input row.
    _CONE_MEMO_LIMIT = 64

    def __init__(self, compiled: "CompiledCircuit",
                 fingerprint: str = "") -> None:
        self.fingerprint = fingerprint
        self.max_pins = compiled.max_pins
        self.levels: List[LevelPlan] = [
            _build_level_plan(compiled, index, bucket)
            for index, bucket in enumerate(compiled.levels)
        ]
        self._lock = threading.Lock()
        self._norm_loads: Dict[object, Tuple[np.ndarray, ...]] = {}
        self._norm_volts: "OrderedDict[tuple, np.ndarray]" = OrderedDict()
        self._concat: Optional[ConcatPlans] = None
        self._concat_loads: Dict[object, np.ndarray] = {}
        self._cones: "OrderedDict[bytes, np.ndarray]" = OrderedDict()

    def __getstate__(self) -> dict:
        """Pickle the pure-array payload (plan warming across processes).

        The lock cannot travel, and the normalization memos are keyed
        by live parameter-space objects — a warmed shard rebuilds those
        on first use.  ``levels`` and the concatenated form are the
        expensive parts and they are plain numpy dataclasses.
        """
        return {
            "fingerprint": self.fingerprint,
            "max_pins": self.max_pins,
            "levels": self.levels,
            "concat": self._concat,
        }

    def __setstate__(self, state: dict) -> None:
        self.fingerprint = state["fingerprint"]
        self.max_pins = state["max_pins"]
        self.levels = state["levels"]
        self._lock = threading.Lock()
        self._norm_loads = {}
        self._norm_volts = OrderedDict()
        self._concat = state.get("concat")
        self._concat_loads = {}
        self._cones = OrderedDict()

    def concat(self) -> ConcatPlans:
        """The levels concatenated row-wise, built once per circuit."""
        with self._lock:
            cached = self._concat
        if cached is not None:
            return cached
        offsets = np.zeros(len(self.levels) + 1, dtype=np.int64)
        np.cumsum([plan.num_gates for plan in self.levels],
                  out=offsets[1:])
        def _cat(field, empty_shape, dtype):
            arrays = [getattr(plan, field) for plan in self.levels]
            if not arrays:
                return np.zeros(empty_shape, dtype=dtype)
            return np.ascontiguousarray(np.concatenate(arrays))
        built = ConcatPlans(
            level_offsets=offsets,
            gate_indices=_cat("gate_indices", (0,), np.int64),
            arities=_cat("arities", (0,), np.int64),
            in_ids=_cat("in_ids", (0, self.max_pins), np.int64),
            out_ids=_cat("out_ids", (0,), np.int64),
            tables=_cat("tables", (0,), np.int64),
            type_ids=_cat("type_ids", (0,), np.int64),
            nominal=_cat("nominal", (0, self.max_pins, 2), np.float64),
        )
        with self._lock:
            if self._concat is None:
                self._concat = built
            return self._concat

    def concat_normalized_loads(self, space) -> np.ndarray:
        """``φ_C`` for every gate in concatenated plan-row order."""
        with self._lock:
            cached = self._concat_loads.get(space)
        if cached is not None:
            return cached
        per_level = self.normalized_loads(space)
        flat = (np.ascontiguousarray(np.concatenate(per_level))
                if per_level else np.zeros(0, dtype=np.float64))
        with self._lock:
            return self._concat_loads.setdefault(space, flat)

    def normalized_loads(self, space) -> Sequence[np.ndarray]:
        """Per-level ``φ_C`` arrays (one ``(g,)`` array per level).

        Computed with numpy's ``log2`` exactly as
        :meth:`DelayKernelTable.delays_for_gates` would, then handed as
        plain data to every backend — the C ``log2`` may differ from
        ``np.log2`` in the last ulp, so normalization never happens in
        native code.
        """
        with self._lock:
            cached = self._norm_loads.get(space)
        if cached is not None:
            return cached
        arrays = tuple(
            np.ascontiguousarray(space.normalize_load(plan.loads),
                                 dtype=np.float64)
            for plan in self.levels
        )
        with self._lock:
            return self._norm_loads.setdefault(space, arrays)

    def normalized_voltages(self, space, voltages: np.ndarray) -> np.ndarray:
        """``φ_V`` of a distinct-voltage set, memoized per (space, set)."""
        key = (space, voltages.tobytes())
        with self._lock:
            cached = self._norm_volts.get(key)
            if cached is not None:
                self._norm_volts.move_to_end(key)
                return cached
        nv = np.ascontiguousarray(space.normalize_voltage(voltages),
                                  dtype=np.float64)
        with self._lock:
            self._norm_volts[key] = nv
            while len(self._norm_volts) > self._VOLTAGE_MEMO_LIMIT:
                self._norm_volts.popitem(last=False)
        return nv

    def input_cones(self, compiled: "CompiledCircuit",
                    changed_rows: np.ndarray) -> np.ndarray:
        """Cone of influence of changed-input sets through the levels.

        ``changed_rows`` is ``(R, num_inputs)`` bool — each row one
        distinct changed-input set.  Returns ``(num_nets + 1, R)`` bool:
        net × row membership in the cone (a net is in the cone iff some
        changed input reaches it through the level graph; the dummy net
        never is).  The propagation is one ``any`` reduction per level
        over the per-level fanin arrays — rows are memoized by content
        (delta traffic repeats the same few perturbation patterns), so
        a sweep's second job pays nothing.
        """
        changed_rows = np.ascontiguousarray(changed_rows, dtype=bool)
        num_rows = changed_rows.shape[0]
        keys = [changed_rows[row].tobytes() for row in range(num_rows)]
        out = np.zeros((compiled.num_nets + 1, num_rows), dtype=bool)
        missing: List[int] = []
        with self._lock:
            for row, key in enumerate(keys):
                cached = self._cones.get(key)
                if cached is None:
                    missing.append(row)
                else:
                    self._cones.move_to_end(key)
                    out[:, row] = cached
        if missing:
            cols = np.zeros((compiled.num_nets + 1, len(missing)),
                            dtype=bool)
            cols[compiled.input_net_ids] = changed_rows[missing].T
            for plan in self.levels:
                cols[plan.out_ids] = cols[plan.in_ids].any(axis=1)
            cols[compiled.dummy_net_id] = False
            out[:, missing] = cols
            with self._lock:
                for local, row in enumerate(missing):
                    self._cones[keys[row]] = np.ascontiguousarray(
                        cols[:, local])
                while len(self._cones) > self._CONE_MEMO_LIMIT:
                    self._cones.popitem(last=False)
        return out


#: Process-wide plan cache keyed by ``circuit_fingerprint`` — the same
#: identity the service layer uses to dedup registered circuits, so
#: re-compiled copies of one circuit share plans.
_PLAN_CACHE: "OrderedDict[str, CircuitPlans]" = OrderedDict()
_PLAN_CACHE_LIMIT = 8
_PLAN_CACHE_LOCK = threading.Lock()
_plan_cache_hits = 0
_plan_cache_misses = 0


def level_plan_cache_stats() -> Dict[str, int]:
    """Hit/miss/entry counters of the fingerprint-keyed plan cache."""
    with _PLAN_CACHE_LOCK:
        return {
            "hits": _plan_cache_hits,
            "misses": _plan_cache_misses,
            "entries": len(_PLAN_CACHE),
        }


def clear_level_plan_cache() -> None:
    """Drop all cached plans and reset the counters (for tests)."""
    global _plan_cache_hits, _plan_cache_misses
    with _PLAN_CACHE_LOCK:
        _PLAN_CACHE.clear()
        _plan_cache_hits = 0
        _plan_cache_misses = 0


def seed_level_plan_cache(plans: "CircuitPlans") -> None:
    """Insert pre-built plans under their own fingerprint key.

    This is how a shard worker process is warmed at spawn: the parent
    pickles the :class:`CircuitPlans` it already built (pure arrays —
    see ``CircuitPlans.__getstate__``) and the shard seeds its process
    cache, so the first batch dispatched to a fresh shard hits the plan
    cache instead of rebuilding every level plan.  A plan already cached
    under the same fingerprint wins (live memos must not be discarded);
    plans without a fingerprint are not cacheable and are ignored.
    """
    if not plans.fingerprint:
        return
    with _PLAN_CACHE_LOCK:
        if plans.fingerprint in _PLAN_CACHE:
            return
        _PLAN_CACHE[plans.fingerprint] = plans
        while len(_PLAN_CACHE) > _PLAN_CACHE_LIMIT:
            _PLAN_CACHE.popitem(last=False)


@dataclass
class CompiledCircuit:
    """Flat-array circuit representation shared by the engines."""

    circuit: Circuit
    library: CellLibrary
    net_index: Dict[str, int]
    num_nets: int
    input_net_ids: np.ndarray        # (num_inputs,)
    output_net_ids: np.ndarray       # (num_outputs,)
    gate_type_ids: np.ndarray        # (G,)
    gate_arity: np.ndarray           # (G,)
    gate_inputs: np.ndarray          # (G, max_pins) net ids, -1 padding
    gate_output: np.ndarray          # (G,)
    gate_loads: np.ndarray           # (G,) farads
    nominal_delays: np.ndarray       # (G, max_pins, 2) seconds
    truth_tables: np.ndarray         # (G,) uint32
    padded_truth_tables: np.ndarray  # (G,) uint32, don't-care padded to max_pins
    padded_inputs: np.ndarray        # (G, max_pins) net ids, spare pins -> dummy net
    dummy_net_id: int                # constant-0 net fed to spare pins
    levels: List[np.ndarray]         # gate indices per level
    level_groups: List[List[Tuple[int, np.ndarray]]]  # per level: (arity, gate idx)
    #: int64 views of the truth tables, in the exact dtype the kernel
    #: backends consume — gathered per gate group without a per-call
    #: ``astype`` reallocation.
    truth_tables_i64: np.ndarray         # (G,) int64
    padded_truth_tables_i64: np.ndarray  # (G,) int64
    #: Per-level fanin bookkeeping: the padded input net ids, output net
    #: ids and int64 truth tables of each level's gates, gathered once at
    #: compile time (the engine reads them per level, per batch, per
    #: overflow retry — and the activity tracker derives its per-(gate,
    #: slot) active mask from ``level_inputs``).
    level_inputs: List[np.ndarray]   # per level: (g, max_pins) net ids
    level_outputs: List[np.ndarray]  # per level: (g,) net ids
    level_tables: List[np.ndarray]   # per level: (g,) int64 padded tables

    @property
    def num_gates(self) -> int:
        return int(self.gate_type_ids.size)

    @property
    def max_pins(self) -> int:
        return int(self.gate_inputs.shape[1])

    def net_id(self, net: str) -> int:
        return self.net_index[net]

    def plans(self) -> CircuitPlans:
        """The circuit's level plans, shared across equal fingerprints.

        Each call keys the process-wide cache by
        ``circuit_fingerprint(self)`` (plus a digest of the gate loads)
        and either returns the cached :class:`CircuitPlans` or builds
        and caches them.  Plans are *not* stored on the instance: they
        hold a lock and must not travel through pickle, and an instance
        attribute would go stale on the shallow-copy-and-mutate pattern
        fault injectors use.  Callers cache the returned object.
        """
        global _plan_cache_hits, _plan_cache_misses
        from repro.runtime.fingerprint import circuit_fingerprint

        # The key is recomputed per call (callers cache the returned
        # plans): caching it on the instance would survive the shallow
        # ``copy.copy`` + delay-mutation pattern fault injectors use and
        # serve stale plans.  ``circuit_fingerprint`` covers the nominal
        # delays; the load digest covers custom-``loads`` compiles that
        # share delays but not capacitances.
        loads_digest = hashlib.sha256(
            np.ascontiguousarray(self.gate_loads).tobytes()).hexdigest()[:16]
        key = f"{circuit_fingerprint(self)}:{loads_digest}"
        with _PLAN_CACHE_LOCK:
            plans = _PLAN_CACHE.get(key)
            if plans is not None:
                _plan_cache_hits += 1
                _PLAN_CACHE.move_to_end(key)
                return plans
        built = CircuitPlans(self, fingerprint=key)
        with _PLAN_CACHE_LOCK:
            plans = _PLAN_CACHE.get(key)
            if plans is not None:          # lost a build race: keep first
                _plan_cache_hits += 1
                return plans
            _plan_cache_misses += 1
            _PLAN_CACHE[key] = built
            while len(_PLAN_CACHE) > _PLAN_CACHE_LIMIT:
                _PLAN_CACHE.popitem(last=False)
        return built


def compile_circuit(
    circuit: Circuit,
    library: CellLibrary,
    annotation: Optional[SdfAnnotation] = None,
    loads: Optional[Dict[str, float]] = None,
) -> CompiledCircuit:
    """Compile a validated circuit into flat arrays.

    ``annotation`` supplies the nominal pin-to-pin delays (SDF); when
    omitted it is derived from the default electrical model at the
    nominal voltage.  ``loads`` likewise defaults to the SPEF-equivalent
    computed from the library's pin capacitances.
    """
    circuit.validate(library)
    loads = loads or circuit.net_loads(library)
    annotation = annotation or annotate_nominal(circuit, library, loads=loads)

    net_index: Dict[str, int] = {}
    for net in circuit.inputs:
        net_index[net] = len(net_index)
    for gate in circuit.gates:
        net_index[gate.output] = len(net_index)

    num_gates = circuit.num_gates
    max_pins = max((len(g.inputs) for g in circuit.gates), default=1)
    gate_type_ids = np.zeros(num_gates, dtype=np.int64)
    gate_arity = np.zeros(num_gates, dtype=np.int64)
    gate_inputs = np.full((num_gates, max_pins), -1, dtype=np.int64)
    gate_output = np.zeros(num_gates, dtype=np.int64)
    gate_loads = np.zeros(num_gates, dtype=np.float64)
    nominal = np.zeros((num_gates, max_pins, 2), dtype=np.float64)
    truth_tables = np.zeros(num_gates, dtype=np.uint32)

    padded_tables = np.zeros(num_gates, dtype=np.uint32)
    pad_cache: Dict[Tuple[int, int], int] = {}

    for index, gate in enumerate(circuit.gates):
        cell = library[gate.cell]
        gate_type_ids[index] = library.type_id(gate.cell)
        gate_arity[index] = len(gate.inputs)
        for pin, net in enumerate(gate.inputs):
            gate_inputs[index, pin] = net_index[net]
        gate_output[index] = net_index[gate.output]
        gate_loads[index] = loads[gate.output]
        for pin, (rise, fall) in enumerate(annotation.gate_delays(gate.name)):
            nominal[index, pin, 0] = rise
            nominal[index, pin, 1] = fall
        table = _truth_table(cell)
        truth_tables[index] = table
        key = (table, len(gate.inputs))
        if key not in pad_cache:
            pad_cache[key] = _pad_truth_table(table, len(gate.inputs), max_pins)
        padded_tables[index] = pad_cache[key]

    # Spare pins of narrow gates point at a reserved constant-0 net so a
    # whole level can run as one uniform SIMD group.
    dummy_net_id = len(net_index)
    padded_inputs = gate_inputs.copy()
    padded_inputs[padded_inputs < 0] = dummy_net_id

    levels = [np.asarray(bucket, dtype=np.int64) for bucket in circuit.levelize()]
    level_groups: List[List[Tuple[int, np.ndarray]]] = []
    for bucket in levels:
        groups: Dict[int, List[int]] = {}
        for gate_index in bucket:
            groups.setdefault(int(gate_arity[gate_index]), []).append(int(gate_index))
        level_groups.append(
            [(arity, np.asarray(indices, dtype=np.int64))
             for arity, indices in sorted(groups.items())]
        )

    padded_tables_i64 = padded_tables.astype(np.int64)

    return CompiledCircuit(
        circuit=circuit,
        library=library,
        net_index=net_index,
        num_nets=len(net_index),
        input_net_ids=np.asarray([net_index[n] for n in circuit.inputs], dtype=np.int64),
        output_net_ids=np.asarray([net_index[n] for n in circuit.outputs], dtype=np.int64),
        gate_type_ids=gate_type_ids,
        gate_arity=gate_arity,
        gate_inputs=gate_inputs,
        gate_output=gate_output,
        gate_loads=gate_loads,
        nominal_delays=nominal,
        truth_tables=truth_tables,
        padded_truth_tables=padded_tables,
        padded_inputs=padded_inputs,
        dummy_net_id=dummy_net_id,
        levels=levels,
        level_groups=level_groups,
        truth_tables_i64=truth_tables.astype(np.int64),
        padded_truth_tables_i64=padded_tables_i64,
        level_inputs=[padded_inputs[bucket] for bucket in levels],
        level_outputs=[gate_output[bucket] for bucket in levels],
        level_tables=[padded_tables_i64[bucket] for bucket in levels],
    )
