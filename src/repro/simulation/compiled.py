"""Netlist compilation for the simulation engines (paper Fig. 2, step 1).

The combinational network is extracted into flat integer arrays — the
form in which the paper stores the netlist in GPU global memory:

* nets are numbered (primary inputs first, then gate outputs),
* per gate: cell type id, input net ids (padded), output net id, load
  capacitance, nominal pin-to-pin delays and a truth table,
* gates are bucketed into topological levels, and within each level into
  same-arity groups (the SIMD thread groups of Sec. IV-B: all threads of
  a group execute the same gate-function kernel).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cells.library import CellLibrary
from repro.netlist.circuit import Circuit
from repro.netlist.sdf import SdfAnnotation, annotate_nominal

__all__ = ["CompiledCircuit", "compile_circuit"]


def _truth_table(cell) -> int:
    """Truth table as an integer: bit ``idx`` = output for input index
    ``idx`` where input pin ``i`` contributes bit ``i`` of ``idx``."""
    arity = cell.num_inputs
    table = 0
    for idx in range(1 << arity):
        bits = [(idx >> i) & 1 for i in range(arity)]
        if int(cell.evaluate(bits)) & 1:
            table |= 1 << idx
    return table


def _pad_truth_table(table: int, arity: int, padded_arity: int) -> int:
    """Extend a truth table with don't-care upper pins.

    The padded table returns the original output for any setting of the
    extra pins, so a gate can run in a wider SIMD group with dummy
    (constant) inputs wired to the spare pins.
    """
    padded = 0
    for idx in range(1 << padded_arity):
        if (table >> (idx & ((1 << arity) - 1))) & 1:
            padded |= 1 << idx
    return padded


@dataclass
class CompiledCircuit:
    """Flat-array circuit representation shared by the engines."""

    circuit: Circuit
    library: CellLibrary
    net_index: Dict[str, int]
    num_nets: int
    input_net_ids: np.ndarray        # (num_inputs,)
    output_net_ids: np.ndarray       # (num_outputs,)
    gate_type_ids: np.ndarray        # (G,)
    gate_arity: np.ndarray           # (G,)
    gate_inputs: np.ndarray          # (G, max_pins) net ids, -1 padding
    gate_output: np.ndarray          # (G,)
    gate_loads: np.ndarray           # (G,) farads
    nominal_delays: np.ndarray       # (G, max_pins, 2) seconds
    truth_tables: np.ndarray         # (G,) uint32
    padded_truth_tables: np.ndarray  # (G,) uint32, don't-care padded to max_pins
    padded_inputs: np.ndarray        # (G, max_pins) net ids, spare pins -> dummy net
    dummy_net_id: int                # constant-0 net fed to spare pins
    levels: List[np.ndarray]         # gate indices per level
    level_groups: List[List[Tuple[int, np.ndarray]]]  # per level: (arity, gate idx)
    #: int64 views of the truth tables, in the exact dtype the kernel
    #: backends consume — gathered per gate group without a per-call
    #: ``astype`` reallocation.
    truth_tables_i64: np.ndarray         # (G,) int64
    padded_truth_tables_i64: np.ndarray  # (G,) int64
    #: Per-level fanin bookkeeping: the padded input net ids, output net
    #: ids and int64 truth tables of each level's gates, gathered once at
    #: compile time (the engine reads them per level, per batch, per
    #: overflow retry — and the activity tracker derives its per-(gate,
    #: slot) active mask from ``level_inputs``).
    level_inputs: List[np.ndarray]   # per level: (g, max_pins) net ids
    level_outputs: List[np.ndarray]  # per level: (g,) net ids
    level_tables: List[np.ndarray]   # per level: (g,) int64 padded tables

    @property
    def num_gates(self) -> int:
        return int(self.gate_type_ids.size)

    @property
    def max_pins(self) -> int:
        return int(self.gate_inputs.shape[1])

    def net_id(self, net: str) -> int:
        return self.net_index[net]


def compile_circuit(
    circuit: Circuit,
    library: CellLibrary,
    annotation: Optional[SdfAnnotation] = None,
    loads: Optional[Dict[str, float]] = None,
) -> CompiledCircuit:
    """Compile a validated circuit into flat arrays.

    ``annotation`` supplies the nominal pin-to-pin delays (SDF); when
    omitted it is derived from the default electrical model at the
    nominal voltage.  ``loads`` likewise defaults to the SPEF-equivalent
    computed from the library's pin capacitances.
    """
    circuit.validate(library)
    loads = loads or circuit.net_loads(library)
    annotation = annotation or annotate_nominal(circuit, library, loads=loads)

    net_index: Dict[str, int] = {}
    for net in circuit.inputs:
        net_index[net] = len(net_index)
    for gate in circuit.gates:
        net_index[gate.output] = len(net_index)

    num_gates = circuit.num_gates
    max_pins = max((len(g.inputs) for g in circuit.gates), default=1)
    gate_type_ids = np.zeros(num_gates, dtype=np.int64)
    gate_arity = np.zeros(num_gates, dtype=np.int64)
    gate_inputs = np.full((num_gates, max_pins), -1, dtype=np.int64)
    gate_output = np.zeros(num_gates, dtype=np.int64)
    gate_loads = np.zeros(num_gates, dtype=np.float64)
    nominal = np.zeros((num_gates, max_pins, 2), dtype=np.float64)
    truth_tables = np.zeros(num_gates, dtype=np.uint32)

    padded_tables = np.zeros(num_gates, dtype=np.uint32)
    pad_cache: Dict[Tuple[int, int], int] = {}

    for index, gate in enumerate(circuit.gates):
        cell = library[gate.cell]
        gate_type_ids[index] = library.type_id(gate.cell)
        gate_arity[index] = len(gate.inputs)
        for pin, net in enumerate(gate.inputs):
            gate_inputs[index, pin] = net_index[net]
        gate_output[index] = net_index[gate.output]
        gate_loads[index] = loads[gate.output]
        for pin, (rise, fall) in enumerate(annotation.gate_delays(gate.name)):
            nominal[index, pin, 0] = rise
            nominal[index, pin, 1] = fall
        table = _truth_table(cell)
        truth_tables[index] = table
        key = (table, len(gate.inputs))
        if key not in pad_cache:
            pad_cache[key] = _pad_truth_table(table, len(gate.inputs), max_pins)
        padded_tables[index] = pad_cache[key]

    # Spare pins of narrow gates point at a reserved constant-0 net so a
    # whole level can run as one uniform SIMD group.
    dummy_net_id = len(net_index)
    padded_inputs = gate_inputs.copy()
    padded_inputs[padded_inputs < 0] = dummy_net_id

    levels = [np.asarray(bucket, dtype=np.int64) for bucket in circuit.levelize()]
    level_groups: List[List[Tuple[int, np.ndarray]]] = []
    for bucket in levels:
        groups: Dict[int, List[int]] = {}
        for gate_index in bucket:
            groups.setdefault(int(gate_arity[gate_index]), []).append(int(gate_index))
        level_groups.append(
            [(arity, np.asarray(indices, dtype=np.int64))
             for arity, indices in sorted(groups.items())]
        )

    padded_tables_i64 = padded_tables.astype(np.int64)

    return CompiledCircuit(
        circuit=circuit,
        library=library,
        net_index=net_index,
        num_nets=len(net_index),
        input_net_ids=np.asarray([net_index[n] for n in circuit.inputs], dtype=np.int64),
        output_net_ids=np.asarray([net_index[n] for n in circuit.outputs], dtype=np.int64),
        gate_type_ids=gate_type_ids,
        gate_arity=gate_arity,
        gate_inputs=gate_inputs,
        gate_output=gate_output,
        gate_loads=gate_loads,
        nominal_delays=nominal,
        truth_tables=truth_tables,
        padded_truth_tables=padded_tables,
        padded_inputs=padded_inputs,
        dummy_net_id=dummy_net_id,
        levels=levels,
        level_groups=level_groups,
        truth_tables_i64=truth_tables.astype(np.int64),
        padded_truth_tables_i64=padded_tables_i64,
        level_inputs=[padded_inputs[bucket] for bucket in levels],
        level_outputs=[gate_output[bucket] for bucket in levels],
        level_tables=[padded_tables_i64[bucket] for bucket in levels],
    )
