"""Incremental re-simulation: cached base arenas and delta plans.

Service traffic is near-duplicate — the same circuit re-simulated under
slightly different stimuli or operating points (an AVFS voltage sweep
shares 15 of 16 points between consecutive jobs).  The exact-fingerprint
``ResultCache`` cannot exploit that: one flipped input or one new
voltage misses, and the whole dense/sparse simulation runs again.

This module holds the pieces that make *partial* reuse possible:

* :class:`BaseArena` — a compact, self-contained snapshot of one run's
  full internal waveform state (per-``(net, slot)`` initial values,
  toggle counts and a flat toggle-time array, plus the stimuli and
  operating points that produced it).  The engine captures one as a
  by-product of a normal run (``capture_base=True``) and the service
  retains it in the cache's base ring, keyed by compatibility group.
* :class:`DeltaPlan` — the per-slot mapping of an incoming job onto a
  base arena: which base slot each job slot reuses (``-1`` = no match,
  simulate from scratch) and which input bits changed.  The engine
  turns the changed bits into a cone of influence
  (:meth:`~repro.simulation.compiled.CircuitPlans.input_cones`) and
  only dispatches lanes inside the cone; everything else is *spliced*
  out of the base arena, bit-identical by construction.
* :func:`select_delta` — the cheap base-selection policy: diff the
  job's stimuli/operating points against every retained base, pick the
  base with the smallest total changed-input cost, and refuse (return
  ``None``) when the changed fraction reaches the fallback threshold —
  a near-disjoint job must not pay cone overhead on top of a full run.

Correctness requirements baked into the layout:

* ``starts[net, slot]`` are arbitrary offsets into ``times`` — each
  ``(net, slot)`` block is contiguous and ascending, but there is no
  global ordering requirement, so :meth:`BaseArena.take` and
  :meth:`BaseArena.concat` never reshuffle payload bytes.
* Monte-Carlo splice safety is keyed on ``global_slots``: per-die delay
  factors derive deterministically from the global slot index, so a
  base slot is only eligible for a variation-bearing job when its
  global slot matches — a spliced lane and a recomputed lane then see
  identical randomness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["BaseArena", "DeltaPlan", "select_delta"]


def _gather_blocks(counts: np.ndarray, starts: np.ndarray,
                   times: np.ndarray) -> Tuple[np.ndarray, np.ndarray,
                                               np.ndarray, np.ndarray]:
    """Gather the ragged ``(net, slot)`` blocks named by ``counts`` /
    ``starts`` (2-D, same shape) out of ``times`` into a fresh flat
    array, in ``np.nonzero`` (row-major) order.

    Returns ``(rows, cols, new_starts, flat)`` where ``new_starts`` are
    the block offsets inside ``flat`` for the nonzero positions.
    """
    rows, cols = np.nonzero(counts)
    cnt = counts[rows, cols]
    ends = np.cumsum(cnt)
    total = int(ends[-1]) if ends.size else 0
    offsets = ends - cnt
    span = np.arange(total, dtype=np.int64) - np.repeat(offsets, cnt)
    src = np.repeat(starts[rows, cols], cnt) + span
    return rows, cols, offsets, times[src]


@dataclass
class BaseArena:
    """Snapshot of one run's full waveform state, splice-ready.

    ``initial``/``counts``/``starts`` are ``(num_nets, num_slots)``;
    ``times`` is the flat toggle-time payload; ``v1``/``v2`` are the
    per-slot stimulus planes ``(num_slots, width)`` and ``voltages`` /
    ``global_slots`` the per-slot operating points — everything
    :func:`select_delta` needs to diff a new job without touching the
    payload.
    """

    initial: np.ndarray
    counts: np.ndarray
    starts: np.ndarray
    times: np.ndarray
    v1: np.ndarray
    v2: np.ndarray
    voltages: np.ndarray
    global_slots: np.ndarray
    #: The base run's already-unpacked per-slot waveform dicts (wanted
    #: nets only), shared by reference.  A fully spliced slot is served
    #: straight from here — zero per-waveform reconstruction cost — when
    #: the requesting run wants the same net set; the payload arrays
    #: above stay authoritative for cone seeding and re-capture.
    waveforms: Optional[List[Dict[str, object]]] = None

    @property
    def num_nets(self) -> int:
        return self.counts.shape[0]

    @property
    def num_slots(self) -> int:
        return self.counts.shape[1]

    @property
    def nbytes(self) -> int:
        return (self.initial.nbytes + self.counts.nbytes
                + self.starts.nbytes + self.times.nbytes + self.v1.nbytes
                + self.v2.nbytes + self.voltages.nbytes
                + self.global_slots.nbytes)

    @classmethod
    def assemble(cls, capture: Dict[int, tuple], num_nets: int,
                 num_slots: int, v1: np.ndarray, v2: np.ndarray,
                 voltages: np.ndarray, global_slots: np.ndarray,
                 waveforms: Optional[List[Dict[str, object]]] = None
                 ) -> "BaseArena":
        """Build an arena from the engine's per-slot capture records.

        ``capture[slot]`` is ``(initial (N,), counts (N,), flat times)``
        with the flat chunk net-major inside the slot.  Chunks may be
        views into engine scratch; concatenation makes the arena own
        private memory.
        """
        initial = np.zeros((num_nets, num_slots), dtype=np.uint8)
        counts = np.zeros((num_nets, num_slots), dtype=np.int64)
        starts = np.zeros((num_nets, num_slots), dtype=np.int64)
        chunks: List[np.ndarray] = []
        offset = 0
        for slot in range(num_slots):
            init_s, cnt_s, flat_s = capture[slot]
            initial[:, slot] = init_s
            counts[:, slot] = cnt_s
            ends = np.cumsum(cnt_s)
            starts[:, slot] = offset + ends - cnt_s
            chunks.append(np.asarray(flat_s, dtype=np.float64).reshape(-1))
            offset += int(ends[-1]) if ends.size else 0
        times = (np.concatenate(chunks) if chunks
                 else np.empty(0, dtype=np.float64))
        return cls(
            initial=initial, counts=counts, starts=starts, times=times,
            v1=np.ascontiguousarray(v1, dtype=np.uint8),
            v2=np.ascontiguousarray(v2, dtype=np.uint8),
            voltages=np.asarray(voltages, dtype=np.float64).copy(),
            global_slots=np.asarray(global_slots, dtype=np.int64).copy(),
            waveforms=waveforms,
        )

    def column(self, slot: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """One slot's capture record ``(initial, counts, flat times)``
        in net-major order — the passthrough used when a fully spliced
        slot must itself feed a new base capture."""
        counts = self.counts[:, slot:slot + 1]
        starts = self.starts[:, slot:slot + 1]
        _, _, _, flat = _gather_blocks(counts, starts, self.times)
        return (self.initial[:, slot].copy(), self.counts[:, slot].copy(),
                flat)

    def take(self, indices: np.ndarray) -> "BaseArena":
        """A private arena holding only the given slots (gathered
        payload; shares nothing with ``self``)."""
        indices = np.asarray(indices, dtype=np.int64)
        counts = self.counts[:, indices]
        rows, cols, offsets, flat = _gather_blocks(
            counts, self.starts[:, indices], self.times)
        starts = np.zeros_like(counts)
        starts[rows, cols] = offsets
        return BaseArena(
            initial=self.initial[:, indices].copy(),
            counts=counts.copy(), starts=starts, times=flat,
            v1=self.v1[indices].copy(), v2=self.v2[indices].copy(),
            voltages=self.voltages[indices].copy(),
            global_slots=self.global_slots[indices].copy(),
            waveforms=(None if self.waveforms is None
                       else [self.waveforms[int(i)] for i in indices]),
        )

    @classmethod
    def concat(cls, arenas: Sequence["BaseArena"]) -> "BaseArena":
        """Concatenate along the slot axis; block offsets shift by each
        arena's cumulative payload size, payload bytes never move
        relative to each other."""
        if len(arenas) == 1:
            return arenas[0]
        starts = []
        offset = 0
        for arena in arenas:
            starts.append(arena.starts + offset)
            offset += arena.times.size
        if all(a.waveforms is not None for a in arenas):
            waveforms: Optional[List[Dict[str, object]]] = []
            for arena in arenas:
                waveforms.extend(arena.waveforms)  # type: ignore[arg-type]
        else:
            waveforms = None
        return cls(
            initial=np.concatenate([a.initial for a in arenas], axis=1),
            counts=np.concatenate([a.counts for a in arenas], axis=1),
            starts=np.concatenate(starts, axis=1),
            times=np.concatenate([a.times for a in arenas]),
            v1=np.concatenate([a.v1 for a in arenas], axis=0),
            v2=np.concatenate([a.v2 for a in arenas], axis=0),
            voltages=np.concatenate([a.voltages for a in arenas]),
            global_slots=np.concatenate([a.global_slots for a in arenas]),
            waveforms=waveforms,
        )


@dataclass
class DeltaPlan:
    """Per-slot mapping of a job onto a :class:`BaseArena`.

    ``base_slot[s]`` is the base slot job slot ``s`` reuses (``-1`` =
    unmapped, simulate from scratch); ``changed_inputs[s]`` flags the
    input positions whose stimulus differs from the mapped base slot
    (all-``False`` = full splice, no evaluation at all).
    """

    base: BaseArena
    base_slot: np.ndarray
    changed_inputs: np.ndarray

    def take(self, indices: np.ndarray) -> "DeltaPlan":
        indices = np.asarray(indices, dtype=np.int64)
        return DeltaPlan(self.base, self.base_slot[indices].copy(),
                         self.changed_inputs[indices].copy())

    @staticmethod
    def concat(plans: Sequence[Optional["DeltaPlan"]],
               slot_counts: Sequence[int], width: int
               ) -> Optional["DeltaPlan"]:
        """Merge per-job plans into one batch plan (``None`` jobs get
        all-unmapped rows); returns ``None`` when no job has a plan."""
        if not any(plan is not None for plan in plans):
            return None
        arenas = [plan.base for plan in plans if plan is not None]
        offsets = np.cumsum([0] + [a.num_slots for a in arenas])
        base = BaseArena.concat(arenas)
        slot_rows: List[np.ndarray] = []
        changed_rows: List[np.ndarray] = []
        used = 0
        for plan, n in zip(plans, slot_counts):
            if plan is None:
                slot_rows.append(np.full(n, -1, dtype=np.int64))
                changed_rows.append(np.zeros((n, width), dtype=bool))
            else:
                mapped = plan.base_slot >= 0
                shifted = plan.base_slot + np.where(
                    mapped, offsets[used], 0)
                slot_rows.append(shifted.astype(np.int64))
                changed_rows.append(plan.changed_inputs)
                used += 1
        return DeltaPlan(base, np.concatenate(slot_rows),
                         np.concatenate(changed_rows, axis=0))


def select_delta(bases: Sequence[BaseArena], v1: np.ndarray,
                 v2: np.ndarray, pattern_indices: np.ndarray,
                 voltages: np.ndarray, global_slots: Optional[np.ndarray],
                 variation, threshold: float
                 ) -> Optional[Tuple[DeltaPlan, float]]:
    """Pick the best base for a job, or ``None`` to run the full path.

    ``v1``/``v2`` are the job's stacked pattern planes ``(P, width)``;
    ``pattern_indices``/``voltages`` its slot plane.  A base slot is
    *eligible* for a job slot only at the same voltage (delay tables
    are voltage-dependent) and — under Monte-Carlo ``variation`` — the
    same global slot index (die factors derive from it).  The changed
    fraction is the mean per-slot changed-input share, 1.0 for slots no
    base slot can serve; at ``frac >= threshold`` the job is not worth
    a delta pass and the caller falls back to full simulation.
    """
    if not bases:
        return None
    width = v1.shape[1]
    if width == 0:
        return None
    pattern_indices = np.asarray(pattern_indices, dtype=np.int64)
    pv1 = v1[pattern_indices]
    pt = (v1 != v2)[pattern_indices]
    num_slots = pv1.shape[0]
    voltages = np.asarray(voltages, dtype=np.float64)
    if global_slots is None:
        global_slots = np.arange(num_slots, dtype=np.int64)
    else:
        global_slots = np.asarray(global_slots, dtype=np.int64)

    unmatched = width + 1
    toggles = v1 != v2
    best: Optional[tuple] = None
    for index, base in enumerate(bases):
        if base.v1.shape[1] != width:
            continue
        bt = base.v1 != base.v2
        # Diff per distinct *pattern* (P x base slots), then gather per
        # job slot — a multi-voltage plane repeats each pattern at every
        # operating point, so this is a num_voltages-fold saving over
        # the naive per-slot broadcast.
        pat_diff = ((v1[:, None, :] != base.v1[None, :, :])
                    | (toggles[:, None, :] != bt[None, :, :])).sum(axis=2)
        diff = pat_diff[pattern_indices]
        eligible = voltages[:, None] == base.voltages[None, :]
        if variation is not None:
            eligible &= (global_slots[:, None]
                         == base.global_slots[None, :])
        cost = np.where(eligible, diff, unmatched)
        slot_of = np.argmin(cost, axis=1)
        slot_cost = cost[np.arange(num_slots), slot_of]
        total = int(np.minimum(slot_cost, width).sum())
        if best is None or total < best[0]:
            best = (total, slot_of, slot_cost, index)
    if best is None:
        return None
    total, slot_of, slot_cost, index = best
    frac = total / float(num_slots * width)
    if frac >= threshold:
        return None
    base = bases[index]
    mapped = slot_cost <= width
    base_slot = np.where(mapped, slot_of, -1).astype(np.int64)
    changed = np.zeros((num_slots, width), dtype=bool)
    if mapped.any():
        rows = np.nonzero(mapped)[0]
        cols = base_slot[rows]
        bt = base.v1 != base.v2
        changed[rows] = ((pv1[rows] != base.v1[cols])
                         | (pt[rows] != bt[cols]))
    return DeltaPlan(base, base_slot, changed), frac
