"""Slot-plane organization (paper Fig. 3).

The GPU engine evaluates a two-dimensional *slot plane*: one axis spans
input stimuli (pattern pairs), the other spans operating points (supply
voltages of parallel circuit instances).  Every slot is an independent
simulation problem; the engine is free to trade the two axes off against
each other to fill the machine — the flexibility the paper highlights in
Sec. IV-B.

:class:`SlotPlan` enumerates the slots of a run and can chunk itself into
batches that bound the waveform-memory footprint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

import numpy as np

__all__ = ["SlotPlan"]


@dataclass(frozen=True)
class SlotPlan:
    """The slots of a simulation run.

    Each slot pairs a pattern index with a supply voltage.  Construction
    helpers cover the two common layouts:

    * :meth:`cross` — every pattern under every voltage (n × m slots,
      the full Fig. 3 plane; used for voltage sweeps like Table II),
    * :meth:`zip` — pattern *k* under voltage *k* (heterogeneous AVFS
      instances, one slot each).
    """

    pattern_indices: np.ndarray
    voltages: np.ndarray

    def __post_init__(self) -> None:
        patterns = np.asarray(self.pattern_indices, dtype=np.int64)
        volts = np.asarray(self.voltages, dtype=np.float64)
        if patterns.shape != volts.shape or patterns.ndim != 1:
            raise ValueError("pattern indices and voltages must be equal-length vectors")
        if patterns.size == 0:
            raise ValueError("slot plan must contain at least one slot")
        if int(patterns.min()) < 0:
            raise ValueError("pattern indices must be non-negative")
        object.__setattr__(self, "pattern_indices", patterns)
        object.__setattr__(self, "voltages", volts)

    # -- constructors ------------------------------------------------------------

    @classmethod
    def cross(cls, num_patterns: int, voltages: Sequence[float]) -> "SlotPlan":
        """Full plane: ``num_patterns × len(voltages)`` slots.

        Slot order is voltage-major: all patterns at the first voltage,
        then all at the second, … — keeping each voltage's slots
        contiguous for cache-friendly per-instance extraction.
        """
        volts = np.asarray(list(voltages), dtype=np.float64)
        patterns = np.tile(np.arange(num_patterns, dtype=np.int64), len(volts))
        return cls(pattern_indices=patterns, voltages=np.repeat(volts, num_patterns))

    @classmethod
    def zip(cls, pattern_indices: Sequence[int], voltages: Sequence[float]) -> "SlotPlan":
        """One slot per (pattern, voltage) pair, matched element-wise."""
        return cls(
            pattern_indices=np.asarray(list(pattern_indices), dtype=np.int64),
            voltages=np.asarray(list(voltages), dtype=np.float64),
        )

    @classmethod
    def uniform(cls, num_patterns: int, voltage: float) -> "SlotPlan":
        """All patterns under a single operating point (Table I setup)."""
        return cls.cross(num_patterns, [voltage])

    @classmethod
    def concat(cls, plans: Sequence["SlotPlan"],
               pattern_offsets: Sequence[int] = None) -> "SlotPlan":
        """Stack sub-plans into one shared plane (the service batcher).

        ``pattern_offsets`` shifts each plan's pattern indices by the
        position of that plan's stimuli in the combined pattern list, so
        independently numbered jobs can share one plane without index
        collisions.
        """
        if not plans:
            raise ValueError("concat needs at least one plan")
        if pattern_offsets is None:
            pattern_offsets = [0] * len(plans)
        if len(pattern_offsets) != len(plans):
            raise ValueError("need one pattern offset per plan")
        return cls(
            pattern_indices=np.concatenate(
                [p.pattern_indices + int(off)
                 for p, off in zip(plans, pattern_offsets)]),
            voltages=np.concatenate([p.voltages for p in plans]),
        )

    # -- queries -------------------------------------------------------------------

    @property
    def num_slots(self) -> int:
        return int(self.pattern_indices.size)

    def labels(self) -> List[Tuple[int, float]]:
        """``(pattern_index, voltage)`` per slot."""
        return list(zip(self.pattern_indices.tolist(), self.voltages.tolist()))

    def distinct_voltages(self) -> np.ndarray:
        return np.unique(self.voltages)

    def slots_for_voltage(self, voltage: float) -> np.ndarray:
        """Slot indices evaluating at the given voltage."""
        return np.where(np.isclose(self.voltages, voltage))[0]

    def take(self, indices) -> "SlotPlan":
        """Sub-plan of the given slot indices (demux / chunk slicing)."""
        chosen = np.asarray(indices, dtype=np.int64)
        return SlotPlan(pattern_indices=self.pattern_indices[chosen],
                        voltages=self.voltages[chosen])

    # -- batching -------------------------------------------------------------------

    def batches(self, max_slots: int) -> Iterator[Tuple[np.ndarray, "SlotPlan"]]:
        """Chunk into sub-plans of at most ``max_slots`` slots.

        Yields ``(slot_indices, sub_plan)`` so callers can stitch results
        back into the full plane.
        """
        if max_slots < 1:
            raise ValueError("max_slots must be positive")
        for start in range(0, self.num_slots, max_slots):
            indices = np.arange(start, min(start + max_slots, self.num_slots))
            yield indices, self.take(indices)
