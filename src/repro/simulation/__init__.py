"""Time simulation engines.

* :mod:`repro.simulation.zero_delay` — plain logic evaluation (responses),
* :mod:`repro.simulation.event_driven` — the serial event-queue baseline
  (stands in for the commercial event-driven simulator of Table I),
* :mod:`repro.simulation.gpu` — the paper's contribution: the massively
  parallel waveform simulator with online parametric delay calculation,
  vectorized across the slot plane of stimuli × operating points.
"""

from repro.simulation.backend import (
    available_backends,
    backend_status,
    resolve_backend,
)
from repro.simulation.base import (
    PatternPair,
    SimulationConfig,
    SimulationResult,
    stimuli_from_pair,
)
from repro.simulation.grid import SlotPlan
from repro.simulation.zero_delay import ZeroDelaySimulator
from repro.simulation.event_driven import EventDrivenSimulator
from repro.simulation.gpu import GpuWaveSim
from repro.simulation.multi import MultiDeviceWaveSim
from repro.simulation.pool import (
    clear_engine_pool,
    engine_pool_stats,
    pooled_engine,
)
from repro.simulation.variation import (
    ProcessVariation,
    StateDependentVariation,
)

__all__ = [
    "available_backends",
    "backend_status",
    "resolve_backend",
    "clear_engine_pool",
    "engine_pool_stats",
    "pooled_engine",
    "ProcessVariation",
    "StateDependentVariation",
    "PatternPair",
    "SimulationConfig",
    "SimulationResult",
    "stimuli_from_pair",
    "SlotPlan",
    "ZeroDelaySimulator",
    "EventDrivenSimulator",
    "GpuWaveSim",
    "MultiDeviceWaveSim",
]
