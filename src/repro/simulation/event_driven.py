"""Serial event-driven time simulation (the Table I baseline).

A classic single-threaded event-queue simulator: net toggles are kept in
a priority queue; when a net toggles, its sink gates re-evaluate and
schedule output toggles after their pin-to-pin delay, with cancellation
and inertial pulse filtering.  One pattern pair is simulated at a time —
the algorithm class of the "conventional serial commercial event-driven
logic level time simulator" the paper compares against.

The simulator supports both delay modes so it can double as a reference
oracle for the parallel engine:

* **static** — nominal SDF delays only (like the commercial tool),
* **parametric** — delays adapted per operating point through the same
  polynomial kernel table the GPU engine uses (Eq. 9).

Timing semantics (shared with :mod:`repro.simulation.gpu`):

* transitions propagate with the pin-to-pin delay selected by causing
  pin and output polarity,
* a scheduled toggle at or before the pending one cancels both
  (causality), and in ``inertial`` mode a toggle closer than the new
  transition's own propagation delay to the pending one also cancels
  both (pulse filtering; the paper sets inertial = propagation delay),
* simultaneous input events are applied together before one evaluation;
  the lowest-numbered toggling pin selects the delay.
"""

from __future__ import annotations

import heapq
import time as _time
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cells.library import CellLibrary
from repro.core.delay_kernel import DelayKernelTable
from repro.errors import SimulationError
from repro.netlist.circuit import Circuit
from repro.netlist.sdf import SdfAnnotation
from repro.simulation.base import (
    LAUNCH_TIME,
    PatternPair,
    SimulationConfig,
    SimulationResult,
)
from repro.simulation.compiled import CompiledCircuit, compile_circuit
from repro.waveform.waveform import Waveform

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulation.variation import ProcessVariation

__all__ = ["EventDrivenSimulator"]


class EventDrivenSimulator:
    """Single-threaded event-queue waveform simulator."""

    def __init__(
        self,
        circuit: Circuit,
        library: CellLibrary,
        annotation: Optional[SdfAnnotation] = None,
        loads: Optional[Dict[str, float]] = None,
        config: Optional[SimulationConfig] = None,
        compiled: Optional[CompiledCircuit] = None,
    ) -> None:
        self.config = config or SimulationConfig()
        self.compiled = compiled or compile_circuit(circuit, library, annotation, loads)
        # net id -> [(gate index, pin index), ...]
        fanout: List[List[Tuple[int, int]]] = [[] for _ in range(self.compiled.num_nets)]
        for gate_index in range(self.compiled.num_gates):
            arity = int(self.compiled.gate_arity[gate_index])
            for pin in range(arity):
                fanout[int(self.compiled.gate_inputs[gate_index, pin])].append(
                    (gate_index, pin)
                )
        self._fanout = fanout

    # -- delay preparation -------------------------------------------------------

    def _delays(self, voltage: Optional[float],
                kernel_table: Optional[DelayKernelTable]) -> np.ndarray:
        """Per-gate pin/polarity delays, shape ``(G, max_pins, 2)``."""
        if kernel_table is None:
            return self.compiled.nominal_delays
        if voltage is None:
            raise SimulationError("parametric mode requires a voltage")
        adapted = kernel_table.delays_for_gates(
            self.compiled.gate_type_ids,
            self.compiled.gate_loads,
            self.compiled.nominal_delays,
            np.asarray([voltage], dtype=np.float64),
        )
        return adapted[..., 0]

    # -- public API -----------------------------------------------------------------

    def run(
        self,
        pairs: Sequence[PatternPair],
        voltage: float = 0.8,
        kernel_table: Optional[DelayKernelTable] = None,
        variation: Optional["ProcessVariation"] = None,
        slot_indices: Optional[np.ndarray] = None,
    ) -> SimulationResult:
        """Simulate the pattern pairs serially at one operating point.

        With ``kernel_table`` the delays are voltage-adapted via the
        polynomial kernels; without it the nominal (static) delays are
        used, matching the conventional-baseline column of Table I.
        ``variation`` applies the same per-slot Monte-Carlo delay
        factors as the parallel engine; ``slot_indices`` optionally maps
        each pair to its *global* slot number (defaults to the pair
        index) so chunked fallback runs reproduce the parallel engine's
        die factors exactly.
        """
        delays = self._delays(voltage, kernel_table)
        factors = None
        if variation is not None:
            if slot_indices is None:
                slot_indices = np.arange(len(pairs))
            else:
                slot_indices = np.asarray(slot_indices, dtype=np.int64)
                if slot_indices.shape != (len(pairs),):
                    raise SimulationError(
                        "slot_indices must provide one index per pair"
                    )
            factors = variation.factors(self.compiled.num_gates,
                                        slot_indices)
        start = _time.perf_counter()
        waveforms: List[Dict[str, Waveform]] = []
        evaluations = 0
        for index, pair in enumerate(pairs):
            slot_delays = delays
            if factors is not None:
                slot_delays = delays * factors[:, index][:, None, None]
            slot_waveforms, evals = self._simulate_pair(pair, slot_delays)
            waveforms.append(slot_waveforms)
            evaluations += evals
        return SimulationResult(
            circuit_name=self.compiled.circuit.name,
            slot_labels=[(index, voltage) for index in range(len(pairs))],
            waveforms=waveforms,
            runtime_seconds=_time.perf_counter() - start,
            gate_evaluations=evaluations,
            engine="event-driven",
        )

    # -- core algorithm ----------------------------------------------------------------

    def _simulate_pair(
        self, pair: PatternPair, delays: np.ndarray
    ) -> Tuple[Dict[str, Waveform], int]:
        compiled = self.compiled
        circuit = compiled.circuit
        if pair.width != len(circuit.inputs):
            raise SimulationError(
                f"pattern width {pair.width} != {len(circuit.inputs)} inputs"
            )
        inertial = self.config.pulse_filtering == "inertial"
        num_gates = compiled.num_gates
        truth_tables = compiled.truth_tables
        gate_inputs = compiled.gate_inputs
        gate_arity = compiled.gate_arity

        # Settle the circuit under v1 (levelized zero-delay evaluation).
        net_values = np.zeros(compiled.num_nets, dtype=np.uint8)
        net_values[compiled.input_net_ids] = pair.v1
        for level in compiled.levels:
            for gate_index in level:
                arity = int(gate_arity[gate_index])
                idx = 0
                for pin in range(arity):
                    idx |= int(net_values[gate_inputs[gate_index, pin]]) << pin
                net_values[compiled.gate_output[gate_index]] = (
                    int(truth_tables[gate_index]) >> idx
                ) & 1
        evaluations = num_gates

        gate_in_vals = np.zeros((num_gates, compiled.max_pins), dtype=np.uint8)
        for gate_index in range(num_gates):
            for pin in range(int(gate_arity[gate_index])):
                gate_in_vals[gate_index, pin] = net_values[gate_inputs[gate_index, pin]]
        last_target = net_values[compiled.gate_output].copy()
        initial_values = net_values.copy()

        stacks: List[List[Tuple[float, int]]] = [[] for _ in range(num_gates)]
        cancelled: set = set()
        heap: List[Tuple[float, int, int]] = []  # (time, event id, net id)
        event_net: Dict[int, int] = {}
        next_id = 0
        for index, net_id in enumerate(compiled.input_net_ids):
            if pair.v1[index] != pair.v2[index]:
                heapq.heappush(heap, (LAUNCH_TIME, next_id, int(net_id)))
                next_id += 1

        while heap:
            now = heap[0][0]
            affected: Dict[int, int] = {}  # gate -> lowest causing pin
            while heap and heap[0][0] == now:
                _, event_id, net_id = heapq.heappop(heap)
                if event_id in cancelled:
                    cancelled.discard(event_id)
                    continue
                for gate_index, pin in self._fanout[net_id]:
                    gate_in_vals[gate_index, pin] ^= 1
                    previous = affected.get(gate_index)
                    if previous is None or pin < previous:
                        affected[gate_index] = pin

            for gate_index in sorted(affected):
                arity = int(gate_arity[gate_index])
                idx = 0
                for pin in range(arity):
                    idx |= int(gate_in_vals[gate_index, pin]) << pin
                new_val = (int(truth_tables[gate_index]) >> idx) & 1
                evaluations += 1
                if new_val == last_target[gate_index]:
                    continue
                polarity = 0 if new_val == 1 else 1  # RISE=0, FALL=1
                delay = float(delays[gate_index, affected[gate_index], polarity])
                t_out = now + delay
                width = delay if inertial else 0.0
                stack = stacks[gate_index]
                top = stack[-1][0] if stack else -np.inf
                if stack and (t_out <= top or t_out - top < width):
                    cancelled.add(stack.pop()[1])
                else:
                    stack.append((t_out, next_id))
                    heapq.heappush(
                        heap, (t_out, next_id, int(compiled.gate_output[gate_index]))
                    )
                    next_id += 1
                last_target[gate_index] ^= 1

        # Assemble result waveforms.
        slot: Dict[str, Waveform] = {}
        record_all = self.config.record_all_nets
        wanted_nets = (
            circuit.nets() if record_all else list(circuit.outputs)
        )
        gate_of_net = {int(compiled.gate_output[g]): g for g in range(num_gates)}
        for net in wanted_nets:
            net_id = compiled.net_index[net]
            if net_id in gate_of_net:
                stack = stacks[gate_of_net[net_id]]
                times = np.asarray([entry[0] for entry in stack], dtype=np.float64)
            else:  # primary input
                index = circuit.inputs.index(net)
                times = (
                    np.asarray([LAUNCH_TIME]) if pair.v1[index] != pair.v2[index]
                    else np.empty(0)
                )
            slot[net] = Waveform(initial=int(initial_values[net_id]), times=times)
        return slot, evaluations
