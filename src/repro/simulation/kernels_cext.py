"""C implementations of the hot kernels, compiled on first use.

The same per-lane scalar event loops as :mod:`kernels_numba`, written in
portable C99 and built into a shared library with the system C compiler
(OpenMP-parallel when available, serial otherwise).  The library is
cached under ``~/.cache/repro`` keyed by a digest of the source and
compile flags, so compilation happens once per machine.

This backend exists for machines that have a toolchain but no numba:
the container baking this repository ships gcc but not numba, and the
benchmark trajectory in ``BENCH_kernels.json`` needs a compiled backend
to compare against the numpy lockstep kernel.

The per-lane algorithm and IEEE-754 operation order are identical to
:func:`repro.simulation.kernels.waveform_merge_kernel`, so results are
bit-identical across backends.

:func:`load` raises on any build/load failure;
:mod:`repro.simulation.backend` gates on that and falls back.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
from typing import Optional

import numpy as np

__all__ = ["load", "merge_lanes", "merge_group", "merge_group_sparse",
           "delays_for_gates", "run_level", "run_levels"]

INF = np.float64(np.inf)

#: Hard bound on gate arity in the C kernels (padded truth tables are
#: uint32, so real circuits stay at <= 5 pins).
MAX_PINS = 16

_SOURCE = r"""
#include <stdint.h>
#include <math.h>

#define MAX_PINS 16

/* Per-lane waveform merge; lane-oriented layout:
 *   times   (k, L, cin)  delays (k, 2, L)  out_times (L, cout)
 * out_times must be pre-filled with +inf by the caller. */
void merge_lanes(const double *times, const uint8_t *initial,
                 const double *delays, const int64_t *tables,
                 int64_t k, int64_t L, int64_t cin, int64_t cout,
                 int32_t inertial,
                 uint8_t *out_initial, double *out_times,
                 int64_t *out_counts, uint8_t *out_overflow,
                 int64_t *out_iterations)
{
    int64_t iterations = 0;
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic, 64) reduction(+:iterations)
#endif
    for (int64_t lane = 0; lane < L; lane++) {
        int64_t pointers[MAX_PINS];
        int64_t vals[MAX_PINS];
        double current[MAX_PINS];
        const int64_t table = tables[lane];
        int64_t index = 0;
        for (int64_t pin = 0; pin < k; pin++) {
            pointers[pin] = 0;
            vals[pin] = initial[pin * L + lane];
            index |= vals[pin] << pin;
        }
        int64_t last_target = (table >> index) & 1;
        out_initial[lane] = (uint8_t)last_target;
        double *out = out_times + lane * cout;
        int64_t depth = 0;
        uint8_t overflow = 0;
        for (;;) {
            double now = INFINITY;
            for (int64_t pin = 0; pin < k; pin++) {
                double t = pointers[pin] < cin
                    ? times[(pin * L + lane) * cin + pointers[pin]]
                    : INFINITY;
                current[pin] = t;
                if (t < now) now = t;
            }
            if (!(now < INFINITY)) break;
            iterations++;
            int64_t causing = -1;
            for (int64_t pin = 0; pin < k; pin++) {
                if (current[pin] == now) {
                    vals[pin] ^= 1;
                    pointers[pin]++;
                    if (causing < 0) causing = pin;
                }
            }
            index = 0;
            for (int64_t pin = 0; pin < k; pin++) index |= vals[pin] << pin;
            int64_t new_val = (table >> index) & 1;
            if (new_val == last_target) continue;
            double delay = delays[(causing * 2 + (1 - new_val)) * L + lane];
            double t_out = now + delay;
            double width = inertial ? delay : 0.0;
            if (depth > 0 && (t_out <= out[depth - 1]
                              || t_out - out[depth - 1] < width)) {
                depth--;
                out[depth] = INFINITY;
            } else if (depth >= cout) {
                overflow = 1;
            } else {
                out[depth++] = t_out;
            }
            last_target ^= 1;
        }
        out_counts[lane] = depth;
        out_overflow[lane] = overflow;
    }
    *out_iterations = iterations;
}

/* Arena-level merge: one thread group evaluated in place against the
 * (nets, slots, capacity) waveform arena.
 *   in_ids (g, P)   out_ids (g,)   per_voltage (g, P, 2, V)
 *   slot_to_v (S,)  factors (g, S) when has_factors  tables (g,) */
void merge_group(double *times_all, uint8_t *initial_all,
                 const int64_t *in_ids, const int64_t *out_ids,
                 const double *per_voltage, const int64_t *slot_to_v,
                 const double *factors, int32_t has_factors,
                 const int64_t *tables,
                 int64_t g, int64_t P, int64_t S, int64_t V, int64_t cap,
                 int32_t inertial,
                 int64_t *out_overflow, int64_t *out_iterations)
{
    int64_t iterations = 0;
    int64_t overflow_lanes = 0;
    const int64_t lanes = g * S;
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic, 64) \
    reduction(+:iterations) reduction(+:overflow_lanes)
#endif
    for (int64_t lane = 0; lane < lanes; lane++) {
        const int64_t gate = lane / S;
        const int64_t slot = lane % S;
        const int64_t v = slot_to_v[slot];
        const double factor = has_factors ? factors[gate * S + slot] : 1.0;
        int64_t pointers[MAX_PINS];
        int64_t vals[MAX_PINS];
        double current[MAX_PINS];
        const double *in_rows[MAX_PINS];
        const int64_t table = tables[gate];
        int64_t index = 0;
        for (int64_t pin = 0; pin < P; pin++) {
            const int64_t net = in_ids[gate * P + pin];
            in_rows[pin] = times_all + (net * S + slot) * cap;
            pointers[pin] = 0;
            vals[pin] = initial_all[net * S + slot];
            index |= vals[pin] << pin;
        }
        int64_t last_target = (table >> index) & 1;
        const int64_t out_net = out_ids[gate];
        initial_all[out_net * S + slot] = (uint8_t)last_target;
        double *out = times_all + (out_net * S + slot) * cap;
        int64_t depth = 0;
        int64_t overflow = 0;
        for (;;) {
            double now = INFINITY;
            for (int64_t pin = 0; pin < P; pin++) {
                double t = pointers[pin] < cap
                    ? in_rows[pin][pointers[pin]] : INFINITY;
                current[pin] = t;
                if (t < now) now = t;
            }
            if (!(now < INFINITY)) break;
            iterations++;
            int64_t causing = -1;
            for (int64_t pin = 0; pin < P; pin++) {
                if (current[pin] == now) {
                    vals[pin] ^= 1;
                    pointers[pin]++;
                    if (causing < 0) causing = pin;
                }
            }
            index = 0;
            for (int64_t pin = 0; pin < P; pin++) index |= vals[pin] << pin;
            int64_t new_val = (table >> index) & 1;
            if (new_val == last_target) continue;
            double delay = per_voltage[((gate * P + causing) * 2
                                        + (1 - new_val)) * V + v];
            if (has_factors) delay = delay * factor;
            double t_out = now + delay;
            double width = inertial ? delay : 0.0;
            if (depth > 0 && (t_out <= out[depth - 1]
                              || t_out - out[depth - 1] < width)) {
                depth--;
                out[depth] = INFINITY;
            } else if (depth >= cap) {
                overflow = 1;
            } else {
                out[depth++] = t_out;
            }
            last_target ^= 1;
        }
        overflow_lanes += overflow;
    }
    *out_overflow = overflow_lanes;
    *out_iterations = iterations;
}

/* Lane-compacted arena merge: the same per-lane event loop as
 * merge_group, but only for the (gate, slot) lanes listed in
 * lane_gates / lane_slots (parallel arrays of length L).  Output rows
 * of undispatched lanes stay untouched. */
void merge_group_sparse(double *times_all, uint8_t *initial_all,
                        const int64_t *in_ids, const int64_t *out_ids,
                        const double *per_voltage, const int64_t *slot_to_v,
                        const double *factors, int32_t has_factors,
                        const int64_t *tables,
                        int64_t P, int64_t S, int64_t V, int64_t cap,
                        int32_t inertial,
                        const int64_t *lane_gates, const int64_t *lane_slots,
                        int64_t L,
                        int64_t *out_overflow, int64_t *out_iterations)
{
    int64_t iterations = 0;
    int64_t overflow_lanes = 0;
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic, 64) \
    reduction(+:iterations) reduction(+:overflow_lanes)
#endif
    for (int64_t lane = 0; lane < L; lane++) {
        const int64_t gate = lane_gates[lane];
        const int64_t slot = lane_slots[lane];
        const int64_t v = slot_to_v[slot];
        const double factor = has_factors ? factors[gate * S + slot] : 1.0;
        int64_t pointers[MAX_PINS];
        int64_t vals[MAX_PINS];
        double current[MAX_PINS];
        const double *in_rows[MAX_PINS];
        const int64_t table = tables[gate];
        int64_t index = 0;
        for (int64_t pin = 0; pin < P; pin++) {
            const int64_t net = in_ids[gate * P + pin];
            in_rows[pin] = times_all + (net * S + slot) * cap;
            pointers[pin] = 0;
            vals[pin] = initial_all[net * S + slot];
            index |= vals[pin] << pin;
        }
        int64_t last_target = (table >> index) & 1;
        const int64_t out_net = out_ids[gate];
        initial_all[out_net * S + slot] = (uint8_t)last_target;
        double *out = times_all + (out_net * S + slot) * cap;
        int64_t depth = 0;
        int64_t overflow = 0;
        for (;;) {
            double now = INFINITY;
            for (int64_t pin = 0; pin < P; pin++) {
                double t = pointers[pin] < cap
                    ? in_rows[pin][pointers[pin]] : INFINITY;
                current[pin] = t;
                if (t < now) now = t;
            }
            if (!(now < INFINITY)) break;
            iterations++;
            int64_t causing = -1;
            for (int64_t pin = 0; pin < P; pin++) {
                if (current[pin] == now) {
                    vals[pin] ^= 1;
                    pointers[pin]++;
                    if (causing < 0) causing = pin;
                }
            }
            index = 0;
            for (int64_t pin = 0; pin < P; pin++) index |= vals[pin] << pin;
            int64_t new_val = (table >> index) & 1;
            if (new_val == last_target) continue;
            double delay = per_voltage[((gate * P + causing) * 2
                                        + (1 - new_val)) * V + v];
            if (has_factors) delay = delay * factor;
            double t_out = now + delay;
            double width = inertial ? delay : 0.0;
            if (depth > 0 && (t_out <= out[depth - 1]
                              || t_out - out[depth - 1] < width)) {
                depth--;
                out[depth] = INFINITY;
            } else if (depth >= cap) {
                overflow = 1;
            } else {
                out[depth++] = t_out;
            }
            last_target ^= 1;
        }
        overflow_lanes += overflow;
    }
    *out_overflow = overflow_lanes;
    *out_iterations = iterations;
}

/* Online delay calculation (Sec. IV-A): nested 2-D Horner evaluation
 * with pre-normalized predictors.
 *   coeffs (G, P, 2, n1, n1) gathered per gate   nominal (G, P, 2)
 *   nv (V,) = phi_V per voltage   nc (G,) = phi_C per gate
 *   out (G, P, 2, V)
 * The scalar op order matches horner2d / the numba JIT exactly, so
 * results are bit-identical to the numpy evaluator (normalization
 * happens in numpy on the caller side: the C library log2 may differ
 * from np.log2 in the last ulp). */
void delays_for_gates(const double *coeffs, const double *nv,
                      const double *nc, const double *nominal,
                      double min_delay,
                      int64_t G, int64_t P, int64_t V, int64_t n1,
                      double *out)
{
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
    for (int64_t gate = 0; gate < G; gate++) {
        const double c = nc[gate];
        for (int64_t pin = 0; pin < P; pin++) {
            for (int64_t pol = 0; pol < 2; pol++) {
                const double *cc = coeffs
                    + (((gate * P + pin) * 2 + pol) * n1 * n1);
                const double d_nom = nominal[(gate * P + pin) * 2 + pol];
                double *row = out + (((gate * P + pin) * 2 + pol) * V);
                for (int64_t vi = 0; vi < V; vi++) {
                    const double v = nv[vi];
                    double result = 0.0;
                    for (int64_t i = n1 - 1; i >= 0; i--) {
                        double inner = 0.0;
                        for (int64_t j = n1 - 1; j >= 0; j--)
                            inner = inner * c + cc[i * n1 + j];
                        result = result * v + inner;
                    }
                    double adapted = d_nom * (1.0 + result);
                    row[vi] = adapted > min_delay ? adapted : min_delay;
                }
            }
        }
    }
}

/* Fused whole-level dispatch: every arity group of a level in one call,
 * with the Horner delay kernel evaluated inside the merge loop per
 * (gate, voltage) so per-lane delay arrays are never materialized.
 *   in_ids (g, maxP)  out_ids/tables/arities/type_ids (g,)
 *   nominal (g, maxP, 2)
 *   parametric: coeffs (T, coeff_pins, 2, n1, n1) full table,
 *               nv (V,) phi_V per distinct voltage, nc (g,) phi_C
 *   static (parametric == 0): nominal delays used unchanged
 *   sparse: only the (lane_gates, lane_slots) lanes (length L) run
 * Gates are arity-sorted with unpadded truth tables; each lane loops
 * only its real pins, which is bit-equivalent to the padded dispatch
 * because spare pins read the constant-0 dummy net. */
void run_level(double *times_all, uint8_t *initial_all,
               const int64_t *in_ids, const int64_t *out_ids,
               const int64_t *tables, const int64_t *arities,
               const int64_t *type_ids, const double *nominal,
               int32_t parametric, const double *coeffs,
               int64_t coeff_pins, int64_t n1,
               const double *nv, const double *nc, double min_delay,
               const int64_t *slot_to_v,
               const double *factors, int32_t has_factors,
               int64_t g, int64_t maxP, int64_t S, int64_t cap,
               int32_t inertial,
               int32_t sparse, const int64_t *lane_gates,
               const int64_t *lane_slots, int64_t L,
               int64_t *out_overflow, int64_t *out_iterations)
{
    int64_t iterations = 0;
    int64_t overflow_lanes = 0;
    const int64_t total = sparse ? L : g * S;
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic, 64) \
    reduction(+:iterations) reduction(+:overflow_lanes)
#endif
    for (int64_t lane = 0; lane < total; lane++) {
        const int64_t gate = sparse ? lane_gates[lane] : lane / S;
        const int64_t slot = sparse ? lane_slots[lane] : lane % S;
        const int64_t arity = arities[gate];
        const double factor = has_factors ? factors[gate * S + slot] : 1.0;
        double pd[MAX_PINS][2];
        if (parametric) {
            const double v = nv[slot_to_v[slot]];
            const double c = nc[gate];
            for (int64_t pin = 0; pin < arity; pin++) {
                const double *nom = nominal + (gate * maxP + pin) * 2;
                for (int64_t pol = 0; pol < 2; pol++) {
                    const double *cc = coeffs
                        + (((type_ids[gate] * coeff_pins + pin) * 2 + pol)
                           * n1 * n1);
                    double result = 0.0;
                    for (int64_t i = n1 - 1; i >= 0; i--) {
                        double inner = 0.0;
                        for (int64_t j = n1 - 1; j >= 0; j--)
                            inner = inner * c + cc[i * n1 + j];
                        result = result * v + inner;
                    }
                    double adapted = nom[pol] * (1.0 + result);
                    pd[pin][pol] = adapted > min_delay ? adapted : min_delay;
                }
            }
        } else {
            for (int64_t pin = 0; pin < arity; pin++) {
                const double *nom = nominal + (gate * maxP + pin) * 2;
                pd[pin][0] = nom[0];
                pd[pin][1] = nom[1];
            }
        }
        int64_t pointers[MAX_PINS];
        int64_t vals[MAX_PINS];
        double current[MAX_PINS];
        const double *in_rows[MAX_PINS];
        const int64_t table = tables[gate];
        int64_t index = 0;
        for (int64_t pin = 0; pin < arity; pin++) {
            const int64_t net = in_ids[gate * maxP + pin];
            in_rows[pin] = times_all + (net * S + slot) * cap;
            pointers[pin] = 0;
            vals[pin] = initial_all[net * S + slot];
            index |= vals[pin] << pin;
        }
        int64_t last_target = (table >> index) & 1;
        const int64_t out_net = out_ids[gate];
        initial_all[out_net * S + slot] = (uint8_t)last_target;
        double *out = times_all + (out_net * S + slot) * cap;
        int64_t depth = 0;
        int64_t overflow = 0;
        for (;;) {
            double now = INFINITY;
            for (int64_t pin = 0; pin < arity; pin++) {
                double t = pointers[pin] < cap
                    ? in_rows[pin][pointers[pin]] : INFINITY;
                current[pin] = t;
                if (t < now) now = t;
            }
            if (!(now < INFINITY)) break;
            iterations++;
            int64_t causing = -1;
            for (int64_t pin = 0; pin < arity; pin++) {
                if (current[pin] == now) {
                    vals[pin] ^= 1;
                    pointers[pin]++;
                    if (causing < 0) causing = pin;
                }
            }
            index = 0;
            for (int64_t pin = 0; pin < arity; pin++)
                index |= vals[pin] << pin;
            int64_t new_val = (table >> index) & 1;
            if (new_val == last_target) continue;
            double delay = pd[causing][1 - new_val];
            if (has_factors) delay = delay * factor;
            double t_out = now + delay;
            double width = inertial ? delay : 0.0;
            if (depth > 0 && (t_out <= out[depth - 1]
                              || t_out - out[depth - 1] < width)) {
                depth--;
                out[depth] = INFINITY;
            } else if (depth >= cap) {
                overflow = 1;
            } else {
                out[depth++] = t_out;
            }
            last_target ^= 1;
        }
        overflow_lanes += overflow;
    }
    *out_overflow = overflow_lanes;
    *out_iterations = iterations;
}

/* Whole-batch fused dispatch: every level of the circuit in ONE library
 * call.  The plan arrays are the per-level arrays concatenated row-wise
 * (level_offsets bounds each level); each level runs the dense
 * run_level body, and levels stay strictly ordered because a level's
 * inputs are finalized by the preceding ones.  Stops after the first
 * level with overflowing lanes (the caller discards the arena and
 * retries at doubled capacity); out_levels_done / out_lanes report how
 * many non-empty levels dispatched and how many lanes ran, so the
 * caller's accounting matches the one-call-per-level path exactly. */
void run_levels(double *times_all, uint8_t *initial_all,
                const int64_t *in_ids, const int64_t *out_ids,
                const int64_t *tables, const int64_t *arities,
                const int64_t *type_ids, const double *nominal,
                int32_t parametric, const double *coeffs,
                int64_t coeff_pins, int64_t n1,
                const double *nv, const double *nc, double min_delay,
                const int64_t *slot_to_v,
                const double *factors, int32_t has_factors,
                const int64_t *level_offsets, int64_t num_levels,
                int64_t maxP, int64_t S, int64_t cap,
                int32_t inertial,
                int64_t *out_overflow, int64_t *out_iterations,
                int64_t *out_levels_done, int64_t *out_lanes)
{
    int64_t iterations_total = 0;
    int64_t lanes_total = 0;
    int64_t levels_done = 0;
    int64_t overflow_total = 0;
    for (int64_t level = 0; level < num_levels; level++) {
        const int64_t lo = level_offsets[level];
        const int64_t g = level_offsets[level + 1] - lo;
        if (g == 0) continue;
        int64_t overflow = 0;
        int64_t iterations = 0;
        run_level(times_all, initial_all,
                  in_ids + lo * maxP, out_ids + lo, tables + lo,
                  arities + lo, type_ids + lo, nominal + lo * maxP * 2,
                  parametric, coeffs, coeff_pins, n1,
                  nv, nc + (parametric ? lo : 0), min_delay, slot_to_v,
                  factors + (has_factors ? lo * S : 0), has_factors,
                  g, maxP, S, cap, inertial,
                  0, level_offsets, level_offsets, 0,
                  &overflow, &iterations);
        iterations_total += iterations;
        lanes_total += g * S;
        levels_done++;
        if (overflow) {
            overflow_total = overflow;
            break;
        }
    }
    *out_overflow = overflow_total;
    *out_iterations = iterations_total;
    *out_levels_done = levels_done;
    *out_lanes = lanes_total;
}
"""

_CFLAGS = ["-O3", "-fPIC", "-shared", "-std=c99"]

_lib: Optional[ctypes.CDLL] = None


def _cache_dir() -> str:
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache")
    path = os.path.join(base, "repro")
    try:
        os.makedirs(path, exist_ok=True)
        return path
    except OSError:
        return tempfile.gettempdir()


def _compiler() -> str:
    return os.environ.get("CC", "cc")


def _build() -> str:
    """Compile the kernel library (once per source digest) and return its
    path."""
    compiler = _compiler()
    digest = hashlib.sha256(
        ("\x00".join([_SOURCE, compiler] + _CFLAGS)).encode("utf-8")
    ).hexdigest()[:16]
    lib_path = os.path.join(_cache_dir(), f"repro_kernels_{digest}.so")
    if os.path.exists(lib_path):
        return lib_path
    with tempfile.TemporaryDirectory() as workdir:
        source_path = os.path.join(workdir, "kernels.c")
        with open(source_path, "w", encoding="utf-8") as stream:
            stream.write(_SOURCE)
        build_path = os.path.join(workdir, "kernels.so")
        # Try OpenMP first; fall back to a serial build.
        for extra in (["-fopenmp"], []):
            command = [compiler, *_CFLAGS, *extra, source_path,
                       "-o", build_path, "-lm"]
            proc = subprocess.run(command, capture_output=True, text=True)
            if proc.returncode == 0:
                break
        else:
            raise RuntimeError(
                f"C kernel build failed with {compiler}: {proc.stderr.strip()}"
            )
        os.replace(build_path, lib_path)
    return lib_path


_i64 = ctypes.c_int64
_i32 = ctypes.c_int32
_p_f64 = np.ctypeslib.ndpointer(dtype=np.float64, flags="C_CONTIGUOUS")
_p_u8 = np.ctypeslib.ndpointer(dtype=np.uint8, flags="C_CONTIGUOUS")
_p_i64 = np.ctypeslib.ndpointer(dtype=np.int64, flags="C_CONTIGUOUS")


def load():
    """Build (if needed) and load the C kernel library; returns this
    module, which then satisfies the backend kernel API."""
    global _lib
    if _lib is None:
        lib = ctypes.CDLL(_build())
        lib.merge_lanes.argtypes = [
            _p_f64, _p_u8, _p_f64, _p_i64,
            _i64, _i64, _i64, _i64, _i32,
            _p_u8, _p_f64, _p_i64, _p_u8,
            ctypes.POINTER(_i64),
        ]
        lib.merge_lanes.restype = None
        lib.merge_group.argtypes = [
            _p_f64, _p_u8, _p_i64, _p_i64, _p_f64, _p_i64,
            _p_f64, _i32, _p_i64,
            _i64, _i64, _i64, _i64, _i64, _i32,
            ctypes.POINTER(_i64), ctypes.POINTER(_i64),
        ]
        lib.merge_group.restype = None
        lib.merge_group_sparse.argtypes = [
            _p_f64, _p_u8, _p_i64, _p_i64, _p_f64, _p_i64,
            _p_f64, _i32, _p_i64,
            _i64, _i64, _i64, _i64, _i32,
            _p_i64, _p_i64, _i64,
            ctypes.POINTER(_i64), ctypes.POINTER(_i64),
        ]
        lib.merge_group_sparse.restype = None
        lib.delays_for_gates.argtypes = [
            _p_f64, _p_f64, _p_f64, _p_f64, ctypes.c_double,
            _i64, _i64, _i64, _i64,
            _p_f64,
        ]
        lib.delays_for_gates.restype = None
        lib.run_level.argtypes = [
            _p_f64, _p_u8,
            _p_i64, _p_i64, _p_i64, _p_i64, _p_i64, _p_f64,
            _i32, _p_f64, _i64, _i64,
            _p_f64, _p_f64, ctypes.c_double,
            _p_i64,
            _p_f64, _i32,
            _i64, _i64, _i64, _i64, _i32,
            _i32, _p_i64, _p_i64, _i64,
            ctypes.POINTER(_i64), ctypes.POINTER(_i64),
        ]
        lib.run_level.restype = None
        lib.run_levels.argtypes = [
            _p_f64, _p_u8,
            _p_i64, _p_i64, _p_i64, _p_i64, _p_i64, _p_f64,
            _i32, _p_f64, _i64, _i64,
            _p_f64, _p_f64, ctypes.c_double,
            _p_i64,
            _p_f64, _i32,
            _p_i64, _i64,
            _i64, _i64, _i64, _i32,
            ctypes.POINTER(_i64), ctypes.POINTER(_i64),
            ctypes.POINTER(_i64), ctypes.POINTER(_i64),
        ]
        lib.run_levels.restype = None
        _lib = lib
    import sys
    return sys.modules[__name__]


def merge_lanes(input_times, input_initial, delays, tables, out_capacity,
                inertial):
    """Lane-oriented merge (see ``waveform_merge_kernel`` for the contract)."""
    k, num_lanes, _ = input_times.shape
    if k > MAX_PINS:
        raise ValueError(f"cext backend supports at most {MAX_PINS} pins")
    times = np.ascontiguousarray(input_times, dtype=np.float64)
    initial = np.ascontiguousarray(input_initial, dtype=np.uint8)
    lane_delays = np.ascontiguousarray(delays, dtype=np.float64)
    lane_tables = np.ascontiguousarray(tables, dtype=np.int64)
    out_initial = np.empty(num_lanes, dtype=np.uint8)
    out_times = np.full((num_lanes, out_capacity), INF, dtype=np.float64)
    counts = np.zeros(num_lanes, dtype=np.int64)
    overflow = np.zeros(num_lanes, dtype=np.uint8)
    iterations = _i64(0)
    _lib.merge_lanes(
        times, initial, lane_delays, lane_tables,
        k, num_lanes, times.shape[2], out_capacity, int(bool(inertial)),
        out_initial, out_times, counts, overflow, ctypes.byref(iterations),
    )
    return out_initial, out_times, counts, overflow.astype(bool), \
        iterations.value


def merge_group(times_all, initial_all, in_ids, out_ids, per_voltage,
                slot_to_v, factors, tables, capacity, inertial):
    """Arena-level merge: read inputs from and write outputs into the
    ``(nets, slots, capacity)`` waveform arena in place."""
    group_size, arity = in_ids.shape
    if arity > MAX_PINS:
        raise ValueError(f"cext backend supports at most {MAX_PINS} pins")
    num_slots = slot_to_v.size
    has_factors = factors is not None
    if factors is None:
        group_factors = np.zeros((1, 1), dtype=np.float64)
    else:
        group_factors = np.ascontiguousarray(factors, dtype=np.float64)
    per_voltage = np.ascontiguousarray(per_voltage, dtype=np.float64)
    overflow = _i64(0)
    iterations = _i64(0)
    _lib.merge_group(
        times_all, initial_all,
        np.ascontiguousarray(in_ids, dtype=np.int64),
        np.ascontiguousarray(out_ids, dtype=np.int64),
        per_voltage,
        np.ascontiguousarray(slot_to_v, dtype=np.int64),
        group_factors, int(has_factors),
        np.ascontiguousarray(tables, dtype=np.int64),
        group_size, arity, num_slots, per_voltage.shape[3], capacity,
        int(bool(inertial)),
        ctypes.byref(overflow), ctypes.byref(iterations),
    )
    return overflow.value, iterations.value


def merge_group_sparse(times_all, initial_all, in_ids, out_ids, per_voltage,
                       slot_to_v, factors, tables, capacity, inertial,
                       lane_gates, lane_slots):
    """Lane-compacted arena merge: only the listed ``(gate, slot)`` lanes
    run their event loops; everything else in the arena is untouched."""
    arity = in_ids.shape[1]
    if arity > MAX_PINS:
        raise ValueError(f"cext backend supports at most {MAX_PINS} pins")
    num_slots = slot_to_v.size
    has_factors = factors is not None
    if factors is None:
        group_factors = np.zeros((1, 1), dtype=np.float64)
    else:
        group_factors = np.ascontiguousarray(factors, dtype=np.float64)
    per_voltage = np.ascontiguousarray(per_voltage, dtype=np.float64)
    lane_gates = np.ascontiguousarray(lane_gates, dtype=np.int64)
    lane_slots = np.ascontiguousarray(lane_slots, dtype=np.int64)
    overflow = _i64(0)
    iterations = _i64(0)
    _lib.merge_group_sparse(
        times_all, initial_all,
        np.ascontiguousarray(in_ids, dtype=np.int64),
        np.ascontiguousarray(out_ids, dtype=np.int64),
        per_voltage,
        np.ascontiguousarray(slot_to_v, dtype=np.int64),
        group_factors, int(has_factors),
        np.ascontiguousarray(tables, dtype=np.int64),
        arity, num_slots, per_voltage.shape[3], capacity,
        int(bool(inertial)),
        lane_gates, lane_slots, lane_gates.size,
        ctypes.byref(overflow), ctypes.byref(iterations),
    )
    return overflow.value, iterations.value


def delays_for_gates(kernel_table, type_ids, loads, nominal_delays, voltages):
    """Native batch delay kernel; drop-in for
    :meth:`repro.core.delay_kernel.DelayKernelTable.delays_for_gates`.

    Predictor normalization stays in numpy (C ``log2`` can differ from
    ``np.log2`` in the last ulp); the Horner sweep runs in C.
    """
    from repro.core.delay_kernel import MIN_DELAY
    from repro.errors import CharacterizationError

    type_ids = np.ascontiguousarray(type_ids, dtype=np.int64)
    nominal = np.ascontiguousarray(nominal_delays, dtype=np.float64)
    pins = nominal.shape[1]
    if pins > kernel_table.max_pins:
        raise CharacterizationError(
            f"gates have {pins} pins but the kernel table holds "
            f"{kernel_table.max_pins}"
        )
    nv = np.ascontiguousarray(
        np.atleast_1d(kernel_table.space.normalize_voltage(
            np.asarray(voltages, dtype=np.float64))),
        dtype=np.float64)
    nc = np.ascontiguousarray(
        np.atleast_1d(kernel_table.space.normalize_load(
            np.asarray(loads, dtype=np.float64))),
        dtype=np.float64)
    coeffs = np.ascontiguousarray(
        kernel_table.coefficients[type_ids][:, :pins], dtype=np.float64)
    num_gates = type_ids.size
    n1 = coeffs.shape[-1]
    out = np.empty((num_gates, pins, 2, nv.size), dtype=np.float64)
    _lib.delays_for_gates(
        coeffs, nv, nc, nominal, MIN_DELAY,
        num_gates, pins, nv.size, n1, out,
    )
    return out


def run_level(times_all, initial_all, in_ids, out_ids, tables, arities,
              type_ids, nominal, coeffs, nv, nc, slot_to_v, factors,
              capacity, inertial, lane_gates, lane_slots):
    """Fused whole-level dispatch (see ``ComputeBackend.run_level``).

    ``coeffs`` is the full kernel-table coefficient array (parametric)
    or ``None`` (static); ``lane_gates``/``lane_slots`` select the
    sparse path when given.  Returns ``(overflow_lanes, iterations)``.
    """
    from repro.core.delay_kernel import MIN_DELAY

    group_size, max_pins = in_ids.shape
    if max_pins > MAX_PINS:
        raise ValueError(f"cext backend supports at most {MAX_PINS} pins")
    num_slots = slot_to_v.size
    nominal = np.ascontiguousarray(nominal, dtype=np.float64)
    parametric = coeffs is not None
    if parametric:
        coeffs = np.ascontiguousarray(coeffs, dtype=np.float64)
        coeff_pins = coeffs.shape[1]
        n1 = coeffs.shape[-1]
        nv = np.ascontiguousarray(nv, dtype=np.float64)
        nc = np.ascontiguousarray(nc, dtype=np.float64)
    else:
        coeffs = np.zeros((1, 1, 2, 1, 1), dtype=np.float64)
        coeff_pins = 1
        n1 = 1
        nv = np.zeros(1, dtype=np.float64)
        nc = np.zeros(1, dtype=np.float64)
    has_factors = factors is not None
    if factors is None:
        group_factors = np.zeros((1, 1), dtype=np.float64)
    else:
        group_factors = np.ascontiguousarray(factors, dtype=np.float64)
    sparse = lane_gates is not None
    if sparse:
        lane_gates = np.ascontiguousarray(lane_gates, dtype=np.int64)
        lane_slots = np.ascontiguousarray(lane_slots, dtype=np.int64)
        num_lanes = lane_gates.size
    else:
        lane_gates = np.zeros(1, dtype=np.int64)
        lane_slots = np.zeros(1, dtype=np.int64)
        num_lanes = 0
    overflow = _i64(0)
    iterations = _i64(0)
    _lib.run_level(
        times_all, initial_all,
        np.ascontiguousarray(in_ids, dtype=np.int64),
        np.ascontiguousarray(out_ids, dtype=np.int64),
        np.ascontiguousarray(tables, dtype=np.int64),
        np.ascontiguousarray(arities, dtype=np.int64),
        np.ascontiguousarray(type_ids, dtype=np.int64),
        nominal,
        int(parametric), coeffs, coeff_pins, n1,
        nv, nc, MIN_DELAY,
        np.ascontiguousarray(slot_to_v, dtype=np.int64),
        group_factors, int(has_factors),
        group_size, max_pins, num_slots, capacity,
        int(bool(inertial)),
        int(sparse), lane_gates, lane_slots, num_lanes,
        ctypes.byref(overflow), ctypes.byref(iterations),
    )
    return overflow.value, iterations.value


def run_levels(times_all, initial_all, cat, coeffs, nv, nc, slot_to_v,
               factors, capacity, inertial):
    """Whole-batch fused dispatch: every level in one library call.

    ``cat`` is a :class:`repro.simulation.compiled.ConcatPlans`;
    ``factors`` (if given) must already be gathered into concatenated
    plan-row order.  Returns ``(overflow_lanes, iterations,
    levels_done, lanes)``.
    """
    from repro.core.delay_kernel import MIN_DELAY

    max_pins = cat.in_ids.shape[1]
    if max_pins > MAX_PINS:
        raise ValueError(f"cext backend supports at most {MAX_PINS} pins")
    num_slots = slot_to_v.size
    parametric = coeffs is not None
    if parametric:
        coeffs = np.ascontiguousarray(coeffs, dtype=np.float64)
        coeff_pins = coeffs.shape[1]
        n1 = coeffs.shape[-1]
        nv = np.ascontiguousarray(nv, dtype=np.float64)
        nc = np.ascontiguousarray(nc, dtype=np.float64)
    else:
        coeffs = np.zeros((1, 1, 2, 1, 1), dtype=np.float64)
        coeff_pins = 1
        n1 = 1
        nv = np.zeros(1, dtype=np.float64)
        nc = np.zeros(1, dtype=np.float64)
    has_factors = factors is not None
    if factors is None:
        factors = np.zeros((1, 1), dtype=np.float64)
    else:
        factors = np.ascontiguousarray(factors, dtype=np.float64)
    overflow = _i64(0)
    iterations = _i64(0)
    levels_done = _i64(0)
    lanes = _i64(0)
    _lib.run_levels(
        times_all, initial_all,
        cat.in_ids, cat.out_ids, cat.tables, cat.arities, cat.type_ids,
        cat.nominal,
        int(parametric), coeffs, coeff_pins, n1,
        nv, nc, MIN_DELAY,
        np.ascontiguousarray(slot_to_v, dtype=np.int64),
        factors, int(has_factors),
        cat.level_offsets, cat.num_levels,
        max_pins, num_slots, capacity,
        int(bool(inertial)),
        ctypes.byref(overflow), ctypes.byref(iterations),
        ctypes.byref(levels_done), ctypes.byref(lanes),
    )
    return overflow.value, iterations.value, levels_done.value, lanes.value
