"""Process-wide engine pool: one :class:`GpuWaveSim` per (circuit, config).

The AVFS control plane re-simulates the *same* circuit many times — a
design-space sweep is dozens of slot planes, a closed loop dozens of
iterations, and both often interleave (characterize a table, then close
the loop on it).  Constructing a fresh engine per call site re-compiles
nothing (the level-plan cache in :mod:`repro.simulation.compiled` is
already fingerprint-keyed process-wide) but it does re-resolve plans,
re-grow waveform arenas and throw away the per-engine scratch that makes
steady-state iterations cheap.

:func:`pooled_engine` hands every caller with the same compiled circuit
and the same :class:`SimulationConfig` the *same* engine instance, so

* the engine's resolved level plans (``_plans``) and pooled arenas stay
  warm across explorer sweeps and loop iterations, and
* plan-cache hits become observable: each pool hit is one avoided
  ``CompiledCircuit.plans()`` resolution, surfaced through
  :func:`engine_pool_stats` and the ``plan_cache_hits`` field of
  :class:`repro.runtime.report.RunReport`.

Engines are keyed by the compiled circuit's content fingerprint — two
independently parsed copies of one netlist share an engine.  The pool is
bounded (LRU, :data:`POOL_CAPACITY`) and :func:`clear_engine_pool`
drops it for tests.

Thread-safety: the pool dict is lock-guarded; the engines themselves
have the same single-caller contract as any directly constructed
:class:`GpuWaveSim` (the service layer keeps per-worker engines for
exactly that reason, and does not use this pool).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from repro.simulation.base import SimulationConfig
from repro.simulation.compiled import CompiledCircuit, compile_circuit
from repro.simulation.gpu import GpuWaveSim

__all__ = [
    "POOL_CAPACITY",
    "clear_engine_pool",
    "engine_pool_stats",
    "pooled_engine",
]

#: Engines retained before the least-recently-used one is dropped.
POOL_CAPACITY = 8

_lock = threading.Lock()
_pool: "OrderedDict[Tuple[str, SimulationConfig], GpuWaveSim]" = OrderedDict()
_hits = 0
_misses = 0


def pooled_engine(circuit, library, config: Optional[SimulationConfig] = None,
                  compiled: Optional[CompiledCircuit] = None) -> GpuWaveSim:
    """The shared engine for ``(circuit, config)``; built on first use.

    ``config`` participates in the key verbatim (it is a frozen
    dataclass): a ``record_all_nets=True`` explorer and a bare simulator
    get different engines, two identically configured callers share one.
    """
    from repro.runtime.fingerprint import circuit_fingerprint

    global _hits, _misses
    config = config or SimulationConfig()
    compiled = compiled or compile_circuit(circuit, library)
    key = (circuit_fingerprint(compiled), config)
    with _lock:
        engine = _pool.get(key)
        if engine is not None:
            _hits += 1
            _pool.move_to_end(key)
            return engine
        _misses += 1
    # Construction outside the lock: compiling plans can be expensive
    # and must not serialize unrelated circuits.  A racing duplicate is
    # harmless — last one in wins the slot, both are correct engines.
    engine = GpuWaveSim(circuit, library, config=config, compiled=compiled)
    with _lock:
        _pool[key] = engine
        _pool.move_to_end(key)
        while len(_pool) > POOL_CAPACITY:
            _pool.popitem(last=False)
    return engine


def engine_pool_stats() -> Dict[str, int]:
    """Hit/miss/entry counters of the process-wide engine pool."""
    with _lock:
        return {"hits": _hits, "misses": _misses, "entries": len(_pool)}


def clear_engine_pool() -> None:
    """Drop every pooled engine and reset the counters (tests)."""
    global _hits, _misses
    with _lock:
        _pool.clear()
        _hits = 0
        _misses = 0
