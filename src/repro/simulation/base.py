"""Shared simulation types: stimuli, configuration and results.

The paper evaluates *transition delay test pattern pairs*: the circuit
settles under the first vector, then at launch time the second vector is
applied and the resulting switching history is observed.  A
:class:`PatternPair` captures one such pair; :func:`stimuli_from_pair`
turns it into primary-input waveforms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.netlist.circuit import Circuit
from repro.waveform.waveform import Waveform

__all__ = [
    "PatternPair",
    "stimuli_from_pair",
    "SimulationConfig",
    "SimulationResult",
]

#: Launch time of the second vector of a pattern pair (seconds).
LAUNCH_TIME = 0.0


@dataclass(frozen=True)
class PatternPair:
    """A transition-delay test pattern pair ``(v1, v2)``.

    ``v1`` and ``v2`` are bit vectors over the circuit's primary inputs
    (uint8 arrays of equal length, one entry per input in circuit input
    order).
    """

    v1: np.ndarray
    v2: np.ndarray

    def __post_init__(self) -> None:
        v1 = np.asarray(self.v1, dtype=np.uint8)
        v2 = np.asarray(self.v2, dtype=np.uint8)
        if v1.shape != v2.shape or v1.ndim != 1:
            raise ValueError("v1/v2 must be equal-length vectors")
        if np.any(v1 > 1) or np.any(v2 > 1):
            raise ValueError("pattern bits must be 0/1")
        object.__setattr__(self, "v1", v1)
        object.__setattr__(self, "v2", v2)

    @property
    def width(self) -> int:
        return int(self.v1.size)

    def launches_transition(self) -> bool:
        """True when at least one input toggles at launch."""
        return bool(np.any(self.v1 != self.v2))

    @classmethod
    def random(cls, width: int, rng: np.random.Generator) -> "PatternPair":
        return cls(
            v1=rng.integers(0, 2, size=width, dtype=np.uint8),
            v2=rng.integers(0, 2, size=width, dtype=np.uint8),
        )


def stimuli_from_pair(circuit: Circuit, pair: PatternPair,
                      launch_time: float = LAUNCH_TIME) -> Dict[str, Waveform]:
    """Primary-input waveforms for a pattern pair.

    Each input starts at its ``v1`` bit; inputs whose ``v2`` bit differs
    toggle once at ``launch_time``.
    """
    if pair.width != len(circuit.inputs):
        raise ValueError(
            f"pattern width {pair.width} != {len(circuit.inputs)} inputs"
        )
    waveforms: Dict[str, Waveform] = {}
    for index, net in enumerate(circuit.inputs):
        if pair.v1[index] != pair.v2[index]:
            waveforms[net] = Waveform(
                initial=int(pair.v1[index]),
                times=np.asarray([launch_time], dtype=np.float64),
            )
        else:
            waveforms[net] = Waveform.constant(int(pair.v1[index]))
    return waveforms


@dataclass(frozen=True)
class SimulationConfig:
    """Knobs shared by the simulators.

    Attributes
    ----------
    pulse_filtering:
        ``"inertial"`` — pulses shorter than the propagation delay of the
        suppressing transition are filtered (paper default: inertial
        delay equals propagation delay); ``"transport"`` — only causal
        cancellation, arbitrarily narrow pulses survive.
    waveform_capacity:
        Initial per-slot toggle capacity of the GPU waveform memory.
    grow_on_overflow:
        Re-run overflowing batches with doubled capacity (default) or
        raise :class:`~repro.errors.WaveformOverflowError`.
    record_all_nets:
        Keep every net's waveforms (needed for switching-activity
        analysis); otherwise only primary outputs are retained.
    backend:
        Compute backend executing the hot kernels: ``"numpy"``,
        ``"numba"``, ``"cext"`` or ``"auto"`` (best available, never an
        import error).  ``None`` (default) defers to the
        ``REPRO_BACKEND`` environment variable, then ``auto``.  See
        :mod:`repro.simulation.backend`.
    prune_inactive:
        Activity-driven sparse evaluation (default on): lanes whose
        input nets carry no toggles in a slot are not dispatched to the
        compute backend — their settled output value is written by a
        vectorized truth-table lookup instead.  Results are bit-identical
        either way; only ``gate_evaluations`` / ``lanes_skipped``
        accounting and throughput change.  Turn off for dense-dispatch
        benchmarking or ablation.
    fused:
        Fused level-plan execution (default on): dispatch each level as
        one backend call over the precompiled
        :class:`~repro.simulation.compiled.LevelPlan`, with the Horner
        delay kernel evaluated inside the merge loop instead of a
        separate per-batch delay pass.  Bit-identical to the unfused
        per-arity-group path; turn off for ablation or to compare
        timings.
    faults:
        Optional fault-plan spec string (see :mod:`repro.faults`).  The
        first engine constructed with it arms the plan process-wide
        (``faults.ensure``); an already-active plan wins.  Operational
        only — never part of job/campaign fingerprints, since an
        injection-free run is bit-identical to one with seams compiled
        in but no plan armed.
    demote_after:
        Consecutive non-overflow kernel faults an engine absorbs before
        demoting its compute backend one rung (cext → numba → numpy,
        skipping unavailable rungs).  At the numpy floor the fault
        propagates instead.
    """

    pulse_filtering: str = "inertial"
    waveform_capacity: int = 16
    grow_on_overflow: bool = True
    record_all_nets: bool = False
    backend: Optional[str] = None
    prune_inactive: bool = True
    fused: bool = True
    faults: Optional[str] = None
    demote_after: int = 2

    def __post_init__(self) -> None:
        from repro.simulation.backend import BACKEND_CHOICES

        if self.pulse_filtering not in ("inertial", "transport"):
            raise ValueError(
                f"pulse_filtering must be 'inertial' or 'transport', "
                f"got {self.pulse_filtering!r}"
            )
        if self.waveform_capacity < 2:
            raise ValueError("waveform capacity must be at least 2")
        if self.backend is not None and self.backend not in BACKEND_CHOICES:
            raise ValueError(
                f"backend must be one of {BACKEND_CHOICES} or None, "
                f"got {self.backend!r}"
            )
        if self.demote_after < 1:
            raise ValueError("demote_after must be >= 1")


@dataclass
class SimulationResult:
    """Waveforms and bookkeeping of one simulation run.

    ``waveforms[slot][net]`` is the computed :class:`Waveform` of ``net``
    in slot ``slot`` (a (pattern, operating point) combination as listed
    in ``slot_labels``).  Only primary outputs are present unless the run
    recorded all nets.

    ``report`` is populated by the fault-tolerant campaign runtime
    (:mod:`repro.runtime`) with a structured
    :class:`~repro.runtime.report.RunReport` — per-chunk attempts,
    retries, capacity growth and degraded-engine usage; plain engine
    runs leave it ``None``.
    """

    circuit_name: str
    slot_labels: List[Tuple[int, float]]
    waveforms: List[Dict[str, Waveform]]
    runtime_seconds: float
    gate_evaluations: int
    engine: str
    report: Optional[object] = None
    #: Full-state snapshot captured when the engine ran with
    #: ``capture_base=True`` — a
    #: :class:`~repro.simulation.delta.BaseArena` the service retains
    #: for incremental re-simulation; ``None`` otherwise.
    base_arena: Optional[object] = None

    @property
    def num_slots(self) -> int:
        return len(self.waveforms)

    def waveform(self, slot: int, net: str) -> Waveform:
        try:
            return self.waveforms[slot][net]
        except KeyError:
            raise KeyError(
                f"net {net!r} not recorded (enable record_all_nets?)"
            ) from None

    def latest_arrival(self, slot: int, nets: Optional[Sequence[str]] = None) -> float:
        """Latest toggle time over ``nets`` (default: all recorded nets)."""
        chosen = nets if nets is not None else list(self.waveforms[slot])
        latest = float("-inf")
        for net in chosen:
            latest = max(latest, self.waveform(slot, net).latest_transition())
        return latest

    def final_values(self, slot: int, nets: Sequence[str]) -> np.ndarray:
        """Settled logic values (test responses) for the given nets."""
        return np.asarray(
            [self.waveform(slot, net).final_value for net in nets], dtype=np.uint8
        )

    def total_transitions(self, slot: int) -> int:
        return sum(w.num_transitions for w in self.waveforms[slot].values())
