"""The parallel waveform time simulator (the paper's engine, Sec. IV).

``GpuWaveSim`` is the NumPy-SIMT port of the paper's CUDA simulator.  The
three dimensions of parallelism map onto array axes:

* **gates** — the circuit is processed level by level; all gates of a
  level are structurally independent and evaluated together as one
  uniform SIMD thread group (narrow gates run with don't-care-padded
  truth tables and a constant dummy input, so control flow never
  diverges; an optional per-arity grouping mode exists for ablation),
* **stimuli × operating points** — the slot plane (Fig. 3): each kernel
  call spans ``lanes = gates_in_level × slots`` with per-lane waveform
  data and per-lane delays,
* **online delay calculation** — in parametric mode each level's
  pin-to-pin delays are computed on the fly from the polynomial kernel
  table and the slots' supply voltages (Sec. IV-A steps 1–5); delays are
  evaluated once per *distinct* voltage and broadcast to slots, because
  parallel instances of a gate share coefficients and function calls
  (Sec. IV-B).  In static mode the SDF nominal delays are used unchanged
  — the baseline [25] configuration.

Waveform memory is a dense ``(nets, slots, capacity)`` float64 array with
``+inf`` termination, like the GPU global-memory layout.  Overflowing
batches are re-run with doubled capacity (configurable).
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

from repro.cells.library import CellLibrary
from repro.core.delay_kernel import DelayKernelTable
from repro.errors import SimulationError, WaveformOverflowError
from repro.netlist.circuit import Circuit
from repro.netlist.sdf import SdfAnnotation
from repro.simulation.base import (
    LAUNCH_TIME,
    PatternPair,
    SimulationConfig,
    SimulationResult,
)
from repro.simulation.compiled import CompiledCircuit, compile_circuit
from repro.simulation.grid import SlotPlan
from repro.simulation.kernels import waveform_merge_kernel
from repro.waveform.waveform import Waveform

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulation.variation import ProcessVariation

__all__ = ["GpuWaveSim"]

INF = np.float64(np.inf)

#: Waveform-memory budget per batch (bytes); batches are sized so the
#: dense (nets × slots × capacity) array stays below this.
DEFAULT_MEMORY_BUDGET = 1024 * 1024 * 1024

#: Hard ceiling for overflow-driven capacity growth.
MAX_CAPACITY = 4096


@dataclass
class _BatchStats:
    """Per-run engine diagnostics."""

    gate_evaluations: int = 0
    kernel_calls: int = 0
    kernel_iterations: int = 0
    retries: int = 0
    batches: int = 0


class GpuWaveSim:
    """Massively parallel waveform simulator (NumPy-SIMT).

    Parameters
    ----------
    group_by_arity:
        ``False`` (default): one kernel call per level with padded truth
        tables.  ``True``: split levels into per-arity groups (smaller
        calls, no padding overhead) — kept for the ablation benchmark.
    """

    def __init__(
        self,
        circuit: Circuit,
        library: CellLibrary,
        annotation: Optional[SdfAnnotation] = None,
        loads: Optional[Dict[str, float]] = None,
        config: Optional[SimulationConfig] = None,
        compiled: Optional[CompiledCircuit] = None,
        memory_budget: int = DEFAULT_MEMORY_BUDGET,
        group_by_arity: bool = False,
    ) -> None:
        self.config = config or SimulationConfig()
        self.compiled = compiled or compile_circuit(circuit, library, annotation, loads)
        self.memory_budget = memory_budget
        self.group_by_arity = group_by_arity
        self.last_stats: Optional[_BatchStats] = None

    # -- public API ----------------------------------------------------------------

    def run(
        self,
        pairs: Sequence[PatternPair],
        plan: Optional[SlotPlan] = None,
        voltage: float = 0.8,
        kernel_table: Optional[DelayKernelTable] = None,
        variation: Optional["ProcessVariation"] = None,
        global_slots: Optional[np.ndarray] = None,
    ) -> SimulationResult:
        """Simulate a slot plane.

        Parameters
        ----------
        pairs:
            The stimuli referenced by the plan's pattern indices.
        plan:
            Slot plane; defaults to all pairs at the single ``voltage``.
        kernel_table:
            Compiled polynomial delay kernels.  ``None`` selects static
            (nominal SDF) delays — the baseline [25] configuration; plans
            spanning several voltages then raise, because static delays
            cannot differentiate operating points.
        variation:
            Optional :class:`~repro.simulation.variation.ProcessVariation`;
            each slot then gets its own random per-gate delay factors
            (Monte-Carlo over the slot plane).
        global_slots:
            When the plan is a chunk of a larger plane (multi-device or
            campaign execution), the full-plane slot index of each local
            slot.  Monte-Carlo die factors follow these *global* indices,
            so chunked runs stay bit-identical to a whole-plane run.
            Defaults to ``0..num_slots-1`` (the plan is the whole plane).
        """
        if not pairs:
            raise SimulationError("need at least one pattern pair")
        plan = plan or SlotPlan.uniform(len(pairs), voltage)
        if int(plan.pattern_indices.max()) >= len(pairs):
            raise SimulationError("slot plan references missing pattern index")
        if global_slots is not None:
            global_slots = np.asarray(global_slots, dtype=np.int64)
            if global_slots.shape != (plan.num_slots,):
                raise SimulationError(
                    "global_slots must provide one index per plan slot"
                )
            if global_slots.size and int(global_slots.min()) < 0:
                raise SimulationError("global_slots must be non-negative")
        if kernel_table is None and plan.distinct_voltages().size > 1:
            raise SimulationError(
                "static delay mode cannot differentiate operating points; "
                "pass a kernel_table for voltage-aware simulation"
            )

        v1 = np.stack([p.v1 for p in pairs])
        v2 = np.stack([p.v2 for p in pairs])
        if v1.shape[1] != len(self.compiled.circuit.inputs):
            raise SimulationError("pattern width does not match circuit inputs")

        stats = _BatchStats()
        start = _time.perf_counter()
        waveforms: List[Optional[Dict[str, Waveform]]] = [None] * plan.num_slots
        max_slots = self._max_batch_slots()
        for indices, sub_plan in plan.batches(max_slots):
            stats.batches += 1
            batch_globals = (global_slots[indices] if global_slots is not None
                             else indices)
            batch_waveforms = self._run_batch(v1, v2, sub_plan, kernel_table,
                                              stats, variation, batch_globals)
            for local, slot in enumerate(indices):
                waveforms[int(slot)] = batch_waveforms[local]
        runtime = _time.perf_counter() - start
        self.last_stats = stats
        return SimulationResult(
            circuit_name=self.compiled.circuit.name,
            slot_labels=plan.labels(),
            waveforms=waveforms,  # type: ignore[arg-type]
            runtime_seconds=runtime,
            gate_evaluations=stats.gate_evaluations,
            engine="gpu-static" if kernel_table is None else "gpu-parametric",
        )

    # -- internals ---------------------------------------------------------------------

    def _max_batch_slots(self) -> int:
        per_slot = (self.compiled.num_nets + 1) * self.config.waveform_capacity * 8
        return max(4, int(self.memory_budget // max(per_slot, 1)))

    def _run_batch(
        self,
        v1: np.ndarray,
        v2: np.ndarray,
        plan: SlotPlan,
        kernel_table: Optional[DelayKernelTable],
        stats: _BatchStats,
        variation: Optional["ProcessVariation"] = None,
        global_slots: Optional[np.ndarray] = None,
    ) -> List[Dict[str, Waveform]]:
        capacity = self.config.waveform_capacity
        while True:
            try:
                return self._run_batch_at_capacity(v1, v2, plan, kernel_table,
                                                   capacity, stats, variation,
                                                   global_slots)
            except WaveformOverflowError:
                if not self.config.grow_on_overflow or capacity >= MAX_CAPACITY:
                    raise
                capacity *= 2
                stats.retries += 1

    def _run_batch_at_capacity(
        self,
        v1: np.ndarray,
        v2: np.ndarray,
        plan: SlotPlan,
        kernel_table: Optional[DelayKernelTable],
        capacity: int,
        stats: _BatchStats,
        variation: Optional["ProcessVariation"] = None,
        global_slots: Optional[np.ndarray] = None,
    ) -> List[Dict[str, Waveform]]:
        compiled = self.compiled
        num_slots = plan.num_slots
        inertial = self.config.pulse_filtering == "inertial"

        # Waveform memory: (nets + dummy, slots, capacity) toggle times.
        times_all = np.full((compiled.num_nets + 1, num_slots, capacity), INF,
                            dtype=np.float64)
        initial_all = np.zeros((compiled.num_nets + 1, num_slots), dtype=np.uint8)

        # Load stimuli (Fig. 2 step 3): per slot, its pattern pair.
        pattern_of_slot = plan.pattern_indices
        first = v1[pattern_of_slot]                        # (S, num_inputs)
        toggles = (v1 != v2)[pattern_of_slot]              # (S, num_inputs)
        initial_all[compiled.input_net_ids] = first.T
        times_all[compiled.input_net_ids, :, 0] = np.where(
            toggles.T, LAUNCH_TIME, INF
        )

        # Parallel instances share delay-function calls: evaluate each
        # distinct voltage once and broadcast to its slots.
        distinct_v, slot_to_v = np.unique(plan.voltages, return_inverse=True)

        # Monte-Carlo die samples: per-gate, per-slot delay factors.
        factors = None
        if variation is not None:
            if global_slots is None:
                global_slots = np.arange(num_slots)
            factors = variation.factors(compiled.num_gates, global_slots)

        # Level-wise processing (the vertical grid dimension).
        for level_index, level_gates in enumerate(compiled.levels):
            if self.group_by_arity:
                for arity, gate_indices in compiled.level_groups[level_index]:
                    self._run_group(
                        gate_indices, arity, times_all, initial_all,
                        distinct_v, slot_to_v, kernel_table, capacity,
                        inertial, stats, padded=False, factors=factors,
                    )
            else:
                self._run_group(
                    level_gates, compiled.max_pins, times_all, initial_all,
                    distinct_v, slot_to_v, kernel_table, capacity,
                    inertial, stats, padded=True, factors=factors,
                )

        # Waveform analysis (Fig. 2 step 4): unpack the requested nets.
        wanted = (
            list(compiled.net_index)
            if self.config.record_all_nets
            else list(compiled.circuit.outputs)
        )
        result: List[Dict[str, Waveform]] = [dict() for _ in range(num_slots)]
        for net in wanted:
            net_id = compiled.net_index[net]
            rows = times_all[net_id]                       # (S, C)
            counts = np.sum(np.isfinite(rows), axis=1)
            initials = initial_all[net_id]
            for slot in range(num_slots):
                result[slot][net] = Waveform.trusted(
                    int(initials[slot]), rows[slot, : counts[slot]].copy()
                )
        return result

    def _run_group(
        self,
        gate_indices: np.ndarray,
        arity: int,
        times_all: np.ndarray,
        initial_all: np.ndarray,
        distinct_v: np.ndarray,
        slot_to_v: np.ndarray,
        kernel_table: Optional[DelayKernelTable],
        capacity: int,
        inertial: bool,
        stats: _BatchStats,
        padded: bool,
        factors: Optional[np.ndarray] = None,
    ) -> None:
        """Evaluate one SIMD thread group across all slots.

        ``padded=True`` runs a whole level with don't-care-padded truth
        tables and a constant dummy net on spare pins; ``padded=False``
        runs a same-arity subset natively (ablation mode).
        """
        compiled = self.compiled
        num_slots = slot_to_v.size
        group_size = gate_indices.size
        if group_size == 0:
            return
        if padded:
            in_ids = compiled.padded_inputs[gate_indices]            # (g, P)
            tables = compiled.padded_truth_tables[gate_indices]
        else:
            in_ids = compiled.gate_inputs[gate_indices, :arity]      # (g, k)
            tables = compiled.truth_tables[gate_indices]

        # Gather inputs: (g, k, S, C) -> (k, g*S, C).
        lanes = group_size * num_slots
        input_times = times_all[in_ids].transpose(1, 0, 2, 3).reshape(
            arity, lanes, capacity
        )
        input_initial = initial_all[in_ids].transpose(1, 0, 2).reshape(arity, lanes)

        # Online delay calculation (Sec. IV-A): adapt the nominal delays
        # to each slot's operating point, or broadcast them in static mode.
        nominal = compiled.nominal_delays[gate_indices, :arity]      # (g, k, 2)
        if kernel_table is None:
            delays = np.broadcast_to(
                nominal[..., None], (group_size, arity, 2, num_slots)
            )
        else:
            per_voltage = kernel_table.delays_for_gates(
                compiled.gate_type_ids[gate_indices],
                compiled.gate_loads[gate_indices],
                compiled.nominal_delays[gate_indices],
                distinct_v,
            )[:, :arity]                                             # (g, k, 2, V)
            delays = per_voltage[..., slot_to_v]                     # (g, k, 2, S)
        if factors is not None:
            delays = delays * factors[gate_indices][:, None, None, :]
        delays = np.ascontiguousarray(delays.transpose(1, 2, 0, 3)).reshape(
            arity, 2, lanes
        )

        lane_tables = np.repeat(tables.astype(np.int64), num_slots)

        merged = waveform_merge_kernel(
            input_times, input_initial, delays, lane_tables, capacity,
            inertial=inertial,
        )
        stats.gate_evaluations += lanes
        stats.kernel_calls += 1
        stats.kernel_iterations += merged.iterations
        if merged.overflow.any():
            raise WaveformOverflowError(
                f"{int(merged.overflow.sum())} lanes exceeded capacity {capacity}"
            )

        out_ids = compiled.gate_output[gate_indices]
        times_all[out_ids] = merged.times.reshape(group_size, num_slots, capacity)
        initial_all[out_ids] = merged.initial.reshape(group_size, num_slots)
