"""The parallel waveform time simulator (the paper's engine, Sec. IV).

``GpuWaveSim`` is the NumPy-SIMT port of the paper's CUDA simulator.  The
three dimensions of parallelism map onto array axes:

* **gates** — the circuit is processed level by level; all gates of a
  level are structurally independent and evaluated together as one
  uniform SIMD thread group (narrow gates run with don't-care-padded
  truth tables and a constant dummy input, so control flow never
  diverges; an optional per-arity grouping mode exists for ablation),
* **stimuli × operating points** — the slot plane (Fig. 3): each kernel
  call spans ``lanes = gates_in_level × slots`` with per-lane waveform
  data and per-lane delays,
* **online delay calculation** — in parametric mode each level's
  pin-to-pin delays are computed on the fly from the polynomial kernel
  table and the slots' supply voltages (Sec. IV-A steps 1–5); delays are
  evaluated once per *distinct* voltage and broadcast to slots, because
  parallel instances of a gate share coefficients and function calls
  (Sec. IV-B).  In static mode the SDF nominal delays are used unchanged
  — the baseline [25] configuration.

Waveform memory is a dense ``(nets, slots, capacity)`` float64 array with
``+inf`` termination, like the GPU global-memory layout.  Overflowing
batches are re-run with doubled capacity (configurable); the batch is
re-sized at the grown capacity so the memory budget holds on retries.
The arena is *pooled* per engine instance: successive batches reset the
same allocation in place instead of re-allocating (and re-faulting) up
to a gigabyte per batch.

On realistic low-activity stimuli most lanes carry zero input toggles —
their output is a pure logic settle with no waveform work.  The engine
therefore prunes at two slot-classified granularities: slots whose
stimulus launches no toggle at all settle in one vectorized truth-table
sweep and never touch the arena, and slots toggling only a small
fraction of their inputs run with per-(net, slot) activity tracking —
the per-(gate, slot) active mask is derived before each level and only
active lanes are dispatched to the backend (the lane-compaction path
GATSPI demonstrates as the dominant speedup lever for gate-level GPU
simulation).  High-toggle slots run the plain dense path, where mask
bookkeeping could not pay for itself.  Quiet lanes get their settled
output value from a vectorized truth-table lookup; results are
bit-identical to dense evaluation (``config.prune_inactive=False``).

The kernels themselves are pluggable (:mod:`repro.simulation.backend`):
the vectorized lockstep numpy port, JIT-compiled per-lane loops (numba),
or compiled C (cext).  The JIT backends consume per-gate net-id index
arrays and read/write the waveform arena in place, skipping the
``(k, lanes, capacity)`` gather copy and the output reshape of the numpy
path entirely.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

from repro import faults
from repro.cells.library import CellLibrary
from repro.core.delay_kernel import DelayKernelTable
from repro.errors import SimulationError, WaveformOverflowError
from repro.netlist.circuit import Circuit
from repro.netlist.sdf import SdfAnnotation
from repro.simulation.backend import (
    ComputeBackend,
    demote_backend,
    resolve_backend,
)
from repro.simulation.base import (
    LAUNCH_TIME,
    PatternPair,
    SimulationConfig,
    SimulationResult,
)
from repro.simulation.compiled import CompiledCircuit, compile_circuit
from repro.simulation.delta import BaseArena, DeltaPlan
from repro.simulation.grid import SlotPlan
from repro.waveform.waveform import Waveform

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulation.variation import ProcessVariation

__all__ = ["GpuWaveSim"]

INF = np.float64(np.inf)

#: Waveform-memory budget per batch (bytes); batches are sized so the
#: dense (nets × slots × capacity) array stays below this.
DEFAULT_MEMORY_BUDGET = 1024 * 1024 * 1024

#: Hard ceiling for overflow-driven capacity growth.
MAX_CAPACITY = 4096

#: A thread group takes the lane-compacted sparse path only when its
#: active lane share is below this fraction; above it the dense kernel
#: is cheaper (a toggle-free lane settles in about one event-loop
#: iteration, while compaction pays index bookkeeping per lane).  The
#: dispatch choice never affects results or the evaluated/skipped lane
#: accounting — both are derived from the activity mask alone.
SPARSE_DISPATCH_FRACTION = 0.5

#: Slots toggling at least this fraction of the primary inputs skip
#: lane-grained activity tracking entirely — activity spreads so wide
#: that the per-level mask bookkeeping cannot pay for itself, so they
#: run the plain dense path (and count every lane as evaluated).  The
#: classification is per slot, keeping the accounting invariant across
#: backends and slot-plane chunkings.
LANE_TRACK_INPUT_FRACTION = 0.25


@dataclass
class _BatchStats:
    """Per-run engine diagnostics.

    With activity pruning enabled, ``lanes_skipped`` counts the quiet
    lanes settled by truth-table lookup instead of kernel work — whole
    quiet slots plus, in lane-tracked slots, lanes whose inputs carry no
    toggles — and ``gate_evaluations`` the rest;
    ``gate_evaluations + lanes_skipped`` equals the dense lane count,
    and the split is invariant across backends and slot-plane chunkings
    (each lane's class depends only on its own slot's stimulus).
    """

    gate_evaluations: int = 0
    kernel_calls: int = 0
    kernel_iterations: int = 0
    retries: int = 0
    batches: int = 0
    lanes_skipped: int = 0
    #: Lanes whose waveforms were spliced out of a cached base arena
    #: instead of being evaluated or settled (delta runs only).  For a
    #: fully base-mapped delta run
    #: ``lanes_spliced + gate_evaluations == gates * slots`` exactly.
    lanes_spliced: int = 0
    #: Payload bytes reused from the base arena (toggle times + initial
    #: values) — the zero-copy volume the delta path avoided recomputing.
    bytes_spliced: int = 0
    backend: str = ""
    #: Backend demotion steps taken during this run (``"cext->numpy"``),
    #: in order; ``backend`` reflects the post-demotion backend.
    demotions: List[str] = field(default_factory=list)
    #: Per-phase wall time (seconds): online delay evaluation, waveform
    #: merge kernels, and waveform pack/settle.  In fused dispatch the
    #: lane backends evaluate delays inside the merge loop, so their
    #: delay share is folded into ``merge_seconds``.
    delay_seconds: float = 0.0
    merge_seconds: float = 0.0
    pack_seconds: float = 0.0

    @property
    def active_fraction(self) -> float:
        """Dispatched share of all lanes (1.0 when nothing was skipped)."""
        total = self.gate_evaluations + self.lanes_skipped
        return 1.0 if total == 0 else self.gate_evaluations / total

    @property
    def delta_fraction(self) -> float:
        """Evaluated share of a delta run's lanes (1.0 = no splicing)."""
        total = self.gate_evaluations + self.lanes_spliced
        return 1.0 if total == 0 else self.gate_evaluations / total

    def phase_seconds(self) -> Dict[str, float]:
        """The per-phase timing breakdown as a plain dict."""
        return {
            "delay": self.delay_seconds,
            "merge": self.merge_seconds,
            "pack": self.pack_seconds,
        }


class _ArenaPool:
    """Reusable backing store for the waveform arena.

    A batch needs a ``(nets, slots, capacity)`` float64 toggle-time
    array (+inf filled) and a ``(nets, slots)`` uint8 initial-value
    array.  Allocating these per batch costs up to ``memory_budget``
    bytes of fresh pages each time; the pool keeps one flat buffer per
    dtype and hands out reset-in-place views instead.  Safe because the
    engine copies every surviving toggle out of the arena during
    waveform unpack (fancy indexing) before the next acquire.
    """

    def __init__(self) -> None:
        self._times: Optional[np.ndarray] = None
        self._initial: Optional[np.ndarray] = None

    def acquire(self, nets: int, slots: int, capacity: int):
        """A zeroed ``(times, initial)`` arena pair of the given shape."""
        faults.trip("engine.alloc")
        n_times = nets * slots * capacity
        if self._times is None or self._times.size < n_times:
            self._times = np.empty(n_times, dtype=np.float64)
        times = self._times[:n_times].reshape(nets, slots, capacity)
        times.fill(INF)
        n_initial = nets * slots
        if self._initial is None or self._initial.size < n_initial:
            self._initial = np.empty(n_initial, dtype=np.uint8)
        initial = self._initial[:n_initial].reshape(nets, slots)
        initial.fill(0)
        return times, initial


class GpuWaveSim:
    """Massively parallel waveform simulator (NumPy-SIMT).

    Parameters
    ----------
    group_by_arity:
        ``False`` (default): one kernel call per level with padded truth
        tables.  ``True``: split levels into per-arity groups (smaller
        calls, no padding overhead) — kept for the ablation benchmark.

    The compute backend executing the kernels follows
    ``config.backend`` / the ``REPRO_BACKEND`` environment variable
    (default ``auto``; see :mod:`repro.simulation.backend`).
    """

    def __init__(
        self,
        circuit: Circuit,
        library: CellLibrary,
        annotation: Optional[SdfAnnotation] = None,
        loads: Optional[Dict[str, float]] = None,
        config: Optional[SimulationConfig] = None,
        compiled: Optional[CompiledCircuit] = None,
        memory_budget: int = DEFAULT_MEMORY_BUDGET,
        group_by_arity: bool = False,
    ) -> None:
        self.config = config or SimulationConfig()
        self.compiled = compiled or compile_circuit(circuit, library, annotation, loads)
        self.memory_budget = memory_budget
        self.group_by_arity = group_by_arity
        if self.config.faults:
            faults.ensure(self.config.faults)
        self.backend: ComputeBackend = resolve_backend(self.config.backend)
        self.last_stats: Optional[_BatchStats] = None
        #: Demotion steps taken over the engine's lifetime (see
        #: ``_absorb_kernel_fault``); per-run steps live on the stats.
        self.demotions: List[str] = []
        self._kernel_faults = 0
        self._arena_pool = _ArenaPool()
        # Fused dispatch needs the per-level compacted plans; resolved
        # lazily (and fingerprint-cached across engines/services) on
        # first use.  Ablation per-arity grouping keeps the unfused path.
        self._plans = None
        self._fused = bool(self.config.fused) and not group_by_arity

    # -- public API ----------------------------------------------------------------

    def run(
        self,
        pairs: Sequence[PatternPair],
        plan: Optional[SlotPlan] = None,
        voltage: float = 0.8,
        kernel_table: Optional[DelayKernelTable] = None,
        variation: Optional["ProcessVariation"] = None,
        global_slots: Optional[np.ndarray] = None,
        delta: Optional[DeltaPlan] = None,
        capture_base: bool = False,
    ) -> SimulationResult:
        """Simulate a slot plane.

        Parameters
        ----------
        pairs:
            The stimuli referenced by the plan's pattern indices.
        plan:
            Slot plane; defaults to all pairs at the single ``voltage``.
        kernel_table:
            Compiled polynomial delay kernels.  ``None`` selects static
            (nominal SDF) delays — the baseline [25] configuration; plans
            spanning several voltages then raise, because static delays
            cannot differentiate operating points.
        variation:
            Optional :class:`~repro.simulation.variation.ProcessVariation`;
            each slot then gets its own random per-gate delay factors
            (Monte-Carlo over the slot plane).
        global_slots:
            When the plan is a chunk of a larger plane (multi-device or
            campaign execution), the full-plane slot index of each local
            slot.  Monte-Carlo die factors follow these *global* indices,
            so chunked runs stay bit-identical to a whole-plane run.
            Defaults to ``0..num_slots-1`` (the plan is the whole plane).
        delta:
            Optional :class:`~repro.simulation.delta.DeltaPlan` mapping
            slots onto a cached base arena: fully matching slots are
            spliced straight out of the base, slots with changed inputs
            re-evaluate only the cone of influence, unmapped slots run
            from scratch.  Results are bit-identical to ``delta=None``.
        capture_base:
            Capture this run's full waveform state as a
            :class:`~repro.simulation.delta.BaseArena` on
            ``result.base_arena`` so later jobs can delta against it.
        """
        if not pairs:
            raise SimulationError("need at least one pattern pair")
        plan = plan or SlotPlan.uniform(len(pairs), voltage)
        if int(plan.pattern_indices.max()) >= len(pairs):
            raise SimulationError("slot plan references missing pattern index")
        if global_slots is not None:
            global_slots = np.asarray(global_slots, dtype=np.int64)
            if global_slots.shape != (plan.num_slots,):
                raise SimulationError(
                    "global_slots must provide one index per plan slot"
                )
            if global_slots.size and int(global_slots.min()) < 0:
                raise SimulationError("global_slots must be non-negative")
        if kernel_table is None and plan.distinct_voltages().size > 1:
            raise SimulationError(
                "static delay mode cannot differentiate operating points; "
                "pass a kernel_table for voltage-aware simulation"
            )

        v1 = np.stack([p.v1 for p in pairs])
        v2 = np.stack([p.v2 for p in pairs])
        if v1.shape[1] != len(self.compiled.circuit.inputs):
            raise SimulationError("pattern width does not match circuit inputs")
        if delta is not None:
            if delta.base_slot.shape != (plan.num_slots,):
                raise SimulationError(
                    "delta plan must map every plan slot")
            if delta.changed_inputs.shape != (plan.num_slots, v1.shape[1]):
                raise SimulationError(
                    "delta changed-input plane does not match the stimuli")
            if delta.base.num_nets != self.compiled.num_nets:
                raise SimulationError(
                    "delta base arena belongs to a different circuit")
            if delta.base_slot.size and (
                    int(delta.base_slot.max()) >= delta.base.num_slots):
                raise SimulationError(
                    "delta plan references a missing base slot")

        stats = _BatchStats(backend=self.backend.name)
        start = _time.perf_counter()
        waveforms: List[Optional[Dict[str, Waveform]]] = [None] * plan.num_slots
        capture: Optional[Dict[int, tuple]] = {} if capture_base else None
        max_slots = self._max_batch_slots()
        for indices, sub_plan in plan.batches(max_slots):
            stats.batches += 1
            batch_globals = (global_slots[indices] if global_slots is not None
                             else indices)
            batch_waveforms = self._run_batch(
                v1, v2, sub_plan, kernel_table, stats, variation,
                batch_globals,
                delta=delta.take(indices) if delta is not None else None,
                capture=capture, capture_slots=indices)
            for local, slot in enumerate(indices):
                waveforms[int(slot)] = batch_waveforms[local]
        base_arena = None
        if capture is not None:
            plane_slots = (global_slots if global_slots is not None
                           else np.arange(plan.num_slots, dtype=np.int64))
            base_arena = BaseArena.assemble(
                capture, self.compiled.num_nets, plan.num_slots,
                v1=v1[plan.pattern_indices], v2=v2[plan.pattern_indices],
                voltages=plan.voltages, global_slots=plane_slots,
                waveforms=list(waveforms))
        runtime = _time.perf_counter() - start
        self.last_stats = stats
        mode = "gpu-static" if kernel_table is None else "gpu-parametric"
        sparse = ",sparse" if self.config.prune_inactive else ""
        delta_tag = ",delta" if stats.lanes_spliced else ""
        demoted = "".join(f",demoted:{step}" for step in stats.demotions)
        return SimulationResult(
            circuit_name=self.compiled.circuit.name,
            slot_labels=plan.labels(),
            waveforms=waveforms,  # type: ignore[arg-type]
            runtime_seconds=runtime,
            gate_evaluations=stats.gate_evaluations,
            engine=f"{mode}[{self.backend.name}{sparse}{delta_tag}{demoted}]",
            base_arena=base_arena,
        )

    # -- internals ---------------------------------------------------------------------

    def _max_batch_slots(self, capacity: Optional[int] = None) -> int:
        capacity = capacity or self.config.waveform_capacity
        per_slot = (self.compiled.num_nets + 1) * capacity * 8
        return max(4, int(self.memory_budget // max(per_slot, 1)))

    def _run_batch(
        self,
        v1: np.ndarray,
        v2: np.ndarray,
        plan: SlotPlan,
        kernel_table: Optional[DelayKernelTable],
        stats: _BatchStats,
        variation: Optional["ProcessVariation"] = None,
        global_slots: Optional[np.ndarray] = None,
        delta: Optional[DeltaPlan] = None,
        capture: Optional[Dict[int, tuple]] = None,
        capture_slots: Optional[np.ndarray] = None,
    ) -> List[Dict[str, Waveform]]:
        capacity = self.config.waveform_capacity
        # Per-voltage delays depend only on (gates, distinct voltages) —
        # the cache survives capacity-doubling retries and budget splits,
        # so overflow recovery never re-evaluates the polynomials.
        delay_cache: Optional[Dict] = {} if kernel_table is not None else None
        while True:
            try:
                return self._run_batch_within_budget(
                    v1, v2, plan, kernel_table, capacity, stats, variation,
                    global_slots, delay_cache, delta=delta, capture=capture,
                    capture_slots=capture_slots)
            except WaveformOverflowError:
                if not self.config.grow_on_overflow or capacity >= MAX_CAPACITY:
                    raise
                capacity *= 2
                stats.retries += 1
            except Exception as error:  # noqa: BLE001 - demotion ladder
                if not self._absorb_kernel_fault(error, stats):
                    raise

    def _absorb_kernel_fault(self, error: Exception,
                             stats: _BatchStats) -> bool:
        """Retry policy for non-overflow batch failures.

        The batch is retried on the same backend until ``demote_after``
        consecutive faults, then the backend is demoted one rung
        (cext → numba → numpy, skipping unavailable rungs) and the
        counter resets.  Returns False — re-raise — at the numpy floor,
        so total attempts are bounded by ``demote_after × rungs``.  A
        successful demoted retry leaves the engine on the demoted
        backend: a native kernel that faulted repeatedly is not trusted
        again.  (:class:`WorkerDeathError` is a ``BaseException`` and
        never reaches this handler — a dead worker is not a kernel
        fault.)
        """
        del error  # the retry decision depends only on the fault count
        self._kernel_faults += 1
        stats.retries += 1
        if self._kernel_faults < self.config.demote_after:
            return True
        demoted = demote_backend(self.backend.name)
        if demoted is None:
            return False
        step = f"{self.backend.name}->{demoted.name}"
        self.backend = demoted
        self._kernel_faults = 0
        self.demotions.append(step)
        stats.demotions.append(step)
        stats.backend = demoted.name
        return True

    def _run_batch_within_budget(
        self,
        v1: np.ndarray,
        v2: np.ndarray,
        plan: SlotPlan,
        kernel_table: Optional[DelayKernelTable],
        capacity: int,
        stats: _BatchStats,
        variation: Optional["ProcessVariation"],
        global_slots: Optional[np.ndarray],
        delay_cache: Optional[Dict],
        delta: Optional[DeltaPlan] = None,
        capture: Optional[Dict[int, tuple]] = None,
        capture_slots: Optional[np.ndarray] = None,
    ) -> List[Dict[str, Waveform]]:
        """Run one batch at the given capacity, re-chunking first if the
        grown capacity would blow the memory budget (a retried batch is
        re-sized instead of exceeding ``memory_budget`` by the growth
        factor)."""
        max_slots = self._max_batch_slots(capacity)
        if plan.num_slots <= max_slots:
            return self._run_batch_at_capacity(
                v1, v2, plan, kernel_table, capacity, stats, variation,
                global_slots, delay_cache, delta=delta, capture=capture,
                capture_slots=capture_slots)
        if global_slots is None:
            global_slots = np.arange(plan.num_slots, dtype=np.int64)
        if capture is not None and capture_slots is None:
            capture_slots = np.arange(plan.num_slots, dtype=np.int64)
        results: List[Optional[Dict[str, Waveform]]] = [None] * plan.num_slots
        for indices, sub_plan in plan.batches(max_slots):
            sub_waveforms = self._run_batch_at_capacity(
                v1, v2, sub_plan, kernel_table, capacity, stats, variation,
                global_slots[indices], delay_cache,
                delta=delta.take(indices) if delta is not None else None,
                capture=capture,
                capture_slots=(capture_slots[indices]
                               if capture_slots is not None else None))
            for local, slot in enumerate(indices):
                results[int(slot)] = sub_waveforms[local]
        return results  # type: ignore[return-value]

    def _run_batch_at_capacity(
        self,
        v1: np.ndarray,
        v2: np.ndarray,
        plan: SlotPlan,
        kernel_table: Optional[DelayKernelTable],
        capacity: int,
        stats: _BatchStats,
        variation: Optional["ProcessVariation"] = None,
        global_slots: Optional[np.ndarray] = None,
        delay_cache: Optional[Dict] = None,
        delta: Optional[DeltaPlan] = None,
        capture: Optional[Dict[int, tuple]] = None,
        capture_slots: Optional[np.ndarray] = None,
    ) -> List[Dict[str, Waveform]]:
        compiled = self.compiled
        num_slots = plan.num_slots
        inertial = self.config.pulse_filtering == "inertial"
        if capture is not None and capture_slots is None:
            capture_slots = np.arange(num_slots, dtype=np.int64)

        # Delta evaluation: slots mapped onto a cached base arena splice
        # or cone-evaluate; only unmapped slots fall through to the full
        # path below.
        if delta is not None and bool((delta.base_slot >= 0).any()):
            return self._run_batch_delta(
                v1, v2, plan, kernel_table, capacity, stats, variation,
                global_slots, delay_cache, delta, capture, capture_slots)

        # Load stimuli (Fig. 2 step 3): per slot, its pattern pair.
        pattern_of_slot = plan.pattern_indices
        first = v1[pattern_of_slot]                        # (S, num_inputs)
        toggles = (v1 != v2)[pattern_of_slot]              # (S, num_inputs)

        # Slot-grained pruning: classify each slot by its input-toggle
        # fraction.  Quiet slots (zero toggles) never enter the arena or
        # the level loop; low-toggle slots run with lane-grained
        # activity tracking; high-toggle slots run the plain dense path
        # where the per-level mask bookkeeping could not pay for
        # itself.  The classification is per slot, so the
        # evaluated/skipped accounting stays invariant across backends
        # and slot-plane chunkings.
        track_lanes = False
        if self.config.prune_inactive:
            fraction = toggles.mean(axis=1)                # (S,)
            quiet = fraction == 0.0
            tracked = ~quiet & (fraction < LANE_TRACK_INPUT_FRACTION)
            n_quiet = int(np.count_nonzero(quiet))
            n_tracked = int(np.count_nonzero(tracked))
            if n_quiet or (0 < n_tracked < num_slots):
                return self._run_batch_slot_compacted(
                    v1, v2, plan, kernel_table, capacity, stats, variation,
                    global_slots, delay_cache, first, quiet, tracked,
                    capture, capture_slots)
            track_lanes = n_tracked == num_slots

        # Waveform memory: (nets + dummy, slots, capacity) toggle times.
        # Pooled per engine: batches (and overflow retries) reset the
        # same allocation in place instead of np.full-ing a fresh one.
        times_all, initial_all = self._arena_pool.acquire(
            compiled.num_nets + 1, num_slots, capacity)

        initial_all[compiled.input_net_ids] = first.T
        times_all[compiled.input_net_ids, :, 0] = np.where(
            toggles.T, LAUNCH_TIME, INF
        )

        # Toggle activity per (net, slot): a lane is dispatched to the
        # backend only when at least one of its input nets toggles.
        activity = None
        if track_lanes:
            activity = np.zeros((compiled.num_nets + 1, num_slots),
                                dtype=bool)
            activity[compiled.input_net_ids] = toggles.T

        # Parallel instances share delay-function calls: evaluate each
        # distinct voltage once and broadcast to its slots.
        distinct_v, slot_to_v = np.unique(plan.voltages, return_inverse=True)
        slot_to_v = np.ascontiguousarray(slot_to_v, dtype=np.int64)

        # Monte-Carlo die samples: per-gate, per-slot delay factors.
        factors = None
        if variation is not None:
            if global_slots is None:
                global_slots = np.arange(num_slots)
            factors = variation.factors(compiled.num_gates, global_slots)

        # Level-wise processing (the vertical grid dimension).  Fused
        # dispatch needs the polynomial kernel table (its coefficients
        # feed the in-kernel Horner evaluation); duck-typed alternative
        # delay models (LUT / analytical backends) take the unfused
        # per-group path, which only requires ``delays_for_gates``.
        fused = self._fused and (kernel_table is None
                                 or isinstance(kernel_table, DelayKernelTable))
        if fused:
            # One backend call per level over the precompiled plan, with
            # predictor normalizations (phi_V, phi_C) resolved once from
            # the fingerprint-cached plan memos.
            plans = self._plans
            if plans is None:
                plans = self._plans = compiled.plans()
            nv = None
            nc_levels = None
            if kernel_table is not None:
                nv = plans.normalized_voltages(kernel_table.space, distinct_v)
                nc_levels = plans.normalized_loads(kernel_table.space)
            if activity is None:
                # Dense batch: hand the whole level sequence to the
                # backend in one call (the C extension loops levels
                # natively, paying its ctypes marshalling cost once).
                self._run_levels(
                    plans, times_all, initial_all, slot_to_v, kernel_table,
                    nv, capacity, inertial, stats, factors=factors,
                    delay_cache=delay_cache,
                )
            else:
                for level_index, level_plan in enumerate(plans.levels):
                    self._run_level(
                        level_plan, times_all, initial_all, slot_to_v,
                        kernel_table, nv,
                        nc_levels[level_index]
                        if nc_levels is not None else None,
                        capacity, inertial, stats, factors=factors,
                        delay_cache=delay_cache, activity=activity,
                    )
        else:
            for level_index, level_gates in enumerate(compiled.levels):
                if self.group_by_arity:
                    for group_index, (arity, gate_indices) in enumerate(
                            compiled.level_groups[level_index]):
                        self._run_group(
                            gate_indices, arity,
                            compiled.gate_inputs[gate_indices, :arity],
                            compiled.gate_output[gate_indices],
                            compiled.truth_tables_i64[gate_indices],
                            times_all, initial_all,
                            distinct_v, slot_to_v, kernel_table, capacity,
                            inertial, stats, factors=factors,
                            delay_cache=delay_cache,
                            cache_key=(level_index, group_index),
                            activity=activity,
                        )
                else:
                    self._run_group(
                        level_gates, compiled.max_pins,
                        compiled.level_inputs[level_index],
                        compiled.level_outputs[level_index],
                        compiled.level_tables[level_index],
                        times_all, initial_all,
                        distinct_v, slot_to_v, kernel_table, capacity,
                        inertial, stats, factors=factors,
                        delay_cache=delay_cache, cache_key=(level_index,),
                        activity=activity,
                    )

        pack_start = _time.perf_counter()
        if capture is not None:
            self._capture_batch(times_all, initial_all, num_slots, capture,
                                capture_slots)
        waveforms = self._unpack_waveforms(times_all, initial_all, num_slots)
        stats.pack_seconds += _time.perf_counter() - pack_start
        return waveforms

    def _run_batch_slot_compacted(
        self,
        v1: np.ndarray,
        v2: np.ndarray,
        plan: SlotPlan,
        kernel_table: Optional[DelayKernelTable],
        capacity: int,
        stats: _BatchStats,
        variation: Optional["ProcessVariation"],
        global_slots: Optional[np.ndarray],
        delay_cache: Optional[Dict],
        first: np.ndarray,
        quiet: np.ndarray,
        tracked: np.ndarray,
        capture: Optional[Dict[int, tuple]] = None,
        capture_slots: Optional[np.ndarray] = None,
    ) -> List[Dict[str, Waveform]]:
        """Split a batch into quiet / lane-tracked / dense slot classes.

        Quiet slots (no launched transition on any input) are settled by
        :meth:`_settle_logic` — they contribute ``num_gates`` skipped
        lanes each and never touch the arena.  The tracked and dense
        subsets re-enter :meth:`_run_batch_at_capacity` on homogeneous
        slot-compacted plans, so the split never recurses twice.
        """
        compiled = self.compiled
        num_slots = plan.num_slots
        quiet_idx = np.nonzero(quiet)[0]
        stats.lanes_skipped += compiled.num_gates * int(quiet_idx.size)
        if global_slots is None:
            global_slots = np.arange(num_slots, dtype=np.int64)

        results: List[Optional[Dict[str, Waveform]]] = [None] * num_slots
        for subset in (np.nonzero(tracked)[0], np.nonzero(~quiet & ~tracked)[0]):
            if not subset.size:
                continue
            sub_plan = plan.take(subset)
            sub_results = self._run_batch_at_capacity(
                v1, v2, sub_plan, kernel_table, capacity, stats, variation,
                global_slots[subset], delay_cache, capture=capture,
                capture_slots=(capture_slots[subset]
                               if capture_slots is not None else None))
            for local, slot in enumerate(subset):
                results[int(slot)] = sub_results[local]
        if quiet_idx.size:
            pack_start = _time.perf_counter()
            values, inverse = self._settle_values(first[quiet_idx])
            settled = self._settle_waveforms(values, inverse)
            if capture is not None:
                no_counts = np.zeros(compiled.num_nets, dtype=np.int64)
                no_times = np.empty(0, dtype=np.float64)
                for local, slot in enumerate(quiet_idx):
                    capture[int(capture_slots[int(slot)])] = (
                        values[: compiled.num_nets, inverse[local]].copy(),
                        no_counts, no_times)
            stats.pack_seconds += _time.perf_counter() - pack_start
            for local, slot in enumerate(quiet_idx):
                results[int(slot)] = settled[local]
        return results  # type: ignore[return-value]

    def _run_batch_delta(
        self,
        v1: np.ndarray,
        v2: np.ndarray,
        plan: SlotPlan,
        kernel_table: Optional[DelayKernelTable],
        capacity: int,
        stats: _BatchStats,
        variation: Optional["ProcessVariation"],
        global_slots: Optional[np.ndarray],
        delay_cache: Optional[Dict],
        delta: DeltaPlan,
        capture: Optional[Dict[int, tuple]],
        capture_slots: Optional[np.ndarray],
    ) -> List[Dict[str, Waveform]]:
        """Partition a delta batch into splice / cone / full slot classes.

        Slots whose stimuli and operating point match a base slot
        exactly are *spliced*: their waveforms are zero-copy views into
        the base arena and every lane counts as ``lanes_spliced``.
        Slots with changed inputs re-evaluate only the cone of influence
        (:meth:`_run_batch_delta_cone`); slots no base slot could serve
        re-enter the normal full path.
        """
        compiled = self.compiled
        num_slots = plan.num_slots
        if global_slots is None:
            global_slots = np.arange(num_slots, dtype=np.int64)
        base = delta.base
        mapped = delta.base_slot >= 0
        changed_any = delta.changed_inputs.any(axis=1)
        results: List[Optional[Dict[str, Waveform]]] = [None] * num_slots

        unmapped_idx = np.nonzero(~mapped)[0]
        if unmapped_idx.size:
            sub = self._run_batch_at_capacity(
                v1, v2, plan.take(unmapped_idx), kernel_table, capacity,
                stats, variation, global_slots[unmapped_idx], delay_cache,
                capture=capture,
                capture_slots=(capture_slots[unmapped_idx]
                               if capture_slots is not None else None))
            for local, slot in enumerate(unmapped_idx):
                results[int(slot)] = sub[local]

        splice_idx = np.nonzero(mapped & ~changed_any)[0]
        if splice_idx.size:
            pack_start = _time.perf_counter()
            cols = delta.base_slot[splice_idx]
            spliced = self._splice_waveforms(base, cols)
            stats.lanes_spliced += compiled.num_gates * int(splice_idx.size)
            stats.bytes_spliced += (
                int(base.counts[:, cols].sum()) * 8
                + compiled.num_nets * int(splice_idx.size))
            if capture is not None:
                for local, slot in enumerate(splice_idx):
                    capture[int(capture_slots[int(slot)])] = base.column(
                        int(cols[local]))
            stats.pack_seconds += _time.perf_counter() - pack_start
            for local, slot in enumerate(splice_idx):
                results[int(slot)] = spliced[local]

        cone_idx = np.nonzero(mapped & changed_any)[0]
        if cone_idx.size:
            sub = self._run_batch_delta_cone(
                v1, v2, plan.take(cone_idx), kernel_table, capacity, stats,
                variation, global_slots[cone_idx], delay_cache,
                delta.take(cone_idx), capture,
                (capture_slots[cone_idx]
                 if capture_slots is not None else None))
            for local, slot in enumerate(cone_idx):
                results[int(slot)] = sub[local]
        return results  # type: ignore[return-value]

    def _run_batch_delta_cone(
        self,
        v1: np.ndarray,
        v2: np.ndarray,
        plan: SlotPlan,
        kernel_table: Optional[DelayKernelTable],
        capacity: int,
        stats: _BatchStats,
        variation: Optional["ProcessVariation"],
        global_slots: np.ndarray,
        delay_cache: Optional[Dict],
        delta: DeltaPlan,
        capture: Optional[Dict[int, tuple]],
        capture_slots: Optional[np.ndarray],
    ) -> List[Dict[str, Waveform]]:
        """Cone-of-influence re-evaluation against a seeded base arena.

        The per-slot activity mask is the *static* cone of the changed
        inputs: every lane inside the cone is dispatched (or settled and
        sparsely dispatched) exactly as the lane-tracked path would, and
        every lane outside it is spliced — its output row is seeded with
        the base toggles and its accounting goes to ``lanes_spliced``.
        ``splice=True`` keeps the per-level dispatch from narrowing the
        mask or touching the accounting of skipped lanes, so
        ``lanes_spliced + gate_evaluations`` over a cone slot is exactly
        ``gates``.  Cone *output* rows stay ``+inf`` from the pool reset
        (the unpack counts every finite entry, so a re-evaluated row
        must start empty); a dense-dispatched group rewriting a seeded
        non-cone row writes bit-identical values — its inputs, delays
        and factors match the base run by eligibility construction.
        """
        compiled = self.compiled
        num_slots = plan.num_slots
        inertial = self.config.pulse_filtering == "inertial"
        base = delta.base
        base_cols = delta.base_slot

        counts = base.counts[:, base_cols]                 # (N, S)
        if counts.size and int(counts.max()) > capacity:
            raise WaveformOverflowError(
                f"base waveforms exceed capacity {capacity}")

        plans = self._plans
        if plans is None:
            plans = self._plans = compiled.plans()
        rows, inverse = np.unique(delta.changed_inputs, axis=0,
                                  return_inverse=True)
        activity = plans.input_cones(compiled, rows)[:, inverse]

        times_all, initial_all = self._arena_pool.acquire(
            compiled.num_nets + 1, num_slots, capacity)

        pack_start = _time.perf_counter()
        initial_all[: compiled.num_nets] = base.initial[:, base_cols]
        splice_mask = ~activity[: compiled.num_nets] & (counts > 0)
        nets, slots = np.nonzero(splice_mask)
        if nets.size:
            cnt = counts[nets, slots]
            ends = np.cumsum(cnt)
            total = int(ends[-1])
            span = np.arange(total, dtype=np.int64) - np.repeat(
                ends - cnt, cnt)
            src = np.repeat(base.starts[nets, base_cols[slots]], cnt) + span
            dst = np.repeat((nets * num_slots + slots) * capacity, cnt) + span
            times_all.reshape(-1)[dst] = base.times[src]
            stats.bytes_spliced += total * 8
        stats.pack_seconds += _time.perf_counter() - pack_start

        # Variant stimuli overwrite the input rows — value-identical for
        # unchanged inputs, by construction of the changed mask.
        pattern_of_slot = plan.pattern_indices
        first = v1[pattern_of_slot]
        toggles = (v1 != v2)[pattern_of_slot]
        initial_all[compiled.input_net_ids] = first.T
        times_all[compiled.input_net_ids, :, 0] = np.where(
            toggles.T, LAUNCH_TIME, INF)

        distinct_v, slot_to_v = np.unique(plan.voltages, return_inverse=True)
        slot_to_v = np.ascontiguousarray(slot_to_v, dtype=np.int64)
        factors = None
        if variation is not None:
            factors = variation.factors(compiled.num_gates, global_slots)

        fused = self._fused and (kernel_table is None
                                 or isinstance(kernel_table, DelayKernelTable))
        if fused:
            nv = None
            nc_levels = None
            if kernel_table is not None:
                nv = plans.normalized_voltages(kernel_table.space, distinct_v)
                nc_levels = plans.normalized_loads(kernel_table.space)
            for level_index, level_plan in enumerate(plans.levels):
                self._run_level(
                    level_plan, times_all, initial_all, slot_to_v,
                    kernel_table, nv,
                    nc_levels[level_index]
                    if nc_levels is not None else None,
                    capacity, inertial, stats, factors=factors,
                    delay_cache=delay_cache, activity=activity,
                    splice=True)
        else:
            for level_index, level_gates in enumerate(compiled.levels):
                if self.group_by_arity:
                    for group_index, (arity, gate_indices) in enumerate(
                            compiled.level_groups[level_index]):
                        self._run_group(
                            gate_indices, arity,
                            compiled.gate_inputs[gate_indices, :arity],
                            compiled.gate_output[gate_indices],
                            compiled.truth_tables_i64[gate_indices],
                            times_all, initial_all,
                            distinct_v, slot_to_v, kernel_table, capacity,
                            inertial, stats, factors=factors,
                            delay_cache=delay_cache,
                            cache_key=(level_index, group_index),
                            activity=activity, splice=True)
                else:
                    self._run_group(
                        level_gates, compiled.max_pins,
                        compiled.level_inputs[level_index],
                        compiled.level_outputs[level_index],
                        compiled.level_tables[level_index],
                        times_all, initial_all,
                        distinct_v, slot_to_v, kernel_table, capacity,
                        inertial, stats, factors=factors,
                        delay_cache=delay_cache, cache_key=(level_index,),
                        activity=activity, splice=True)

        pack_start = _time.perf_counter()
        if capture is not None:
            self._capture_batch(times_all, initial_all, num_slots, capture,
                                capture_slots)
        waveforms = self._unpack_waveforms(times_all, initial_all, num_slots)
        stats.pack_seconds += _time.perf_counter() - pack_start
        return waveforms

    def _splice_waveforms(self, base: BaseArena, cols: np.ndarray
                          ) -> List[Dict[str, Waveform]]:
        """Wanted-net waveform dicts for fully matching slots — zero-copy
        slices of the base arena's flat toggle-time payload."""
        compiled = self.compiled
        if self.config.record_all_nets:
            wanted = list(compiled.net_index)
        else:
            wanted = list(compiled.circuit.outputs)
        cached = base.waveforms
        if cached is not None and cached:
            # Fast path: the base run's own unpacked dicts, shared by
            # reference (waveforms are immutable once returned).  Only
            # valid when this run wants the same net set the base
            # recorded — otherwise fall through to payload slicing.
            sample = cached[0]
            if (len(sample) == len(wanted)
                    and all(net in sample for net in wanted)):
                return [cached[int(col)] for col in cols]
        if self.config.record_all_nets:
            counts = base.counts[:, cols]
            starts = base.starts[:, cols]
            initials = base.initial[:, cols]
        else:
            net_ids = np.asarray([compiled.net_index[n] for n in wanted],
                                 dtype=np.int64)
            counts = base.counts[net_ids][:, cols]
            starts = base.starts[net_ids][:, cols]
            initials = base.initial[net_ids][:, cols]
        times = base.times
        num_slots = int(cols.size)
        trusted = Waveform.trusted
        result: List[Dict[str, Waveform]] = [dict() for _ in range(num_slots)]
        for row, net in enumerate(wanted):
            row_counts = counts[row].tolist()
            row_starts = starts[row].tolist()
            row_initials = initials[row].tolist()
            for slot in range(num_slots):
                start = row_starts[slot]
                result[slot][net] = trusted(
                    row_initials[slot], times[start:start + row_counts[slot]])
        return result

    def _capture_batch(
        self,
        times_all: np.ndarray,
        initial_all: np.ndarray,
        num_slots: int,
        capture: Dict[int, tuple],
        capture_slots: np.ndarray,
    ) -> None:
        """Record the batch's full per-slot waveform state (every real
        net) as capture records keyed by plane-level slot index.

        Overflow retries and backend demotions simply overwrite a slot's
        record, so whatever attempt succeeded last defines the arena.
        The flat extraction is one vectorized pass; the initial values
        are copied out of the pooled arena (which the next batch resets
        in place), while the toggle chunks reference the fresh flat
        array.
        """
        num_nets = self.compiled.num_nets
        sub = times_all[:num_nets]
        finite = np.isfinite(sub)
        counts = finite.sum(axis=2)                        # (N, S)
        flat = sub.transpose(1, 0, 2)[finite.transpose(1, 0, 2)]
        slot_sizes = counts.sum(axis=0)
        ends = np.cumsum(slot_sizes)
        for local in range(num_slots):
            end = int(ends[local])
            capture[int(capture_slots[local])] = (
                initial_all[:num_nets, local].copy(),
                counts[:, local],
                flat[end - int(slot_sizes[local]):end])

    def _settle_values(self, first: np.ndarray
                       ) -> tuple:
        """Settled logic values for toggle-free slots.

        One truth-table sweep per level over the ``(gates, quiet_slots)``
        plane — no waveform arena, no kernel dispatch.  Matches what
        dense evaluation produces for these slots bit for bit: with zero
        input toggles every merge degenerates to the same table lookup.

        Slots repeating the same input vector settle identically, so the
        sweep runs once per *unique* vector; returns the per-unique-
        vector ``(num_nets + 1, U)`` value plane and the slot → unique
        inverse mapping.
        """
        compiled = self.compiled
        first, inverse = np.unique(first, axis=0, return_inverse=True)
        quiet = first.shape[0]
        initial = np.zeros((compiled.num_nets + 1, quiet), dtype=np.uint8)
        initial[compiled.input_net_ids] = first.T
        for level_index in range(len(compiled.levels)):
            in_ids = compiled.level_inputs[level_index]
            tables = compiled.level_tables[level_index]
            out_ids = compiled.level_outputs[level_index]
            index = np.zeros((in_ids.shape[0], quiet), dtype=np.int64)
            for pin in range(in_ids.shape[1]):
                index |= initial[in_ids[:, pin]].astype(np.int64) << pin
            initial[out_ids] = ((tables[:, None] >> index) & 1).astype(
                np.uint8)
        return initial, inverse

    def _settle_waveforms(self, initial: np.ndarray, inverse: np.ndarray
                          ) -> List[Dict[str, Waveform]]:
        """Toggle-free waveform dicts from a settled value plane; slots
        repeating a unique vector share the (immutable) waveforms."""
        compiled = self.compiled
        quiet = initial.shape[1]
        if self.config.record_all_nets:
            wanted = list(compiled.net_index)
            values = initial[: compiled.num_nets]
        else:
            wanted = list(compiled.circuit.outputs)
            net_ids = np.asarray([compiled.net_index[n] for n in wanted],
                                 dtype=np.int64)
            values = initial[net_ids]
        no_toggles = np.empty(0, dtype=np.float64)
        trusted = Waveform.trusted
        settled: List[Dict[str, Waveform]] = [dict() for _ in range(quiet)]
        for row, net in enumerate(wanted):
            row_values = values[row].tolist()
            for slot in range(quiet):
                settled[slot][net] = trusted(row_values[slot], no_toggles)
        return [settled[u].copy() for u in inverse.tolist()]

    def _settle_logic(self, first: np.ndarray) -> List[Dict[str, Waveform]]:
        """Pure logic settle for toggle-free slots (values + waveforms)."""
        values, inverse = self._settle_values(first)
        return self._settle_waveforms(values, inverse)

    def _unpack_waveforms(
        self,
        times_all: np.ndarray,
        initial_all: np.ndarray,
        num_slots: int,
    ) -> List[Dict[str, Waveform]]:
        """Waveform analysis (Fig. 2 step 4): unpack the requested nets.

        One vectorized pass extracts every finite toggle of every wanted
        net at once; slots then receive zero-copy slices of the flat
        array instead of a per-(net, slot) ``isfinite`` + ``copy`` pair.
        """
        compiled = self.compiled
        if self.config.record_all_nets:
            # Net ids are assigned in net_index insertion order, so the
            # arena rows are already the wanted nets in order: no gather.
            wanted = list(compiled.net_index)
            sub_times = times_all[: compiled.num_nets]
            initials = initial_all[: compiled.num_nets]
        else:
            wanted = list(compiled.circuit.outputs)
            net_ids = np.asarray([compiled.net_index[n] for n in wanted],
                                 dtype=np.int64)
            sub_times = times_all[net_ids]
            initials = initial_all[net_ids]

        finite = np.isfinite(sub_times)
        counts = finite.sum(axis=2)                        # (W, S)
        flat = sub_times[finite]                           # valid toggles only
        result: List[Dict[str, Waveform]] = [dict() for _ in range(num_slots)]
        position = 0
        trusted = Waveform.trusted
        for row, net in enumerate(wanted):
            row_counts = counts[row].tolist()
            row_initials = initials[row].tolist()
            for slot in range(num_slots):
                end = position + row_counts[slot]
                result[slot][net] = trusted(row_initials[slot],
                                            flat[position:end])
                position = end
        return result

    def _group_delays(
        self,
        gate_indices: np.ndarray,
        arity: int,
        distinct_v: np.ndarray,
        kernel_table: Optional[DelayKernelTable],
        delay_cache: Optional[Dict],
        cache_key: tuple,
    ) -> np.ndarray:
        """Per-gate ``(g, arity, 2, V)`` delays per distinct voltage.

        Parametric results are memoized per (group, voltage set): they
        depend only on the gates and the distinct voltages, never on the
        waveform capacity, so overflow retries reuse them.
        """
        compiled = self.compiled
        if kernel_table is None:
            return compiled.nominal_delays[gate_indices, :arity][..., None]
        key = cache_key + (distinct_v.tobytes(),)
        if delay_cache is not None and key in delay_cache:
            return delay_cache[key]
        per_voltage = self.backend.delays_for_gates(
            kernel_table,
            compiled.gate_type_ids[gate_indices],
            compiled.gate_loads[gate_indices],
            compiled.nominal_delays[gate_indices],
            distinct_v,
        )[:, :arity]                                       # (g, k, 2, V)
        if delay_cache is not None:
            delay_cache[key] = per_voltage
        return per_voltage

    @staticmethod
    def _settle_group_outputs(
        in_ids: np.ndarray,
        out_ids: np.ndarray,
        tables: np.ndarray,
        arity: int,
        initial_all: np.ndarray,
        num_slots: int,
    ) -> None:
        """Write every lane's settled output value into ``initial_all``
        via one vectorized truth-table lookup over the group plane."""
        index = np.zeros((in_ids.shape[0], num_slots), dtype=np.int64)
        for pin in range(arity):
            index |= initial_all[in_ids[:, pin]].astype(np.int64) << pin
        initial_all[out_ids] = ((tables[:, None] >> index) & 1).astype(
            np.uint8)

    def _run_group(
        self,
        gate_indices: np.ndarray,
        arity: int,
        in_ids: np.ndarray,
        out_ids: np.ndarray,
        tables: np.ndarray,
        times_all: np.ndarray,
        initial_all: np.ndarray,
        distinct_v: np.ndarray,
        slot_to_v: np.ndarray,
        kernel_table: Optional[DelayKernelTable],
        capacity: int,
        inertial: bool,
        stats: _BatchStats,
        factors: Optional[np.ndarray] = None,
        delay_cache: Optional[Dict] = None,
        cache_key: tuple = (),
        activity: Optional[np.ndarray] = None,
        splice: bool = False,
    ) -> None:
        """Evaluate one SIMD thread group across all slots.

        ``in_ids``/``out_ids``/``tables`` are the group's ``(g, k)``
        input net ids, ``(g,)`` output net ids and ``(g,)`` int64 truth
        tables — the whole level with don't-care-padded tables and a
        constant dummy net on spare pins, or a same-arity subset
        (ablation mode).  The compute backend does the actual work
        against the waveform arena.

        With ``activity`` (the per-(net, slot) toggle mask), quiet lanes
        never count as evaluated and their (pooled, +inf-reset) arena
        row stays empty.  How they settle depends on the group's active
        share: mostly-quiet groups take the lane-compacted backend path
        (quiet outputs via a vectorized truth-table lookup, only active
        lanes dispatched); mostly-active groups dispatch dense, because
        the kernel settles a toggle-free lane in about one iteration —
        cheaper than the compaction bookkeeping.  The lane *accounting*
        is decoupled from the dispatch choice, so the
        ``gate_evaluations`` / ``lanes_skipped`` split is invariant
        across backends and slot-plane chunkings either way.

        With ``splice=True`` (delta cone evaluation) ``activity`` is the
        *static* cone-of-influence mask: lanes outside it are spliced
        from the base arena rather than skipped, so their count goes to
        ``lanes_spliced``, and the mask is never mutated — the all-quiet
        write is a no-op by cone construction (``cone[out] =
        any(cone[in])``), while the end-of-group ``isfinite`` narrowing
        would wrongly re-activate non-cone outputs whose seeded base
        rows carry toggles.
        """
        if gate_indices.size == 0:
            return
        num_slots = slot_to_v.size
        total_lanes = in_ids.shape[0] * num_slots

        # Online delay calculation (Sec. IV-A): adapt the nominal delays
        # to each distinct operating point (static mode: V = 1).
        delay_start = _time.perf_counter()
        per_voltage = self._group_delays(gate_indices, arity, distinct_v,
                                         kernel_table, delay_cache, cache_key)
        stats.delay_seconds += _time.perf_counter() - delay_start
        group_factors = factors[gate_indices] if factors is not None else None

        lane_gates = lane_slots = None
        active_lanes = total_lanes
        if activity is not None:
            lane_active = activity[in_ids].any(axis=1)           # (g, S)
            active_lanes = int(np.count_nonzero(lane_active))
            if splice:
                stats.lanes_spliced += total_lanes - active_lanes
            else:
                stats.lanes_skipped += total_lanes - active_lanes
            if active_lanes == 0:
                # Whole group is quiet: settle, outputs stay toggle-free.
                self._settle_group_outputs(in_ids, out_ids, tables, arity,
                                           initial_all, num_slots)
                if not splice:
                    activity[out_ids] = False
                return
            if active_lanes < total_lanes * SPARSE_DISPATCH_FRACTION:
                # Settle every lane's output from the input initial
                # values — the same table lookup the kernel performs
                # before its event loop, so dispatched lanes just
                # rewrite the same byte.
                self._settle_group_outputs(in_ids, out_ids, tables, arity,
                                           initial_all, num_slots)
                lane_gates, lane_slots = np.nonzero(lane_active)

        faults.trip("backend.merge_group")
        merge_start = _time.perf_counter()
        if lane_gates is not None:
            result = self.backend.merge_group_sparse(
                times_all, initial_all, in_ids, out_ids, per_voltage,
                slot_to_v, group_factors, tables, capacity, inertial,
                lane_gates, lane_slots,
            )
        else:
            result = self.backend.merge_group(
                times_all, initial_all, in_ids, out_ids, per_voltage,
                slot_to_v, group_factors, tables, capacity, inertial,
            )
        stats.merge_seconds += _time.perf_counter() - merge_start
        stats.gate_evaluations += active_lanes
        stats.kernel_calls += 1
        stats.kernel_iterations += result.iterations
        if result.overflow_lanes:
            raise WaveformOverflowError(
                f"{result.overflow_lanes} lanes exceeded capacity {capacity}"
            )
        if activity is not None and not splice:
            # A net is active downstream iff the lane kept >= 1 toggle
            # (all-cancelled lanes settle back to a quiet output).
            activity[out_ids] = np.isfinite(times_all[out_ids, :, 0])

    def _run_levels(
        self,
        plans,
        times_all: np.ndarray,
        initial_all: np.ndarray,
        slot_to_v: np.ndarray,
        kernel_table: Optional[DelayKernelTable],
        nv: Optional[np.ndarray],
        capacity: int,
        inertial: bool,
        stats: _BatchStats,
        factors: Optional[np.ndarray] = None,
        delay_cache: Optional[Dict] = None,
    ) -> None:
        """Whole-batch fused dispatch: every level in one backend call.

        Dense counterpart of the per-level :meth:`_run_level` loop, used
        when no activity tracking is in effect (every lane of every
        level runs).  Accounting — gate evaluations, kernel calls,
        kernel iterations, overflow behaviour — matches the per-level
        loop exactly; see :meth:`ComputeBackend.run_levels`.
        """
        faults.trip("backend.run_levels")
        merge_start = _time.perf_counter()
        result = self.backend.run_levels(
            plans, times_all, initial_all, slot_to_v, factors, capacity,
            inertial, kernel_table=kernel_table, nv=nv,
            delay_cache=delay_cache,
        )
        wall = _time.perf_counter() - merge_start
        stats.delay_seconds += result.delay_seconds
        stats.merge_seconds += wall - result.delay_seconds
        stats.gate_evaluations += result.lanes
        stats.kernel_calls += result.kernel_calls
        stats.kernel_iterations += result.iterations
        if result.overflow_lanes:
            raise WaveformOverflowError(
                f"{result.overflow_lanes} lanes exceeded capacity {capacity}"
            )

    def _run_level(
        self,
        plan,
        times_all: np.ndarray,
        initial_all: np.ndarray,
        slot_to_v: np.ndarray,
        kernel_table: Optional[DelayKernelTable],
        nv: Optional[np.ndarray],
        nc: Optional[np.ndarray],
        capacity: int,
        inertial: bool,
        stats: _BatchStats,
        factors: Optional[np.ndarray] = None,
        delay_cache: Optional[Dict] = None,
        activity: Optional[np.ndarray] = None,
        splice: bool = False,
    ) -> None:
        """Fused dispatch of one whole level via its precompiled plan.

        One :meth:`ComputeBackend.run_level` call covers every arity
        group of the level; the lane backends evaluate the Horner delay
        kernel inside the merge loop per (gate, voltage), so no per-lane
        delay array is materialized.  ``nv``/``nc`` are the plan-cached
        predictor normalizations (``None`` in static mode).  The
        activity classification, lane accounting and results are
        bit-identical to the unfused :meth:`_run_group` path — plan rows
        are arity-sorted, but lanes are independent and each output net
        is written by exactly one gate.
        """
        if plan.num_gates == 0:
            return
        num_slots = slot_to_v.size
        total_lanes = plan.num_gates * num_slots
        max_pins = plan.in_ids.shape[1]
        group_factors = (factors[plan.gate_indices]
                         if factors is not None else None)

        lane_gates = lane_slots = None
        active_lanes = total_lanes
        if activity is not None:
            lane_active = activity[plan.in_ids].any(axis=1)       # (g, S)
            active_lanes = int(np.count_nonzero(lane_active))
            if splice:
                stats.lanes_spliced += total_lanes - active_lanes
            else:
                stats.lanes_skipped += total_lanes - active_lanes
            if active_lanes == 0:
                self._settle_group_outputs(plan.in_ids, plan.out_ids,
                                           plan.tables, max_pins,
                                           initial_all, num_slots)
                if not splice:
                    activity[plan.out_ids] = False
                return
            if active_lanes < total_lanes * SPARSE_DISPATCH_FRACTION:
                self._settle_group_outputs(plan.in_ids, plan.out_ids,
                                           plan.tables, max_pins,
                                           initial_all, num_slots)
                lane_gates, lane_slots = np.nonzero(lane_active)

        faults.trip("backend.merge_group")
        merge_start = _time.perf_counter()
        result = self.backend.run_level(
            plan, times_all, initial_all, slot_to_v, group_factors,
            capacity, inertial, kernel_table=kernel_table, nv=nv, nc=nc,
            delay_cache=delay_cache, lane_gates=lane_gates,
            lane_slots=lane_slots,
        )
        wall = _time.perf_counter() - merge_start
        stats.delay_seconds += result.delay_seconds
        stats.merge_seconds += wall - result.delay_seconds
        stats.gate_evaluations += active_lanes
        stats.kernel_calls += 1
        stats.kernel_iterations += result.iterations
        if result.overflow_lanes:
            raise WaveformOverflowError(
                f"{result.overflow_lanes} lanes exceeded capacity {capacity}"
            )
        if activity is not None and not splice:
            activity[plan.out_ids] = np.isfinite(
                times_all[plan.out_ids, :, 0])
