"""The parallel waveform time simulator (the paper's engine, Sec. IV).

``GpuWaveSim`` is the NumPy-SIMT port of the paper's CUDA simulator.  The
three dimensions of parallelism map onto array axes:

* **gates** — the circuit is processed level by level; all gates of a
  level are structurally independent and evaluated together as one
  uniform SIMD thread group (narrow gates run with don't-care-padded
  truth tables and a constant dummy input, so control flow never
  diverges; an optional per-arity grouping mode exists for ablation),
* **stimuli × operating points** — the slot plane (Fig. 3): each kernel
  call spans ``lanes = gates_in_level × slots`` with per-lane waveform
  data and per-lane delays,
* **online delay calculation** — in parametric mode each level's
  pin-to-pin delays are computed on the fly from the polynomial kernel
  table and the slots' supply voltages (Sec. IV-A steps 1–5); delays are
  evaluated once per *distinct* voltage and broadcast to slots, because
  parallel instances of a gate share coefficients and function calls
  (Sec. IV-B).  In static mode the SDF nominal delays are used unchanged
  — the baseline [25] configuration.

Waveform memory is a dense ``(nets, slots, capacity)`` float64 array with
``+inf`` termination, like the GPU global-memory layout.  Overflowing
batches are re-run with doubled capacity (configurable); the batch is
re-sized at the grown capacity so the memory budget holds on retries.

The kernels themselves are pluggable (:mod:`repro.simulation.backend`):
the vectorized lockstep numpy port, JIT-compiled per-lane loops (numba),
or compiled C (cext).  The JIT backends consume per-gate net-id index
arrays and read/write the waveform arena in place, skipping the
``(k, lanes, capacity)`` gather copy and the output reshape of the numpy
path entirely.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

from repro.cells.library import CellLibrary
from repro.core.delay_kernel import DelayKernelTable
from repro.errors import SimulationError, WaveformOverflowError
from repro.netlist.circuit import Circuit
from repro.netlist.sdf import SdfAnnotation
from repro.simulation.backend import ComputeBackend, resolve_backend
from repro.simulation.base import (
    LAUNCH_TIME,
    PatternPair,
    SimulationConfig,
    SimulationResult,
)
from repro.simulation.compiled import CompiledCircuit, compile_circuit
from repro.simulation.grid import SlotPlan
from repro.waveform.waveform import Waveform

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulation.variation import ProcessVariation

__all__ = ["GpuWaveSim"]

INF = np.float64(np.inf)

#: Waveform-memory budget per batch (bytes); batches are sized so the
#: dense (nets × slots × capacity) array stays below this.
DEFAULT_MEMORY_BUDGET = 1024 * 1024 * 1024

#: Hard ceiling for overflow-driven capacity growth.
MAX_CAPACITY = 4096


@dataclass
class _BatchStats:
    """Per-run engine diagnostics."""

    gate_evaluations: int = 0
    kernel_calls: int = 0
    kernel_iterations: int = 0
    retries: int = 0
    batches: int = 0
    backend: str = ""


class GpuWaveSim:
    """Massively parallel waveform simulator (NumPy-SIMT).

    Parameters
    ----------
    group_by_arity:
        ``False`` (default): one kernel call per level with padded truth
        tables.  ``True``: split levels into per-arity groups (smaller
        calls, no padding overhead) — kept for the ablation benchmark.

    The compute backend executing the kernels follows
    ``config.backend`` / the ``REPRO_BACKEND`` environment variable
    (default ``auto``; see :mod:`repro.simulation.backend`).
    """

    def __init__(
        self,
        circuit: Circuit,
        library: CellLibrary,
        annotation: Optional[SdfAnnotation] = None,
        loads: Optional[Dict[str, float]] = None,
        config: Optional[SimulationConfig] = None,
        compiled: Optional[CompiledCircuit] = None,
        memory_budget: int = DEFAULT_MEMORY_BUDGET,
        group_by_arity: bool = False,
    ) -> None:
        self.config = config or SimulationConfig()
        self.compiled = compiled or compile_circuit(circuit, library, annotation, loads)
        self.memory_budget = memory_budget
        self.group_by_arity = group_by_arity
        self.backend: ComputeBackend = resolve_backend(self.config.backend)
        self.last_stats: Optional[_BatchStats] = None

    # -- public API ----------------------------------------------------------------

    def run(
        self,
        pairs: Sequence[PatternPair],
        plan: Optional[SlotPlan] = None,
        voltage: float = 0.8,
        kernel_table: Optional[DelayKernelTable] = None,
        variation: Optional["ProcessVariation"] = None,
        global_slots: Optional[np.ndarray] = None,
    ) -> SimulationResult:
        """Simulate a slot plane.

        Parameters
        ----------
        pairs:
            The stimuli referenced by the plan's pattern indices.
        plan:
            Slot plane; defaults to all pairs at the single ``voltage``.
        kernel_table:
            Compiled polynomial delay kernels.  ``None`` selects static
            (nominal SDF) delays — the baseline [25] configuration; plans
            spanning several voltages then raise, because static delays
            cannot differentiate operating points.
        variation:
            Optional :class:`~repro.simulation.variation.ProcessVariation`;
            each slot then gets its own random per-gate delay factors
            (Monte-Carlo over the slot plane).
        global_slots:
            When the plan is a chunk of a larger plane (multi-device or
            campaign execution), the full-plane slot index of each local
            slot.  Monte-Carlo die factors follow these *global* indices,
            so chunked runs stay bit-identical to a whole-plane run.
            Defaults to ``0..num_slots-1`` (the plan is the whole plane).
        """
        if not pairs:
            raise SimulationError("need at least one pattern pair")
        plan = plan or SlotPlan.uniform(len(pairs), voltage)
        if int(plan.pattern_indices.max()) >= len(pairs):
            raise SimulationError("slot plan references missing pattern index")
        if global_slots is not None:
            global_slots = np.asarray(global_slots, dtype=np.int64)
            if global_slots.shape != (plan.num_slots,):
                raise SimulationError(
                    "global_slots must provide one index per plan slot"
                )
            if global_slots.size and int(global_slots.min()) < 0:
                raise SimulationError("global_slots must be non-negative")
        if kernel_table is None and plan.distinct_voltages().size > 1:
            raise SimulationError(
                "static delay mode cannot differentiate operating points; "
                "pass a kernel_table for voltage-aware simulation"
            )

        v1 = np.stack([p.v1 for p in pairs])
        v2 = np.stack([p.v2 for p in pairs])
        if v1.shape[1] != len(self.compiled.circuit.inputs):
            raise SimulationError("pattern width does not match circuit inputs")

        stats = _BatchStats(backend=self.backend.name)
        start = _time.perf_counter()
        waveforms: List[Optional[Dict[str, Waveform]]] = [None] * plan.num_slots
        max_slots = self._max_batch_slots()
        for indices, sub_plan in plan.batches(max_slots):
            stats.batches += 1
            batch_globals = (global_slots[indices] if global_slots is not None
                             else indices)
            batch_waveforms = self._run_batch(v1, v2, sub_plan, kernel_table,
                                              stats, variation, batch_globals)
            for local, slot in enumerate(indices):
                waveforms[int(slot)] = batch_waveforms[local]
        runtime = _time.perf_counter() - start
        self.last_stats = stats
        mode = "gpu-static" if kernel_table is None else "gpu-parametric"
        return SimulationResult(
            circuit_name=self.compiled.circuit.name,
            slot_labels=plan.labels(),
            waveforms=waveforms,  # type: ignore[arg-type]
            runtime_seconds=runtime,
            gate_evaluations=stats.gate_evaluations,
            engine=f"{mode}[{self.backend.name}]",
        )

    # -- internals ---------------------------------------------------------------------

    def _max_batch_slots(self, capacity: Optional[int] = None) -> int:
        capacity = capacity or self.config.waveform_capacity
        per_slot = (self.compiled.num_nets + 1) * capacity * 8
        return max(4, int(self.memory_budget // max(per_slot, 1)))

    def _run_batch(
        self,
        v1: np.ndarray,
        v2: np.ndarray,
        plan: SlotPlan,
        kernel_table: Optional[DelayKernelTable],
        stats: _BatchStats,
        variation: Optional["ProcessVariation"] = None,
        global_slots: Optional[np.ndarray] = None,
    ) -> List[Dict[str, Waveform]]:
        capacity = self.config.waveform_capacity
        # Per-voltage delays depend only on (gates, distinct voltages) —
        # the cache survives capacity-doubling retries and budget splits,
        # so overflow recovery never re-evaluates the polynomials.
        delay_cache: Optional[Dict] = {} if kernel_table is not None else None
        while True:
            try:
                return self._run_batch_within_budget(
                    v1, v2, plan, kernel_table, capacity, stats, variation,
                    global_slots, delay_cache)
            except WaveformOverflowError:
                if not self.config.grow_on_overflow or capacity >= MAX_CAPACITY:
                    raise
                capacity *= 2
                stats.retries += 1

    def _run_batch_within_budget(
        self,
        v1: np.ndarray,
        v2: np.ndarray,
        plan: SlotPlan,
        kernel_table: Optional[DelayKernelTable],
        capacity: int,
        stats: _BatchStats,
        variation: Optional["ProcessVariation"],
        global_slots: Optional[np.ndarray],
        delay_cache: Optional[Dict],
    ) -> List[Dict[str, Waveform]]:
        """Run one batch at the given capacity, re-chunking first if the
        grown capacity would blow the memory budget (a retried batch is
        re-sized instead of exceeding ``memory_budget`` by the growth
        factor)."""
        max_slots = self._max_batch_slots(capacity)
        if plan.num_slots <= max_slots:
            return self._run_batch_at_capacity(
                v1, v2, plan, kernel_table, capacity, stats, variation,
                global_slots, delay_cache)
        if global_slots is None:
            global_slots = np.arange(plan.num_slots, dtype=np.int64)
        results: List[Optional[Dict[str, Waveform]]] = [None] * plan.num_slots
        for indices, sub_plan in plan.batches(max_slots):
            sub_waveforms = self._run_batch_at_capacity(
                v1, v2, sub_plan, kernel_table, capacity, stats, variation,
                global_slots[indices], delay_cache)
            for local, slot in enumerate(indices):
                results[int(slot)] = sub_waveforms[local]
        return results  # type: ignore[return-value]

    def _run_batch_at_capacity(
        self,
        v1: np.ndarray,
        v2: np.ndarray,
        plan: SlotPlan,
        kernel_table: Optional[DelayKernelTable],
        capacity: int,
        stats: _BatchStats,
        variation: Optional["ProcessVariation"] = None,
        global_slots: Optional[np.ndarray] = None,
        delay_cache: Optional[Dict] = None,
    ) -> List[Dict[str, Waveform]]:
        compiled = self.compiled
        num_slots = plan.num_slots
        inertial = self.config.pulse_filtering == "inertial"

        # Waveform memory: (nets + dummy, slots, capacity) toggle times.
        times_all = np.full((compiled.num_nets + 1, num_slots, capacity), INF,
                            dtype=np.float64)
        initial_all = np.zeros((compiled.num_nets + 1, num_slots), dtype=np.uint8)

        # Load stimuli (Fig. 2 step 3): per slot, its pattern pair.
        pattern_of_slot = plan.pattern_indices
        first = v1[pattern_of_slot]                        # (S, num_inputs)
        toggles = (v1 != v2)[pattern_of_slot]              # (S, num_inputs)
        initial_all[compiled.input_net_ids] = first.T
        times_all[compiled.input_net_ids, :, 0] = np.where(
            toggles.T, LAUNCH_TIME, INF
        )

        # Parallel instances share delay-function calls: evaluate each
        # distinct voltage once and broadcast to its slots.
        distinct_v, slot_to_v = np.unique(plan.voltages, return_inverse=True)
        slot_to_v = np.ascontiguousarray(slot_to_v, dtype=np.int64)

        # Monte-Carlo die samples: per-gate, per-slot delay factors.
        factors = None
        if variation is not None:
            if global_slots is None:
                global_slots = np.arange(num_slots)
            factors = variation.factors(compiled.num_gates, global_slots)

        # Level-wise processing (the vertical grid dimension).
        for level_index, level_gates in enumerate(compiled.levels):
            if self.group_by_arity:
                for group_index, (arity, gate_indices) in enumerate(
                        compiled.level_groups[level_index]):
                    self._run_group(
                        gate_indices, arity, times_all, initial_all,
                        distinct_v, slot_to_v, kernel_table, capacity,
                        inertial, stats, padded=False, factors=factors,
                        delay_cache=delay_cache,
                        cache_key=(level_index, group_index),
                    )
            else:
                self._run_group(
                    level_gates, compiled.max_pins, times_all, initial_all,
                    distinct_v, slot_to_v, kernel_table, capacity,
                    inertial, stats, padded=True, factors=factors,
                    delay_cache=delay_cache, cache_key=(level_index,),
                )

        return self._unpack_waveforms(times_all, initial_all, num_slots)

    def _unpack_waveforms(
        self,
        times_all: np.ndarray,
        initial_all: np.ndarray,
        num_slots: int,
    ) -> List[Dict[str, Waveform]]:
        """Waveform analysis (Fig. 2 step 4): unpack the requested nets.

        One vectorized pass extracts every finite toggle of every wanted
        net at once; slots then receive zero-copy slices of the flat
        array instead of a per-(net, slot) ``isfinite`` + ``copy`` pair.
        """
        compiled = self.compiled
        if self.config.record_all_nets:
            # Net ids are assigned in net_index insertion order, so the
            # arena rows are already the wanted nets in order: no gather.
            wanted = list(compiled.net_index)
            sub_times = times_all[: compiled.num_nets]
            initials = initial_all[: compiled.num_nets]
        else:
            wanted = list(compiled.circuit.outputs)
            net_ids = np.asarray([compiled.net_index[n] for n in wanted],
                                 dtype=np.int64)
            sub_times = times_all[net_ids]
            initials = initial_all[net_ids]

        finite = np.isfinite(sub_times)
        counts = finite.sum(axis=2)                        # (W, S)
        flat = sub_times[finite]                           # valid toggles only
        result: List[Dict[str, Waveform]] = [dict() for _ in range(num_slots)]
        position = 0
        trusted = Waveform.trusted
        for row, net in enumerate(wanted):
            row_counts = counts[row].tolist()
            row_initials = initials[row].tolist()
            for slot in range(num_slots):
                end = position + row_counts[slot]
                result[slot][net] = trusted(row_initials[slot],
                                            flat[position:end])
                position = end
        return result

    def _group_delays(
        self,
        gate_indices: np.ndarray,
        arity: int,
        distinct_v: np.ndarray,
        kernel_table: Optional[DelayKernelTable],
        delay_cache: Optional[Dict],
        cache_key: tuple,
    ) -> np.ndarray:
        """Per-gate ``(g, arity, 2, V)`` delays per distinct voltage.

        Parametric results are memoized per (group, voltage set): they
        depend only on the gates and the distinct voltages, never on the
        waveform capacity, so overflow retries reuse them.
        """
        compiled = self.compiled
        if kernel_table is None:
            return compiled.nominal_delays[gate_indices, :arity][..., None]
        key = cache_key + (distinct_v.tobytes(),)
        if delay_cache is not None and key in delay_cache:
            return delay_cache[key]
        per_voltage = self.backend.delays_for_gates(
            kernel_table,
            compiled.gate_type_ids[gate_indices],
            compiled.gate_loads[gate_indices],
            compiled.nominal_delays[gate_indices],
            distinct_v,
        )[:, :arity]                                       # (g, k, 2, V)
        if delay_cache is not None:
            delay_cache[key] = per_voltage
        return per_voltage

    def _run_group(
        self,
        gate_indices: np.ndarray,
        arity: int,
        times_all: np.ndarray,
        initial_all: np.ndarray,
        distinct_v: np.ndarray,
        slot_to_v: np.ndarray,
        kernel_table: Optional[DelayKernelTable],
        capacity: int,
        inertial: bool,
        stats: _BatchStats,
        padded: bool,
        factors: Optional[np.ndarray] = None,
        delay_cache: Optional[Dict] = None,
        cache_key: tuple = (),
    ) -> None:
        """Evaluate one SIMD thread group across all slots.

        ``padded=True`` runs a whole level with don't-care-padded truth
        tables and a constant dummy net on spare pins; ``padded=False``
        runs a same-arity subset natively (ablation mode).  The compute
        backend does the actual work against the waveform arena.
        """
        compiled = self.compiled
        if gate_indices.size == 0:
            return
        if padded:
            in_ids = compiled.padded_inputs[gate_indices]            # (g, P)
            tables = compiled.padded_truth_tables[gate_indices]
        else:
            in_ids = compiled.gate_inputs[gate_indices, :arity]      # (g, k)
            tables = compiled.truth_tables[gate_indices]
        out_ids = compiled.gate_output[gate_indices]

        # Online delay calculation (Sec. IV-A): adapt the nominal delays
        # to each distinct operating point (static mode: V = 1).
        per_voltage = self._group_delays(gate_indices, arity, distinct_v,
                                         kernel_table, delay_cache, cache_key)
        group_factors = factors[gate_indices] if factors is not None else None

        result = self.backend.merge_group(
            times_all, initial_all, in_ids, out_ids, per_voltage, slot_to_v,
            group_factors, tables.astype(np.int64), capacity, inertial,
        )
        stats.gate_evaluations += result.lanes
        stats.kernel_calls += 1
        stats.kernel_iterations += result.iterations
        if result.overflow_lanes:
            raise WaveformOverflowError(
                f"{result.overflow_lanes} lanes exceeded capacity {capacity}"
            )
