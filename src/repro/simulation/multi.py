"""Multi-device slot distribution (the paper's multi-GPU outlook).

The paper closes Sec. V-B noting that "the evaluation of a test stimuli
under a given operating point is viewed as an independent simulation
problem. Therefore, simulation problems could be grouped for distribution
and execution on multi-GPU systems."  This module implements exactly that
grouping: the slot plane is partitioned into contiguous chunks, each
executed by a worker process with its own engine instance ("device"),
and the per-slot results are stitched back in place.

Every worker receives the same compiled circuit and delay-kernel table
(the coefficient memory is tiny — this mirrors replicating the constant
tables into each GPU's global memory) and a disjoint slice of the slot
plan — together with only the pattern pairs that slice references, so
per-worker IPC stays proportional to the chunk, not the campaign.  No
communication happens during simulation.
"""

from __future__ import annotations

import os
import time as _time
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cells.library import CellLibrary
from repro.core.delay_kernel import DelayKernelTable
from repro.errors import SimulationError
from repro.netlist.circuit import Circuit
from repro.simulation.base import PatternPair, SimulationConfig, SimulationResult
from repro.simulation.compiled import CompiledCircuit, compile_circuit
from repro.simulation.gpu import GpuWaveSim, _BatchStats
from repro.simulation.grid import SlotPlan
from repro.waveform.waveform import Waveform

__all__ = ["MultiDeviceWaveSim"]


def _run_chunk(
    compiled: CompiledCircuit,
    config: SimulationConfig,
    kernel_table: Optional[DelayKernelTable],
    pairs: Sequence[PatternPair],
    pattern_indices: np.ndarray,
    voltages: np.ndarray,
    variation,
    global_slots: np.ndarray,
) -> Tuple[List[Dict[str, Waveform]], _BatchStats]:
    """Worker entry point: simulate one slot-plane chunk on one 'device'.

    ``global_slots`` carries each chunk slot's index in the full plane so
    Monte-Carlo die factors stay identical to a single-device run.  Goes
    through the public :meth:`GpuWaveSim.run` entry point, so pattern
    width/plan validation and memory-budget batching apply to every
    chunk; the engine's real :class:`_BatchStats` travel back with the
    waveforms.
    """
    engine = GpuWaveSim(compiled.circuit, compiled.library, config=config,
                        compiled=compiled)
    plan = SlotPlan(pattern_indices=pattern_indices, voltages=voltages)
    result = engine.run(pairs, plan=plan, kernel_table=kernel_table,
                        variation=variation, global_slots=global_slots)
    return result.waveforms, engine.last_stats


def _merge_stats(target: _BatchStats, source: Optional[_BatchStats]) -> None:
    if source is None:
        return
    target.gate_evaluations += source.gate_evaluations
    target.kernel_calls += source.kernel_calls
    target.kernel_iterations += source.kernel_iterations
    target.retries += source.retries
    target.batches += source.batches
    target.lanes_skipped += source.lanes_skipped
    target.demotions.extend(source.demotions)
    target.delay_seconds += source.delay_seconds
    target.merge_seconds += source.merge_seconds
    target.pack_seconds += source.pack_seconds
    if source.backend:
        target.backend = source.backend


def _chunk_pairs(pairs: Sequence[PatternPair],
                 pattern_indices: np.ndarray):
    """Slice the pattern pairs down to the ones a chunk references.

    Workers receive (pickle) only the pairs their sub-plan actually
    uses, with ``pattern_indices`` remapped into the sliced list — a
    chunk of a large plane no longer ships the full pattern set over
    IPC.
    """
    used, remapped = np.unique(pattern_indices, return_inverse=True)
    return ([pairs[int(i)] for i in used],
            np.ascontiguousarray(remapped, dtype=np.int64))


class MultiDeviceWaveSim:
    """Slot-plane partitioning across worker processes.

    Parameters
    ----------
    num_devices:
        Worker count; defaults to the machine's CPU count.  One device
        degenerates to an in-process :class:`GpuWaveSim` run.
    """

    def __init__(
        self,
        circuit: Circuit,
        library: CellLibrary,
        config: Optional[SimulationConfig] = None,
        compiled: Optional[CompiledCircuit] = None,
        num_devices: Optional[int] = None,
    ) -> None:
        self.config = config or SimulationConfig()
        self.compiled = compiled or compile_circuit(circuit, library)
        if num_devices is not None and num_devices < 1:
            raise SimulationError("need at least one device")
        self.num_devices = num_devices or max(1, os.cpu_count() or 1)
        self.last_stats: Optional[_BatchStats] = None

    def run(
        self,
        pairs: Sequence[PatternPair],
        plan: Optional[SlotPlan] = None,
        voltage: float = 0.8,
        kernel_table: Optional[DelayKernelTable] = None,
        variation=None,
        global_slots: Optional[np.ndarray] = None,
    ) -> SimulationResult:
        """Simulate the slot plane across all devices.

        Same contract as :meth:`GpuWaveSim.run` (including Monte-Carlo
        ``variation``; die factors follow *global* slot indices, so the
        distribution is independent of the device count); results are
        ordered by global slot index regardless of which device produced
        them.

        ``global_slots`` lets a caller that itself sliced a larger plane
        (the simulation service dispatching a coalesced batch) pin each
        local slot's full-plane index; every per-device chunk forwards
        its slice, so die factors stay bit-identical however the plane
        is partitioned.
        """
        if not pairs:
            raise SimulationError("need at least one pattern pair")
        plan = plan or SlotPlan.uniform(len(pairs), voltage)
        if global_slots is not None:
            global_slots = np.asarray(global_slots, dtype=np.int64)
            if global_slots.shape != (plan.num_slots,):
                raise SimulationError(
                    "global_slots must provide one index per plan slot"
                )
        start = _time.perf_counter()

        devices = min(self.num_devices, plan.num_slots)
        if devices == 1:
            engine = GpuWaveSim(self.compiled.circuit, self.compiled.library,
                                config=self.config, compiled=self.compiled)
            result = engine.run(pairs, plan=plan, kernel_table=kernel_table,
                                variation=variation,
                                global_slots=global_slots)
            self.last_stats = engine.last_stats
            return SimulationResult(
                circuit_name=result.circuit_name,
                slot_labels=result.slot_labels,
                waveforms=result.waveforms,
                runtime_seconds=_time.perf_counter() - start,
                gate_evaluations=result.gate_evaluations,
                engine=f"multi-device[1][{engine.backend.name}]",
            )

        chunk_size = (plan.num_slots + devices - 1) // devices
        chunks = list(plan.batches(chunk_size))
        waveforms: List[Optional[Dict[str, Waveform]]] = [None] * plan.num_slots
        totals = _BatchStats()
        with ProcessPoolExecutor(max_workers=devices) as pool:
            futures = []
            for indices, sub in chunks:
                sub_pairs, sub_indices = _chunk_pairs(pairs,
                                                      sub.pattern_indices)
                chunk_globals = (global_slots[indices]
                                 if global_slots is not None else indices)
                futures.append(pool.submit(
                    _run_chunk, self.compiled, self.config, kernel_table,
                    sub_pairs, sub_indices, sub.voltages,
                    variation, chunk_globals,
                ))
            for (indices, _sub), future in zip(chunks, futures):
                chunk_waveforms, chunk_stats = future.result()
                _merge_stats(totals, chunk_stats)
                for local, slot in enumerate(indices):
                    waveforms[int(slot)] = chunk_waveforms[local]

        self.last_stats = totals
        return SimulationResult(
            circuit_name=self.compiled.circuit.name,
            slot_labels=plan.labels(),
            waveforms=waveforms,  # type: ignore[arg-type]
            runtime_seconds=_time.perf_counter() - start,
            gate_evaluations=totals.gate_evaluations,
            engine=f"multi-device[{devices}][{totals.backend}]",
        )
