"""Vectorized simulation kernels — the SIMT core of the GPU engine.

:func:`waveform_merge_kernel` is the direct NumPy port of the CUDA
waveform-processing kernel of the paper (following Holst et al. [25] with
the online delay calculation of Sec. IV-A).  One call processes a whole
*thread group*: ``L`` lanes (= gates of one level × all slots), each lane
lock-step executing the same control flow with per-lane data, divergence
handled by masking — exactly how a SIMD thread group runs on the GPU.

Per lane the kernel

1. merges the input waveforms in time order (pointer per input),
2. evaluates the gate function via its truth table,
3. selects the pin-to-pin delay of the causing pin and output polarity
   (already adapted to the lane's operating point by the delay kernel),
4. appends the output toggle with cancellation / inertial filtering,
5. flags capacity overflow instead of dropping toggles silently.

Lanes whose input events are exhausted can never change their output
again; when enough lanes retire, the kernel *compacts* the live set so
the remaining work runs dense.  (On a real GPU the scheduler retires
finished warps the same way.)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["waveform_merge_kernel", "merge_single", "MergeResult"]

INF = np.float64(np.inf)

#: Compact the live-lane set when fewer than this fraction remain active.
_COMPACT_THRESHOLD = 0.5

#: Never bother compacting below this lane count.
_COMPACT_MIN_LANES = 128


@dataclass
class MergeResult:
    """Output of one kernel call (all arrays per lane)."""

    initial: np.ndarray      # (L,) uint8 settled output value before launch
    times: np.ndarray        # (L, capacity) toggle times, +inf padded
    counts: np.ndarray       # (L,) number of valid toggles
    overflow: np.ndarray     # (L,) bool
    iterations: int          # kernel main-loop trip count (diagnostics)


def merge_single(input_waveforms, delays, truth_table: int,
                 inertial: bool = True):
    """Scalar reference of the merge kernel: one gate, one slot.

    Exactly the per-lane algorithm of :func:`waveform_merge_kernel`
    (documented there), operating on :class:`~repro.waveform.waveform.
    Waveform` objects.  Used by incremental re-simulation (fault
    grading restricted to a fanout cone) and as an independent oracle in
    tests.

    Parameters
    ----------
    input_waveforms:
        One waveform per input pin.
    delays:
        ``(pins, 2)`` pin-to-pin delays in seconds (rise, fall).
    truth_table:
        Integer table, pin ``i`` = bit ``i`` of the index.
    """
    from repro.waveform.waveform import Waveform

    k = len(input_waveforms)
    pointers = [0] * k
    values = [w.initial for w in input_waveforms]

    def evaluate() -> int:
        index = 0
        for pin in range(k):
            index |= values[pin] << pin
        return (truth_table >> index) & 1

    last_target = evaluate()
    initial = last_target
    out: list = []
    while True:
        current = [
            input_waveforms[pin].times[pointers[pin]]
            if pointers[pin] < input_waveforms[pin].num_transitions else INF
            for pin in range(k)
        ]
        now = min(current)
        if now == INF:
            break
        causing = None
        for pin in range(k):
            if current[pin] == now:
                values[pin] ^= 1
                pointers[pin] += 1
                if causing is None:
                    causing = pin
        new_value = evaluate()
        if new_value == last_target:
            continue
        delay = delays[causing][1 - new_value]  # RISE=0, FALL=1
        t_out = now + delay
        width = delay if inertial else 0.0
        if out and (t_out <= out[-1] or t_out - out[-1] < width):
            out.pop()
        else:
            out.append(float(t_out))
        last_target ^= 1
    return Waveform(initial=initial, times=np.asarray(out, dtype=np.float64))


def waveform_merge_kernel(
    input_times: np.ndarray,
    input_initial: np.ndarray,
    delays: np.ndarray,
    truth_tables: np.ndarray,
    out_capacity: int,
    inertial: bool = True,
) -> MergeResult:
    """Evaluate one gate per lane from its input waveforms.

    Parameters
    ----------
    input_times:
        ``(k, L, C)`` toggle times of the ``k`` input pins, +inf padded.
    input_initial:
        ``(k, L)`` uint8 initial input values.
    delays:
        ``(k, 2, L)`` pin-to-pin delays (seconds), polarity index 0=rise
        1=fall, already adapted to each lane's operating point.
    truth_tables:
        ``(L,)`` integer truth tables (input pin ``i`` = bit ``i`` of the
        index).
    out_capacity:
        Toggle capacity of the output waveform memory.
    inertial:
        Apply inertial pulse filtering (width = the suppressing
        transition's own propagation delay) in addition to causal
        cancellation.
    """
    k, num_lanes, capacity_in = input_times.shape
    if input_initial.shape != (k, num_lanes):
        raise ValueError("input_initial shape mismatch")
    if delays.shape != (k, 2, num_lanes):
        raise ValueError("delays shape mismatch")

    tables = np.asarray(truth_tables, dtype=np.int64)
    vals = input_initial.astype(np.int64)                  # (k, L)
    pointers = np.zeros((k, num_lanes), dtype=np.int64)    # next event per pin

    # Settled output value before the first event.
    index = np.zeros(num_lanes, dtype=np.int64)
    for pin in range(k):
        index |= vals[pin] << pin
    last_target = (tables >> index) & 1
    initial = last_target.astype(np.uint8)

    # Full-size result state, addressed through global lane ids.
    out_times = np.full((num_lanes, out_capacity), INF, dtype=np.float64)
    depth = np.zeros(num_lanes, dtype=np.int64)
    overflow = np.zeros(num_lanes, dtype=bool)

    # Live working set (compacted as lanes retire).
    lane_ids = np.arange(num_lanes)
    live_times = input_times
    live_delays = delays
    live_tables = tables

    iterations = 0
    while lane_ids.size:
        live = lane_ids.size
        rows = np.arange(live)
        current = np.empty((k, live), dtype=np.float64)
        for pin in range(k):
            safe = np.minimum(pointers[pin], capacity_in - 1)
            current[pin] = live_times[pin, rows, safe]
            current[pin][pointers[pin] >= capacity_in] = INF
        now = current.min(axis=0)
        active = np.isfinite(now)
        n_active = int(active.sum())
        if n_active == 0:
            break
        iterations += 1

        if n_active < _COMPACT_THRESHOLD * live and live > _COMPACT_MIN_LANES:
            keep = np.where(active)[0]
            lane_ids = lane_ids[keep]
            live_times = live_times[:, keep]
            live_delays = live_delays[:, :, keep]
            live_tables = live_tables[keep]
            vals = vals[:, keep]
            pointers = pointers[:, keep]
            last_target = last_target[keep]
            current = current[:, keep]
            now = now[keep]
            live = keep.size
            active = np.ones(live, dtype=bool)

        toggled = (current == now[None, :]) & active[None, :]   # (k, live)
        toggled_int = toggled.astype(np.int64)
        vals ^= toggled_int
        pointers += toggled_int
        causing = np.argmax(toggled, axis=0)               # lowest toggling pin

        index = np.zeros(live, dtype=np.int64)
        for pin in range(k):
            index |= vals[pin] << pin
        new_val = (live_tables >> index) & 1
        changed = (new_val != last_target) & active

        polarity = 1 - new_val                             # RISE=0, FALL=1
        rows = np.arange(live)
        delay = live_delays[causing, polarity, rows]
        t_out = now + delay
        width = delay if inertial else 0.0

        gids = lane_ids
        top = np.where(depth[gids] > 0,
                       out_times[gids, np.maximum(depth[gids] - 1, 0)], -INF)
        cancel = changed & (depth[gids] > 0) & (
            (t_out <= top) | (t_out - top < width)
        )
        append = changed & ~cancel

        # Pop the cancelled toggles.
        pop = gids[cancel]
        depth[pop] -= 1
        out_times[pop, depth[pop]] = INF

        # Append, flagging lanes that exceed the waveform memory.
        full = append & (depth[gids] >= out_capacity)
        overflow[gids[full]] = True
        ok = append & ~full
        ok_gids = gids[ok]
        out_times[ok_gids, depth[ok_gids]] = t_out[ok]
        depth[ok_gids] += 1

        last_target ^= changed.astype(np.int64)

    return MergeResult(
        initial=initial,
        times=out_times,
        counts=depth,
        overflow=overflow,
        iterations=iterations,
    )
