"""Numba JIT implementations of the hot kernels (``backend='numba'``).

Each lane (= one gate in one slot) runs its own scalar event loop to
exhaustion inside an ``@njit(parallel=True)`` ``prange`` — the per-gate
scalar-kernel shape that GATSPI shows wins for gate-level throughput on
SIMT hardware.  This removes two costs of the lockstep numpy kernel:

* no global time step — a single long-waveform lane no longer keeps
  every other live lane iterating,
* no live-set compaction machinery — finished lanes simply return.

The per-lane algorithm and its IEEE-754 operation order are *identical*
to :func:`repro.simulation.kernels.waveform_merge_kernel` (and the
``merge_single`` oracle), so results are bit-identical across backends.

Importing this module requires numba; :mod:`repro.simulation.backend`
gates on the ImportError and falls back.
"""

from __future__ import annotations

import numpy as np
from numba import njit, prange

from repro.core.delay_kernel import MIN_DELAY

__all__ = ["merge_lanes", "merge_group", "merge_group_sparse",
           "delays_for_gates", "run_level"]

INF = np.float64(np.inf)


@njit(parallel=True, cache=True)
def _merge_lanes_jit(input_times, input_initial, delays, tables,
                     out_capacity, inertial):
    k, num_lanes, capacity_in = input_times.shape
    initial = np.empty(num_lanes, dtype=np.uint8)
    out_times = np.full((num_lanes, out_capacity), INF, dtype=np.float64)
    counts = np.zeros(num_lanes, dtype=np.int64)
    overflow = np.zeros(num_lanes, dtype=np.uint8)
    iterations = 0
    for lane in prange(num_lanes):
        pointers = np.zeros(k, dtype=np.int64)
        vals = np.empty(k, dtype=np.int64)
        table = tables[lane]
        index = np.int64(0)
        for pin in range(k):
            vals[pin] = input_initial[pin, lane]
            index |= vals[pin] << pin
        last_target = (table >> index) & 1
        initial[lane] = np.uint8(last_target)
        depth = 0
        lane_iterations = 0
        while True:
            now = INF
            for pin in range(k):
                if pointers[pin] < capacity_in:
                    t = input_times[pin, lane, pointers[pin]]
                    if t < now:
                        now = t
            if now == INF:
                break
            lane_iterations += 1
            causing = -1
            for pin in range(k):
                if pointers[pin] < capacity_in and \
                        input_times[pin, lane, pointers[pin]] == now:
                    vals[pin] ^= 1
                    pointers[pin] += 1
                    if causing < 0:
                        causing = pin
            index = np.int64(0)
            for pin in range(k):
                index |= vals[pin] << pin
            new_val = (table >> index) & 1
            if new_val == last_target:
                continue
            delay = delays[causing, 1 - new_val, lane]
            t_out = now + delay
            width = delay if inertial else 0.0
            if depth > 0 and (t_out <= out_times[lane, depth - 1]
                              or t_out - out_times[lane, depth - 1] < width):
                depth -= 1
                out_times[lane, depth] = INF
            elif depth >= out_capacity:
                overflow[lane] = 1
            else:
                out_times[lane, depth] = t_out
                depth += 1
            last_target ^= 1
        counts[lane] = depth
        iterations += lane_iterations
    return initial, out_times, counts, overflow, iterations


def merge_lanes(input_times, input_initial, delays, tables, out_capacity,
                inertial):
    """Lane-oriented merge (see ``waveform_merge_kernel`` for the contract)."""
    initial, times, counts, overflow, iterations = _merge_lanes_jit(
        np.ascontiguousarray(input_times, dtype=np.float64),
        np.ascontiguousarray(input_initial, dtype=np.uint8),
        np.ascontiguousarray(delays, dtype=np.float64),
        np.ascontiguousarray(tables, dtype=np.int64),
        out_capacity,
        bool(inertial),
    )
    return initial, times, counts, overflow.astype(bool), iterations


@njit(parallel=True, cache=True)
def _merge_group_jit(times_all, initial_all, in_ids, out_ids, per_voltage,
                     slot_to_v, factors, has_factors, tables, capacity,
                     inertial):
    group_size, arity = in_ids.shape
    num_slots = slot_to_v.size
    lanes = group_size * num_slots
    overflow_lanes = 0
    iterations = 0
    for lane in prange(lanes):
        gate = lane // num_slots
        slot = lane % num_slots
        v = slot_to_v[slot]
        factor = factors[gate, slot] if has_factors else 1.0
        pointers = np.zeros(arity, dtype=np.int64)
        vals = np.empty(arity, dtype=np.int64)
        table = tables[gate]
        index = np.int64(0)
        for pin in range(arity):
            vals[pin] = initial_all[in_ids[gate, pin], slot]
            index |= vals[pin] << pin
        last_target = (table >> index) & 1
        out_net = out_ids[gate]
        initial_all[out_net, slot] = np.uint8(last_target)
        depth = 0
        lane_iterations = 0
        lane_overflow = 0
        while True:
            now = INF
            for pin in range(arity):
                if pointers[pin] < capacity:
                    t = times_all[in_ids[gate, pin], slot, pointers[pin]]
                    if t < now:
                        now = t
            if now == INF:
                break
            lane_iterations += 1
            causing = -1
            for pin in range(arity):
                if pointers[pin] < capacity and \
                        times_all[in_ids[gate, pin], slot, pointers[pin]] == now:
                    vals[pin] ^= 1
                    pointers[pin] += 1
                    if causing < 0:
                        causing = pin
            index = np.int64(0)
            for pin in range(arity):
                index |= vals[pin] << pin
            new_val = (table >> index) & 1
            if new_val == last_target:
                continue
            delay = per_voltage[gate, causing, 1 - new_val, v]
            if has_factors:
                delay = delay * factor
            t_out = now + delay
            width = delay if inertial else 0.0
            if depth > 0 and (t_out <= times_all[out_net, slot, depth - 1]
                              or t_out - times_all[out_net, slot, depth - 1]
                              < width):
                depth -= 1
                times_all[out_net, slot, depth] = INF
            elif depth >= capacity:
                lane_overflow = 1
            else:
                times_all[out_net, slot, depth] = t_out
                depth += 1
            last_target ^= 1
        overflow_lanes += lane_overflow
        iterations += lane_iterations
    return overflow_lanes, iterations


def merge_group(times_all, initial_all, in_ids, out_ids, per_voltage,
                slot_to_v, factors, tables, capacity, inertial):
    """Arena-level merge: read inputs from and write outputs into the
    ``(nets, slots, capacity)`` waveform arena in place."""
    has_factors = factors is not None
    if factors is None:
        factors = np.zeros((1, 1), dtype=np.float64)
    return _merge_group_jit(
        times_all, initial_all,
        np.ascontiguousarray(in_ids, dtype=np.int64),
        np.ascontiguousarray(out_ids, dtype=np.int64),
        np.ascontiguousarray(per_voltage, dtype=np.float64),
        np.ascontiguousarray(slot_to_v, dtype=np.int64),
        np.ascontiguousarray(factors, dtype=np.float64),
        has_factors,
        np.ascontiguousarray(tables, dtype=np.int64),
        capacity,
        bool(inertial),
    )


@njit(parallel=True, cache=True)
def _merge_group_sparse_jit(times_all, initial_all, in_ids, out_ids,
                            per_voltage, slot_to_v, factors, has_factors,
                            tables, capacity, inertial, lane_gates,
                            lane_slots):
    arity = in_ids.shape[1]
    lanes = lane_gates.size
    overflow_lanes = 0
    iterations = 0
    for lane in prange(lanes):
        gate = lane_gates[lane]
        slot = lane_slots[lane]
        v = slot_to_v[slot]
        factor = factors[gate, slot] if has_factors else 1.0
        pointers = np.zeros(arity, dtype=np.int64)
        vals = np.empty(arity, dtype=np.int64)
        table = tables[gate]
        index = np.int64(0)
        for pin in range(arity):
            vals[pin] = initial_all[in_ids[gate, pin], slot]
            index |= vals[pin] << pin
        last_target = (table >> index) & 1
        out_net = out_ids[gate]
        initial_all[out_net, slot] = np.uint8(last_target)
        depth = 0
        lane_iterations = 0
        lane_overflow = 0
        while True:
            now = INF
            for pin in range(arity):
                if pointers[pin] < capacity:
                    t = times_all[in_ids[gate, pin], slot, pointers[pin]]
                    if t < now:
                        now = t
            if now == INF:
                break
            lane_iterations += 1
            causing = -1
            for pin in range(arity):
                if pointers[pin] < capacity and \
                        times_all[in_ids[gate, pin], slot, pointers[pin]] == now:
                    vals[pin] ^= 1
                    pointers[pin] += 1
                    if causing < 0:
                        causing = pin
            index = np.int64(0)
            for pin in range(arity):
                index |= vals[pin] << pin
            new_val = (table >> index) & 1
            if new_val == last_target:
                continue
            delay = per_voltage[gate, causing, 1 - new_val, v]
            if has_factors:
                delay = delay * factor
            t_out = now + delay
            width = delay if inertial else 0.0
            if depth > 0 and (t_out <= times_all[out_net, slot, depth - 1]
                              or t_out - times_all[out_net, slot, depth - 1]
                              < width):
                depth -= 1
                times_all[out_net, slot, depth] = INF
            elif depth >= capacity:
                lane_overflow = 1
            else:
                times_all[out_net, slot, depth] = t_out
                depth += 1
            last_target ^= 1
        overflow_lanes += lane_overflow
        iterations += lane_iterations
    return overflow_lanes, iterations


def merge_group_sparse(times_all, initial_all, in_ids, out_ids, per_voltage,
                       slot_to_v, factors, tables, capacity, inertial,
                       lane_gates, lane_slots):
    """Lane-compacted arena merge: only the listed ``(gate, slot)`` lanes
    run their event loops; everything else in the arena is untouched."""
    has_factors = factors is not None
    if factors is None:
        factors = np.zeros((1, 1), dtype=np.float64)
    return _merge_group_sparse_jit(
        times_all, initial_all,
        np.ascontiguousarray(in_ids, dtype=np.int64),
        np.ascontiguousarray(out_ids, dtype=np.int64),
        np.ascontiguousarray(per_voltage, dtype=np.float64),
        np.ascontiguousarray(slot_to_v, dtype=np.int64),
        np.ascontiguousarray(factors, dtype=np.float64),
        has_factors,
        np.ascontiguousarray(tables, dtype=np.int64),
        capacity,
        bool(inertial),
        np.ascontiguousarray(lane_gates, dtype=np.int64),
        np.ascontiguousarray(lane_slots, dtype=np.int64),
    )


@njit(parallel=True, cache=True)
def _run_level_jit(times_all, initial_all, in_ids, out_ids, tables, arities,
                   type_ids, nominal, parametric, coeffs, nv, nc, min_delay,
                   slot_to_v, factors, has_factors, capacity, inertial,
                   sparse, lane_gates, lane_slots):
    group_size, max_pins = in_ids.shape
    num_slots = slot_to_v.size
    n1 = coeffs.shape[-1]
    total = lane_gates.size if sparse else group_size * num_slots
    overflow_lanes = 0
    iterations = 0
    for lane in prange(total):
        if sparse:
            gate = lane_gates[lane]
            slot = lane_slots[lane]
        else:
            gate = lane // num_slots
            slot = lane % num_slots
        arity = arities[gate]
        factor = factors[gate, slot] if has_factors else 1.0
        pd = np.empty((max_pins, 2), dtype=np.float64)
        if parametric:
            v = nv[slot_to_v[slot]]
            c = nc[gate]
            for pin in range(arity):
                for polarity in range(2):
                    # Nested Horner, identical op order to horner2d.
                    result = 0.0
                    for i in range(n1 - 1, -1, -1):
                        inner = 0.0
                        for j in range(n1 - 1, -1, -1):
                            inner = inner * c + coeffs[type_ids[gate], pin,
                                                       polarity, i, j]
                        result = result * v + inner
                    adapted = nominal[gate, pin, polarity] * (1.0 + result)
                    pd[pin, polarity] = max(adapted, min_delay)
        else:
            for pin in range(arity):
                pd[pin, 0] = nominal[gate, pin, 0]
                pd[pin, 1] = nominal[gate, pin, 1]
        pointers = np.zeros(arity, dtype=np.int64)
        vals = np.empty(arity, dtype=np.int64)
        table = tables[gate]
        index = np.int64(0)
        for pin in range(arity):
            vals[pin] = initial_all[in_ids[gate, pin], slot]
            index |= vals[pin] << pin
        last_target = (table >> index) & 1
        out_net = out_ids[gate]
        initial_all[out_net, slot] = np.uint8(last_target)
        depth = 0
        lane_iterations = 0
        lane_overflow = 0
        while True:
            now = INF
            for pin in range(arity):
                if pointers[pin] < capacity:
                    t = times_all[in_ids[gate, pin], slot, pointers[pin]]
                    if t < now:
                        now = t
            if now == INF:
                break
            lane_iterations += 1
            causing = -1
            for pin in range(arity):
                if pointers[pin] < capacity and \
                        times_all[in_ids[gate, pin], slot, pointers[pin]] == now:
                    vals[pin] ^= 1
                    pointers[pin] += 1
                    if causing < 0:
                        causing = pin
            index = np.int64(0)
            for pin in range(arity):
                index |= vals[pin] << pin
            new_val = (table >> index) & 1
            if new_val == last_target:
                continue
            delay = pd[causing, 1 - new_val]
            if has_factors:
                delay = delay * factor
            t_out = now + delay
            width = delay if inertial else 0.0
            if depth > 0 and (t_out <= times_all[out_net, slot, depth - 1]
                              or t_out - times_all[out_net, slot, depth - 1]
                              < width):
                depth -= 1
                times_all[out_net, slot, depth] = INF
            elif depth >= capacity:
                lane_overflow = 1
            else:
                times_all[out_net, slot, depth] = t_out
                depth += 1
            last_target ^= 1
        overflow_lanes += lane_overflow
        iterations += lane_iterations
    return overflow_lanes, iterations


def run_level(times_all, initial_all, in_ids, out_ids, tables, arities,
              type_ids, nominal, coeffs, nv, nc, slot_to_v, factors,
              capacity, inertial, lane_gates, lane_slots):
    """Fused whole-level dispatch (see ``ComputeBackend.run_level``).

    ``coeffs`` is the full kernel-table coefficient array (parametric)
    or ``None`` (static); ``lane_gates``/``lane_slots`` select the
    sparse path when given.  Returns ``(overflow_lanes, iterations)``.
    """
    parametric = coeffs is not None
    if parametric:
        coeffs = np.ascontiguousarray(coeffs, dtype=np.float64)
        nv = np.ascontiguousarray(nv, dtype=np.float64)
        nc = np.ascontiguousarray(nc, dtype=np.float64)
    else:
        coeffs = np.zeros((1, 1, 2, 1, 1), dtype=np.float64)
        nv = np.zeros(1, dtype=np.float64)
        nc = np.zeros(1, dtype=np.float64)
    has_factors = factors is not None
    if factors is None:
        factors = np.zeros((1, 1), dtype=np.float64)
    sparse = lane_gates is not None
    if sparse:
        lane_gates = np.ascontiguousarray(lane_gates, dtype=np.int64)
        lane_slots = np.ascontiguousarray(lane_slots, dtype=np.int64)
    else:
        lane_gates = np.zeros(1, dtype=np.int64)
        lane_slots = np.zeros(1, dtype=np.int64)
    return _run_level_jit(
        times_all, initial_all,
        np.ascontiguousarray(in_ids, dtype=np.int64),
        np.ascontiguousarray(out_ids, dtype=np.int64),
        np.ascontiguousarray(tables, dtype=np.int64),
        np.ascontiguousarray(arities, dtype=np.int64),
        np.ascontiguousarray(type_ids, dtype=np.int64),
        np.ascontiguousarray(nominal, dtype=np.float64),
        parametric, coeffs, nv, nc, MIN_DELAY,
        np.ascontiguousarray(slot_to_v, dtype=np.int64),
        np.ascontiguousarray(factors, dtype=np.float64),
        has_factors, capacity, bool(inertial),
        sparse, lane_gates, lane_slots,
    )


@njit(parallel=True, cache=True)
def _delays_for_gates_jit(coeffs, nv, nc, nominal, min_delay):
    num_gates, pins, _, n1, _ = coeffs.shape
    num_v = nv.size
    out = np.empty((num_gates, pins, 2, num_v), dtype=np.float64)
    for gate in prange(num_gates):
        c = nc[gate]
        for pin in range(pins):
            for polarity in range(2):
                d_nom = nominal[gate, pin, polarity]
                for vi in range(num_v):
                    v = nv[vi]
                    # Nested Horner, identical op order to horner2d.
                    result = 0.0
                    for i in range(n1 - 1, -1, -1):
                        inner = 0.0
                        for j in range(n1 - 1, -1, -1):
                            inner = inner * c + coeffs[gate, pin, polarity,
                                                       i, j]
                        result = result * v + inner
                    adapted = d_nom * (1.0 + result)
                    out[gate, pin, polarity, vi] = max(adapted, min_delay)
    return out


def delays_for_gates(kernel_table, type_ids, loads, nominal_delays, voltages):
    """JIT Horner evaluator; same contract (and bit-identical results) as
    :meth:`DelayKernelTable.delays_for_gates`."""
    type_ids = np.asarray(type_ids, dtype=np.int64)
    nominal_delays = np.ascontiguousarray(nominal_delays, dtype=np.float64)
    pins = nominal_delays.shape[1]
    nv = np.ascontiguousarray(
        kernel_table.space.normalize_voltage(np.asarray(voltages)),
        dtype=np.float64)
    nc = np.ascontiguousarray(kernel_table.space.normalize_load(loads),
                              dtype=np.float64)
    coeffs = np.ascontiguousarray(
        kernel_table.coefficients[type_ids][:, :pins])
    return _delays_for_gates_jit(coeffs, np.atleast_1d(nv), np.atleast_1d(nc),
                                 nominal_delays, MIN_DELAY)
