"""K-longest path enumeration for timing-aware ATPG.

The paper's timing-aware pattern generation targets the 200 longest
paths of each design.  This module enumerates *polarity-aware* paths —
a path is a net sequence together with the transition polarity at every
hop, so its delay sums exactly the pin-to-pin delays STA would use:

* positive-unate pins keep the polarity, negative-unate pins flip it,
  binate pins (XOR, MUX) branch into both,
* each hop adds the delay of (pin, output polarity).

Enumeration is best-first over path prefixes with an exact "longest
completion" potential:

1. compute, for every (net, polarity) state, the longest delay from the
   state to any primary output (``suffix``),
2. expand prefixes from primary inputs, ordering the frontier by
   ``prefix delay + suffix`` — the first K completed paths are exactly
   the K longest.

The top path's delay therefore equals the STA longest-path delay by
construction (both engines use identical edge weights).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cells.cell import DrivePolarity
from repro.cells.library import CellLibrary
from repro.errors import TimingError
from repro.netlist.circuit import Circuit
from repro.simulation.compiled import CompiledCircuit, compile_circuit

__all__ = ["Path", "k_longest_paths"]


@dataclass(frozen=True)
class Path:
    """A polarity-annotated combinational path.

    Attributes
    ----------
    nets:
        The nets along the path, starting at a primary input and ending
        at a primary output net.
    gates:
        Gate instance names traversed, one per edge (``len(nets) - 1``).
    pins:
        The input-pin index used at each traversed gate.
    polarities:
        Transition polarity (:class:`DrivePolarity`) *at each net* of the
        path (``len(nets)`` entries); ``polarities[0]`` is the launch
        edge at the path's primary input.
    delay:
        Total path delay in seconds under nominal conditions.
    """

    nets: Tuple[str, ...]
    gates: Tuple[str, ...]
    pins: Tuple[int, ...]
    polarities: Tuple[DrivePolarity, ...]
    delay: float

    @property
    def start(self) -> str:
        return self.nets[0]

    @property
    def end(self) -> str:
        return self.nets[-1]

    @property
    def launch_polarity(self) -> DrivePolarity:
        return self.polarities[0]

    def __len__(self) -> int:
        return len(self.gates)


def _state(net_id: int, polarity: int) -> int:
    return net_id * 2 + polarity


def k_longest_paths(
    circuit: Circuit,
    library: CellLibrary,
    k: int = 200,
    compiled: Optional[CompiledCircuit] = None,
    max_expansions: int = 2_000_000,
) -> List[Path]:
    """Enumerate the ``k`` longest polarity-aware input→output paths.

    ``max_expansions`` bounds the search frontier for pathological
    circuits; hitting it raises :class:`TimingError` rather than
    returning a silently incomplete ranking.
    """
    if k < 1:
        raise ValueError("k must be positive")
    compiled = compiled or compile_circuit(circuit, library)

    unateness: Dict[str, Tuple[str, ...]] = {
        cell.name: tuple(
            cell.function.unateness(pin.index)
            for pin in sorted(cell.pins, key=lambda p: p.index)
        )
        for cell in library
    }

    # Edges between states: state -> [(gate, pin, out_state, delay)].
    edges: Dict[int, List[Tuple[int, int, int, float]]] = {}
    for gate_index, gate in enumerate(circuit.gates):
        senses = unateness[gate.cell]
        out_id = int(compiled.gate_output[gate_index])
        for pin in range(int(compiled.gate_arity[gate_index])):
            net_id = int(compiled.gate_inputs[gate_index, pin])
            for in_pol in (0, 1):  # RISE=0, FALL=1 at the input net
                if senses[pin] == "positive":
                    out_pols = (in_pol,)
                elif senses[pin] == "negative":
                    out_pols = (1 - in_pol,)
                else:
                    out_pols = (0, 1)
                for out_pol in out_pols:
                    delay = float(compiled.nominal_delays[gate_index, pin, out_pol])
                    edges.setdefault(_state(net_id, in_pol), []).append(
                        (gate_index, pin, _state(out_id, out_pol), delay)
                    )

    # Longest completion per state (reverse level order).
    suffix = np.full(compiled.num_nets * 2, -np.inf, dtype=np.float64)
    for net_id in compiled.output_net_ids:
        suffix[_state(int(net_id), 0)] = 0.0
        suffix[_state(int(net_id), 1)] = 0.0
    ordered_states: List[int] = []
    for net in circuit.inputs:
        net_id = compiled.net_index[net]
        ordered_states.extend((_state(net_id, 0), _state(net_id, 1)))
    for level in compiled.levels:
        for gate_index in level:
            out_id = int(compiled.gate_output[gate_index])
            ordered_states.extend((_state(out_id, 0), _state(out_id, 1)))
    for state in reversed(ordered_states):
        best = suffix[state]
        for _, _, next_state, delay in edges.get(state, ()):
            candidate = suffix[next_state] + delay
            if candidate > best:
                best = candidate
        suffix[state] = best

    id_to_net = {index: net for net, index in compiled.net_index.items()}
    gate_names = [gate.name for gate in circuit.gates]
    output_set = {int(i) for i in compiled.output_net_ids}

    # Best-first expansion.  Two entry kinds share the heap, ordered by
    # exact potential so the first K *terminal* pops are the K longest:
    #   advance:  (-prefix - suffix[state], n, False, state, prefix, parent)
    #   terminal: (-prefix,                 n, True,  state, prefix, parent)
    counter = itertools.count()
    heap: List[Tuple[float, int, bool, int, float, Optional[tuple]]] = []

    def push_state(state: int, prefix: float, parent: Optional[tuple]) -> None:
        if state // 2 in output_set:
            heapq.heappush(
                heap, (-prefix, next(counter), True, state, prefix, parent)
            )
        if np.isfinite(suffix[state]) and edges.get(state):
            heapq.heappush(
                heap,
                (-(prefix + suffix[state]), next(counter), False, state,
                 prefix, parent),
            )

    for net in circuit.inputs:
        net_id = compiled.net_index[net]
        push_state(_state(net_id, 0), 0.0, None)
        push_state(_state(net_id, 1), 0.0, None)

    results: List[Path] = []
    expansions = 0
    while heap and len(results) < k:
        _, _, terminal, state, prefix_delay, parent = heapq.heappop(heap)
        expansions += 1
        if expansions > max_expansions:
            raise TimingError(
                f"path enumeration exceeded {max_expansions} expansions"
            )
        if not terminal:
            for gate_index, pin, next_state, delay in edges.get(state, ()):
                push_state(next_state, prefix_delay + delay,
                           (state, gate_index, pin, parent))
            continue

        # Completed path: materialize by walking the parent chain of
        # (state, gate, pin, grandparent) records.
        nets: List[str] = [id_to_net[state // 2]]
        pols: List[DrivePolarity] = [DrivePolarity(state % 2)]
        gates: List[str] = []
        pins: List[int] = []
        node = parent
        while node is not None:
            prev_state, gate_index, pin, node = node
            nets.append(id_to_net[prev_state // 2])
            pols.append(DrivePolarity(prev_state % 2))
            gates.append(gate_names[gate_index])
            pins.append(pin)
        nets.reverse()
        pols.reverse()
        gates.reverse()
        pins.reverse()
        results.append(
            Path(nets=tuple(nets), gates=tuple(gates), pins=tuple(pins),
                 polarities=tuple(pols), delay=prefix_delay)
        )
    return results
