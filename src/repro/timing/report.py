"""Human-readable timing reports."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.timing.paths import Path
from repro.timing.sta import ArrivalTimes
from repro.units import si_format

__all__ = ["format_timing_report", "format_path"]


def format_path(path: Path, index: Optional[int] = None) -> str:
    """One-line summary of a path (``#3 1.234ns i5 -> g8/g12/... -> n42``)."""
    prefix = f"#{index} " if index is not None else ""
    hops = "/".join(path.gates[:6]) + ("/…" if len(path.gates) > 6 else "")
    return (
        f"{prefix}{si_format(path.delay, unit='s')}  "
        f"{path.start} -> [{hops}] -> {path.end}  ({len(path)} stages)"
    )


def format_timing_report(
    arrivals: ArrivalTimes,
    circuit_name: str,
    paths: Sequence[Path] = (),
    voltage: Optional[float] = None,
) -> str:
    """Render an STA summary plus the top paths, signoff-report style."""
    condition = f" @ {voltage:.2f} V" if voltage is not None else " (nominal)"
    lines = [
        f"Timing report for {circuit_name}{condition}",
        "=" * 60,
        f"Longest path delay : {si_format(arrivals.longest_path, unit='s')}",
        f"Critical output    : {arrivals.critical_output}",
        "",
    ]
    if paths:
        lines.append(f"Top {len(paths)} structural paths:")
        for index, path in enumerate(paths, start=1):
            lines.append("  " + format_path(path, index))
    return "\n".join(lines) + "\n"
