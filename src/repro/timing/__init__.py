"""Static timing analysis and path enumeration."""

from repro.timing.sta import StaticTimingAnalysis, ArrivalTimes
from repro.timing.paths import Path, k_longest_paths
from repro.timing.report import format_timing_report

__all__ = [
    "StaticTimingAnalysis",
    "ArrivalTimes",
    "Path",
    "k_longest_paths",
    "format_timing_report",
]
