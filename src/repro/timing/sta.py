"""Static timing analysis (the Table II column-2 comparator).

A topological worst-case arrival-time analysis with separate rise/fall
arrival tracking and pin-unateness-aware propagation:

* a positive-unate pin forwards rise→rise and fall→fall,
* a negative-unate pin (inverting cells) forwards fall→rise, rise→fall,
* a binate pin (XOR, MUX) forwards the worse of both.

STA is pessimistic by construction — it assumes every path is
sensitizable.  The paper's Table II shows exactly this gap: the latest
*simulated* transition arrival is well below the STA longest path for
most designs.

Delays default to the nominal SDF annotation; passing a compiled delay
kernel table and a voltage re-derates every gate (parametric STA), which
lets :mod:`repro.avfs` bound clock frequencies across operating points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.cells.library import CellLibrary
from repro.core.delay_kernel import DelayKernelTable
from repro.errors import TimingError
from repro.netlist.circuit import Circuit
from repro.simulation.compiled import CompiledCircuit, compile_circuit

__all__ = ["ArrivalTimes", "StaticTimingAnalysis"]


@dataclass(frozen=True)
class ArrivalTimes:
    """Worst-case rise/fall arrival time per net (seconds).

    Primary inputs arrive at 0.  ``longest_path`` is the maximum output
    arrival — the design's combinational critical-path delay.
    """

    rise: Dict[str, float]
    fall: Dict[str, float]
    longest_path: float
    critical_output: str

    def worst(self, net: str) -> float:
        return max(self.rise[net], self.fall[net])


class StaticTimingAnalysis:
    """Topological worst-case timing engine."""

    def __init__(
        self,
        circuit: Circuit,
        library: CellLibrary,
        compiled: Optional[CompiledCircuit] = None,
    ) -> None:
        self.compiled = compiled or compile_circuit(circuit, library)
        self.circuit = self.compiled.circuit
        self.library = library
        self._gate_indices = {
            gate.name: index for index, gate in enumerate(self.circuit.gates)
        }
        self._unateness: Dict[str, Tuple[str, ...]] = {
            cell.name: tuple(
                cell.function.unateness(pin.index)
                for pin in sorted(cell.pins, key=lambda p: p.index)
            )
            for cell in library
        }

    # -- delay selection ----------------------------------------------------------

    def _gate_delays(self, voltage: Optional[float],
                     kernel_table: Optional[DelayKernelTable]) -> np.ndarray:
        """Per-gate pin/polarity delays ``(G, max_pins, 2)`` in seconds."""
        if kernel_table is None:
            return self.compiled.nominal_delays
        if voltage is None:
            raise TimingError("parametric STA requires a voltage")
        adapted = kernel_table.delays_for_gates(
            self.compiled.gate_type_ids,
            self.compiled.gate_loads,
            self.compiled.nominal_delays,
            np.asarray([voltage], dtype=np.float64),
        )
        return adapted[..., 0]

    # -- analysis --------------------------------------------------------------------

    def analyze(
        self,
        voltage: Optional[float] = None,
        kernel_table: Optional[DelayKernelTable] = None,
    ) -> ArrivalTimes:
        """Compute worst-case arrival times.

        Without ``kernel_table`` the nominal delays are used (the
        commercial-STA setting of Table II); with it, delays are derated
        to ``voltage`` through the polynomial kernels.
        """
        delays = self._gate_delays(voltage, kernel_table)
        rise: Dict[str, float] = {net: 0.0 for net in self.circuit.inputs}
        fall: Dict[str, float] = {net: 0.0 for net in self.circuit.inputs}

        for gate in self.circuit.topological_gates():
            gate_index = self._gate_indices[gate.name]
            unateness = self._unateness[gate.cell]
            out_rise = 0.0
            out_fall = 0.0
            for pin, net in enumerate(gate.inputs):
                in_rise = rise[net]
                in_fall = fall[net]
                d_rise = float(delays[gate_index, pin, 0])
                d_fall = float(delays[gate_index, pin, 1])
                sense = unateness[pin]
                if sense == "positive":
                    cand_rise = in_rise + d_rise
                    cand_fall = in_fall + d_fall
                elif sense == "negative":
                    cand_rise = in_fall + d_rise
                    cand_fall = in_rise + d_fall
                else:  # binate: either input edge can cause either output edge
                    worst_in = max(in_rise, in_fall)
                    cand_rise = worst_in + d_rise
                    cand_fall = worst_in + d_fall
                out_rise = max(out_rise, cand_rise)
                out_fall = max(out_fall, cand_fall)
            rise[gate.output] = out_rise
            fall[gate.output] = out_fall

        if not self.circuit.outputs:
            raise TimingError("circuit has no outputs")
        worst_net = max(self.circuit.outputs,
                        key=lambda net: max(rise[net], fall[net]))
        return ArrivalTimes(
            rise=rise,
            fall=fall,
            longest_path=max(rise[worst_net], fall[worst_net]),
            critical_output=worst_net,
        )

    def longest_path_delay(
        self,
        voltage: Optional[float] = None,
        kernel_table: Optional[DelayKernelTable] = None,
    ) -> float:
        """Shorthand for ``analyze(...).longest_path``."""
        return self.analyze(voltage, kernel_table).longest_path
