"""Process-wide deterministic fault injection.

The hardening machinery of the service and engine layers (supervised
worker pool, circuit breakers, backend demotion, cache integrity) is
exercised through *seams*: named call sites that consult the process's
active :class:`~repro.faults.plan.FaultPlan` via :func:`trip`.  With no
plan active a seam is one module-global load and a ``None`` check —
cheap enough to leave compiled into production paths (the
``faults_disabled_overhead`` number in ``BENCH_kernels.json`` guards
this staying below 1% of end-to-end runtime).

Activation, outermost wins first:

1. an explicitly :func:`activate`-d plan (``repro serve --faults``,
   tests via the :func:`injected` context manager),
2. else ``SimulationConfig.faults`` (:func:`ensure`, first engine wins),
3. else the ``REPRO_FAULTS`` environment variable, parsed lazily on the
   first seam crossing and inherited by campaign worker processes.

:func:`reset` clears all of it (tests only).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import List, Optional, Union

from repro.faults.plan import (
    FAULT_KINDS,
    FAULT_SITES,
    FaultPlan,
    FaultRule,
    WorkerDeathError,
    corrupt_waveforms,
)

__all__ = [
    "ENV_VAR",
    "FAULT_KINDS",
    "FAULT_SITES",
    "FaultPlan",
    "FaultRule",
    "WorkerDeathError",
    "activate",
    "active_plan",
    "corrupt_waveforms",
    "deactivate",
    "ensure",
    "injected",
    "reset",
    "trip",
]

#: Environment variable holding a fault-plan spec string.
ENV_VAR = "REPRO_FAULTS"

#: Sentinel: the environment has not been consulted yet.
_UNSET = object()

_active: object = _UNSET
_stack: List[object] = []


def _coerce(plan: Union[FaultPlan, str]) -> FaultPlan:
    return plan if isinstance(plan, FaultPlan) else FaultPlan.from_spec(plan)


def _resolve_env() -> Optional[FaultPlan]:
    global _active
    spec = os.environ.get(ENV_VAR, "").strip()
    plan = FaultPlan.from_spec(spec) if spec else None
    _active = plan
    return plan


def active_plan() -> Optional[FaultPlan]:
    """The plan seams currently consult (``None`` = injection off)."""
    plan = _active
    if plan is _UNSET:
        return _resolve_env()
    return plan  # type: ignore[return-value]


def activate(plan: Union[FaultPlan, str]) -> FaultPlan:
    """Push a plan as the process-wide active one; returns it."""
    global _active
    resolved = _coerce(plan)
    _stack.append(_active)
    _active = resolved
    return resolved


def deactivate() -> None:
    """Pop the most recent :func:`activate`; restores what it shadowed."""
    global _active
    _active = _stack.pop() if _stack else _UNSET


@contextmanager
def injected(plan: Union[FaultPlan, str]):
    """Scoped activation: ``with faults.injected("site:kind@n=1") as p:``."""
    resolved = activate(plan)
    try:
        yield resolved
    finally:
        deactivate()


def ensure(spec: Union[FaultPlan, str]) -> None:
    """Activate ``spec`` only if no plan is active yet (config path).

    ``SimulationConfig.faults`` travels with jobs and pickled campaign
    configs; the first engine constructed with it arms the plan, later
    engines (and an explicitly activated plan) keep the existing one so
    per-site call counters are not silently reset mid-run.
    """
    if active_plan() is None:
        activate(spec)


def reset() -> None:
    """Forget every activation and re-arm lazy env resolution (tests)."""
    global _active
    _stack.clear()
    _active = _UNSET


def trip(site: str, corruptible=None):
    """Cross one fault seam: enact whatever the active plan fires here.

    The disabled path (no active plan) is a global load and an identity
    check.  ``corruptible`` — a ``[{net: Waveform}]`` result the site is
    willing to expose to ``corrupt`` rules — is only touched when such a
    rule fires.
    """
    plan = _active
    if plan is None:
        return None
    if plan is _UNSET:
        plan = _resolve_env()
        if plan is None:
            return None
    return plan.enact(site, corruptible)  # type: ignore[union-attr]
