"""Deterministic fault plans: rules, spec parsing, enactment.

A :class:`FaultPlan` is a seeded, reproducible description of *what goes
wrong where*: each :class:`FaultRule` names an instrumented site, a
fault kind and a trigger (every nth call, or per-call probability).
Plans round-trip through a compact spec string so one plan can travel
through ``SimulationConfig.faults``, the ``REPRO_FAULTS`` environment
variable (inherited by campaign worker processes) and the
``repro serve --faults`` flag unchanged::

    seed=11; backend.run_levels:raise@n=3; cache.get:corrupt@p=0.25;
    service.demux:delay@p=0.1,ms=5

Spec grammar (whitespace-insensitive, ``;``-separated clauses):

* ``seed=N`` — optional leading clause seeding every probability RNG;
* ``<site>:<kind>`` — a rule, optionally followed by ``@`` and
  comma-separated parameters: ``p=<float>`` (per-call probability) or
  ``n=<int>`` (fire on the nth call, 1-based) with ``count=<int>``
  (consecutive calls from the nth, default 1), and ``ms=<float>``
  (sleep duration for ``delay``; ``hang`` defaults to 30000).

Determinism: nth-call triggers depend only on the per-site call count,
so single-threaded runs (and call-count assertions) are exact;
probability triggers draw from a per-rule ``random.Random`` seeded by
``(seed, site, kind, rule-index)``, so two runs with the same plan and
the same per-site call orders fire identically.
"""

from __future__ import annotations

import random
import threading
import time as _time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import InjectedFaultError, ReproError

__all__ = [
    "FAULT_KINDS",
    "FAULT_SITES",
    "FaultPlan",
    "FaultRule",
    "WorkerDeathError",
]

#: Instrumented seam names (see ``docs/architecture.md`` §10).
FAULT_SITES = (
    "backend.merge_group",   # per-group / per-level kernel dispatch
    "backend.run_levels",    # whole-batch fused kernel dispatch
    "backend.load",          # backend import / build (inside _load's try)
    "service.demux",         # batch result demultiplexing
    "cache.get",             # result-cache hit path
    "engine.alloc",          # waveform-arena acquisition
    "shard.dispatch",        # shard-side batch execution (in the worker process)
    "shard.spawn",           # router-side shard process spawn
    "loop.step",             # closed-loop AVFS iteration (before checkpointing)
    "charz.fit",             # characterization regression step (per fit call)
)

#: Supported fault kinds.
FAULT_KINDS = ("raise", "delay", "hang", "corrupt", "die")

#: Default sleep durations (milliseconds) for the latency kinds.
DEFAULT_DELAY_MS = 10.0
DEFAULT_HANG_MS = 30_000.0


class WorkerDeathError(BaseException):
    """Simulated death of the executing worker (``die`` fault kind).

    Deliberately **not** an :class:`Exception`: the hardening layers
    catch ``Exception`` to isolate job failures, and a dead worker must
    not be mistaken for a failed job.  Only supervised execution
    contexts handle it — the service engine pool exits the worker thread
    (leaving its in-flight batch for the supervisor to recover) and
    campaign worker processes hard-exit (surfacing as the broken-pool
    failure the retry ladder already absorbs).  Anywhere else it
    propagates to the caller like a real worker loss would.
    """


@dataclass(frozen=True)
class FaultRule:
    """One fault at one site with one trigger."""

    site: str
    kind: str
    probability: Optional[float] = None
    nth: Optional[int] = None
    count: int = 1
    ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ReproError(
                f"unknown fault site {self.site!r}; known: {FAULT_SITES}")
        if self.kind not in FAULT_KINDS:
            raise ReproError(
                f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}")
        if (self.probability is None) == (self.nth is None):
            raise ReproError(
                f"rule {self.site}:{self.kind} needs exactly one trigger "
                "(p=<prob> or n=<nth call>)")
        if self.probability is not None and not 0.0 < self.probability <= 1.0:
            raise ReproError("fault probability must be in (0, 1]")
        if self.nth is not None and self.nth < 1:
            raise ReproError("nth-call trigger is 1-based (n >= 1)")
        if self.count < 1:
            raise ReproError("count must be >= 1")
        if self.ms is not None and self.ms < 0:
            raise ReproError("ms must be >= 0")

    @property
    def sleep_ms(self) -> float:
        if self.ms is not None:
            return self.ms
        return DEFAULT_HANG_MS if self.kind == "hang" else DEFAULT_DELAY_MS

    def to_spec(self) -> str:
        params = []
        if self.probability is not None:
            params.append(f"p={self.probability:g}")
        else:
            params.append(f"n={self.nth}")
            if self.count != 1:
                params.append(f"count={self.count}")
        if self.ms is not None:
            params.append(f"ms={self.ms:g}")
        return f"{self.site}:{self.kind}@{','.join(params)}"


class FaultPlan:
    """A seeded set of fault rules with per-site call accounting.

    Thread-safe: the per-site call counters and fired-rule tallies are
    lock-guarded, so a plan can be shared by every thread of a service.
    """

    def __init__(self, rules: Sequence[FaultRule] = (), seed: int = 0) -> None:
        self.rules: Tuple[FaultRule, ...] = tuple(rules)
        self.seed = int(seed)
        self._lock = threading.Lock()
        self._calls: Dict[str, int] = {}
        self._fired: Dict[str, int] = {}
        self._by_site: Dict[str, List[Tuple[int, FaultRule]]] = {}
        self._rngs: Dict[int, random.Random] = {}
        for index, rule in enumerate(self.rules):
            self._by_site.setdefault(rule.site, []).append((index, rule))
            self._rngs[index] = random.Random(
                f"{self.seed}:{rule.site}:{rule.kind}:{index}")

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse the ``seed=N; site:kind@p=...`` spec grammar."""
        seed = 0
        rules: List[FaultRule] = []
        for clause in spec.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            if clause.startswith("seed="):
                seed = int(clause[len("seed="):])
                continue
            head, _, tail = clause.partition("@")
            site, sep, kind = head.strip().partition(":")
            if not sep:
                raise ReproError(
                    f"fault clause {clause!r} must look like site:kind[@...]")
            params: Dict[str, str] = {}
            for item in tail.split(","):
                item = item.strip()
                if not item:
                    continue
                name, sep, value = item.partition("=")
                if not sep:
                    raise ReproError(
                        f"fault parameter {item!r} must look like name=value")
                params[name.strip()] = value.strip()
            unknown = set(params) - {"p", "n", "count", "ms"}
            if unknown:
                raise ReproError(
                    f"unknown fault parameters {sorted(unknown)} in {clause!r}")
            rules.append(FaultRule(
                site=site.strip(), kind=kind.strip(),
                probability=float(params["p"]) if "p" in params else None,
                nth=int(params["n"]) if "n" in params else None,
                count=int(params.get("count", 1)),
                ms=float(params["ms"]) if "ms" in params else None,
            ))
        return cls(rules, seed=seed)

    def to_spec(self) -> str:
        clauses = [f"seed={self.seed}"] if self.seed else []
        clauses.extend(rule.to_spec() for rule in self.rules)
        return "; ".join(clauses)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({self.to_spec()!r})"

    # -- accounting -----------------------------------------------------------

    def calls(self, site: Optional[str] = None) -> int:
        """Seam crossings observed so far (one site, or all of them)."""
        with self._lock:
            if site is not None:
                return self._calls.get(site, 0)
            return sum(self._calls.values())

    def stats(self) -> dict:
        """Observability snapshot: calls per site, fires per rule."""
        with self._lock:
            return {"calls": dict(self._calls), "fired": dict(self._fired)}

    # -- enactment ------------------------------------------------------------

    def _match(self, site: str) -> List[Tuple[int, FaultRule]]:
        with self._lock:
            count = self._calls.get(site, 0) + 1
            self._calls[site] = count
            fired: List[Tuple[int, FaultRule]] = []
            for index, rule in self._by_site.get(site, ()):
                if rule.nth is not None:
                    hit = rule.nth <= count < rule.nth + rule.count
                else:
                    hit = self._rngs[index].random() < rule.probability
                if hit:
                    fired.append((index, rule))
                    key = f"{rule.site}:{rule.kind}"
                    self._fired[key] = self._fired.get(key, 0) + 1
            return fired

    def enact(self, site: str, corruptible=None) -> Optional[FaultRule]:
        """Count one seam crossing and enact whatever rules fire.

        Latency rules sleep, ``corrupt`` rules flip one bit of the
        passed waveforms (a no-op when the site offers nothing to
        corrupt), and ``raise``/``die`` rules raise — after the
        non-raising rules have been enacted, first raising rule wins.
        Returns the raising rule's sibling-free summary (the last
        non-raising fired rule) — ``None`` when nothing fired.
        """
        fired = self._match(site)
        if not fired:
            return None
        raiser: Optional[FaultRule] = None
        last: Optional[FaultRule] = None
        for index, rule in fired:
            if rule.kind in ("delay", "hang"):
                _time.sleep(rule.sleep_ms / 1e3)
                last = rule
            elif rule.kind == "corrupt":
                if corruptible is not None:
                    corrupt_waveforms(self._rngs[index], corruptible)
                last = rule
            elif raiser is None:
                raiser = rule
        if raiser is not None:
            if raiser.kind == "die":
                raise WorkerDeathError(site)
            raise InjectedFaultError(site, raiser.to_spec())
        return last


def corrupt_waveforms(rng: random.Random, waveforms) -> bool:
    """Flip one bit of one waveform in a ``[{net: Waveform}]`` result.

    Prefers flipping the lowest mantissa bit of one toggle time (an
    in-place ndarray mutation); an all-quiet result instead has one
    settled initial value inverted (rebuilding the immutable Waveform).
    Returns False when there was nothing to corrupt.
    """
    import numpy as np

    from repro.waveform.waveform import Waveform

    busy = [(nets, net) for nets in waveforms
            for net, wave in nets.items() if wave.times.size]
    if busy:
        nets, net = busy[rng.randrange(len(busy))]
        times = nets[net].times
        view = times.view(np.int64)
        view[rng.randrange(times.size)] ^= 1
        return True
    quiet = [(nets, net) for nets in waveforms for net in nets]
    if not quiet:
        return False
    nets, net = quiet[rng.randrange(len(quiet))]
    wave = nets[net]
    nets[net] = Waveform.trusted(1 - wave.initial, wave.times)
    return True
