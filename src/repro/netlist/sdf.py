"""Standard Delay Format (SDF) subset: IOPATH delay annotations.

The paper's flow (Fig. 2, step 1) annotates the combinational network
with nominal timing from SDF files.  This module covers the subset such a
flow needs: absolute ``IOPATH`` rise/fall delays per instance, written
and parsed in SDF 3.0 syntax::

    (DELAYFILE
      (SDFVERSION "3.0")
      (DESIGN "s27")
      (TIMESCALE 1ps)
      (CELL (CELLTYPE "NAND2_X1") (INSTANCE u1)
        (DELAY (ABSOLUTE
          (IOPATH A1 ZN (12.3:12.3:12.3) (10.1:10.1:10.1))
          (IOPATH A2 ZN (13.0:13.0:13.0) (10.9:10.9:10.9))))))

The min:typ:max triple is written with all three values equal (the
nominal corner); the parser accepts arbitrary triples and keeps the
typical value.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.cells.library import CellLibrary
from repro.electrical.model import ElectricalModel
from repro.cells.cell import DrivePolarity
from repro.errors import ParseError
from repro.netlist.circuit import Circuit
from repro.units import PS

__all__ = ["SdfAnnotation", "write_sdf", "parse_sdf", "annotate_nominal"]


@dataclass
class SdfAnnotation:
    """Per-instance, per-pin nominal (rise, fall) delays in seconds.

    ``delays[instance][pin_index] == (rise_seconds, fall_seconds)``.
    """

    design: str
    delays: Dict[str, Tuple[Tuple[float, float], ...]] = field(default_factory=dict)

    def gate_delays(self, instance: str) -> Tuple[Tuple[float, float], ...]:
        try:
            return self.delays[instance]
        except KeyError:
            raise ParseError(f"no SDF annotation for instance {instance!r}") from None

    def __len__(self) -> int:
        return len(self.delays)


def annotate_nominal(
    circuit: Circuit,
    library: CellLibrary,
    model: Optional[ElectricalModel] = None,
    v_nom: float = 0.8,
    loads: Optional[Dict[str, float]] = None,
) -> SdfAnnotation:
    """Produce the nominal-corner SDF annotation for a circuit.

    Delays come from the electrical model evaluated at the nominal supply
    voltage with each gate's actual load — what a signoff extraction
    would put into the SDF file.
    """
    model = model or ElectricalModel()
    loads = loads or circuit.net_loads(library)
    annotation = SdfAnnotation(design=circuit.name)
    for gate in circuit.gates:
        cell = library[gate.cell]
        load = loads[gate.output]
        annotation.delays[gate.name] = tuple(
            (
                model.pin_delay(cell, pin, DrivePolarity.RISE, v_nom, load),
                model.pin_delay(cell, pin, DrivePolarity.FALL, v_nom, load),
            )
            for pin in sorted(cell.pins, key=lambda p: p.index)
        )
    return annotation


def write_sdf(circuit: Circuit, library: CellLibrary,
              annotation: SdfAnnotation) -> str:
    """Serialize an annotation as SDF 3.0 text (timescale 1 ps)."""
    lines = [
        "(DELAYFILE",
        '  (SDFVERSION "3.0")',
        f'  (DESIGN "{annotation.design}")',
        "  (TIMESCALE 1ps)",
    ]
    for gate in circuit.gates:
        cell = library[gate.cell]
        pin_delays = annotation.gate_delays(gate.name)
        lines.append(f'  (CELL (CELLTYPE "{gate.cell}") (INSTANCE {gate.name})')
        lines.append("    (DELAY (ABSOLUTE")
        for pin, (rise, fall) in zip(sorted(cell.pins, key=lambda p: p.index),
                                     pin_delays):
            r = rise / PS
            f = fall / PS
            lines.append(
                f"      (IOPATH {pin.name} {cell.output} "
                f"({r:.4f}:{r:.4f}:{r:.4f}) ({f:.4f}:{f:.4f}:{f:.4f}))"
            )
        lines.append("    ))")
        lines.append("  )")
    lines.append(")")
    return "\n".join(lines) + "\n"


_TIMESCALE_RE = re.compile(r"\(TIMESCALE\s+([\d.]+)\s*(fs|ps|ns|us)\s*\)", re.I)
_DESIGN_RE = re.compile(r'\(DESIGN\s+"([^"]*)"\s*\)')
_CELL_HEADER_RE = re.compile(
    r'\(CELL\s*\(CELLTYPE\s+"(?P<type>[^"]+)"\)\s*\(INSTANCE\s+(?P<inst>[^)\s]+)\s*\)'
)
_IOPATH_RE = re.compile(
    r"\(IOPATH\s+(?P<pin>\S+)\s+(?P<out>\S+)\s+"
    r"\((?P<rise>[^)]*)\)\s*\((?P<fall>[^)]*)\)\s*\)"
)

_SCALES = {"fs": 1e-15, "ps": 1e-12, "ns": 1e-9, "us": 1e-6}


def _triple_typ(text: str, filename: str) -> float:
    parts = text.split(":")
    try:
        values = [float(p) for p in parts if p.strip() != ""]
    except ValueError:
        raise ParseError(f"bad delay triple {text!r}", filename=filename) from None
    if not values:
        raise ParseError(f"empty delay triple {text!r}", filename=filename)
    # typ is the middle entry of a full triple, else the single value.
    return values[len(values) // 2] if len(values) == 3 else values[0]


def parse_sdf(text: str, library: CellLibrary,
              filename: str = "<sdf>") -> SdfAnnotation:
    """Parse SDF text back into an :class:`SdfAnnotation`."""
    if "(DELAYFILE" not in text:
        raise ParseError("not an SDF file (missing DELAYFILE)", filename=filename)
    design_match = _DESIGN_RE.search(text)
    design = design_match.group(1) if design_match else "unknown"
    scale_match = _TIMESCALE_RE.search(text)
    scale = _SCALES[scale_match.group(2).lower()] * float(scale_match.group(1)) \
        if scale_match else PS

    annotation = SdfAnnotation(design=design)
    headers = list(_CELL_HEADER_RE.finditer(text))
    for index, cell_match in enumerate(headers):
        cell_type = cell_match.group("type")
        instance = cell_match.group("inst")
        cell = library.get(cell_type)
        if cell is None:
            raise ParseError(f"unknown CELLTYPE {cell_type!r}", filename=filename)
        body_end = headers[index + 1].start() if index + 1 < len(headers) else len(text)
        body = text[cell_match.end():body_end]
        by_pin: Dict[str, Tuple[float, float]] = {}
        for iopath in _IOPATH_RE.finditer(body):
            rise = _triple_typ(iopath.group("rise"), filename) * scale
            fall = _triple_typ(iopath.group("fall"), filename) * scale
            by_pin[iopath.group("pin")] = (rise, fall)
        ordered = []
        for pin in sorted(cell.pins, key=lambda p: p.index):
            if pin.name not in by_pin:
                raise ParseError(
                    f"instance {instance}: missing IOPATH for pin {pin.name}",
                    filename=filename)
            ordered.append(by_pin[pin.name])
        annotation.delays[instance] = tuple(ordered)
    return annotation
