"""Synthetic circuit generators.

The paper evaluates on ISCAS'89 / ITC'99 / industrial netlists synthesized
with a commercial flow.  Those netlists (and the flow) are proprietary,
so this module generates deterministic synthetic circuits with controlled
node count, logic depth and fanout distribution:

* :func:`random_circuit` — technology-mapped-looking random DAGs, the
  workhorse behind the scaled benchmark suite of Table I/II,
* :func:`ripple_carry_adder`, :func:`array_multiplier`,
  :func:`parity_tree` — structured arithmetic blocks with long, real
  sensitizable paths (useful for timing-aware ATPG tests),
* :func:`c17` — the classic ISCAS'85 c17, embedded as ``.bench`` text.

All generators are pure functions of their arguments (seeded PRNG), so
every experiment is reproducible bit-for-bit.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.netlist.bench import parse_bench
from repro.netlist.circuit import Circuit

__all__ = [
    "random_circuit",
    "ripple_carry_adder",
    "array_multiplier",
    "parity_tree",
    "decoder",
    "equality_comparator",
    "barrel_shifter",
    "c17",
]

#: Families eligible for random mapping, keyed by arity.
_FAMILIES_BY_ARITY = {
    1: ("INV", "BUF"),
    2: ("NAND2", "NOR2", "AND2", "OR2", "XOR2", "XNOR2"),
    3: ("NAND3", "NOR3", "AND3", "OR3", "AOI21", "OAI21", "MUX2"),
    4: ("NAND4", "NOR4", "AND4", "OR4", "AOI22", "OAI22"),
}

#: Arity mix of a typical mapped design: dominated by 2-input cells.
_ARITY_WEIGHTS = ((1, 18), (2, 58), (3, 16), (4, 8))

#: Drive strength mix: weaker cells dominate.
_STRENGTH_WEIGHTS = ((1, 60), (2, 30), (4, 10))


def random_circuit(
    name: str,
    num_inputs: int,
    num_gates: int,
    seed: int = 0,
    target_depth: Optional[int] = None,
    strengths: Sequence[int] = (1, 2, 4),
) -> Circuit:
    """Generate a random technology-mapped combinational circuit.

    Parameters
    ----------
    num_inputs:
        Number of primary inputs.
    num_gates:
        Number of cell instances.
    target_depth:
        Approximate logic depth; default scales with circuit size like
        synthesized designs do (≈ 12·log₂(gates)).
    strengths:
        Allowed drive strengths (subset of 1/2/4).

    Every net left without fanout becomes a primary output, so the
    generated circuit has no dangling logic.
    """
    if num_inputs < 2:
        raise ValueError("need at least 2 primary inputs")
    if num_gates < 1:
        raise ValueError("need at least 1 gate")
    rng = random.Random(seed)
    circuit = Circuit(name)
    nets: List[str] = []
    for index in range(num_inputs):
        nets.append(circuit.add_input(f"i{index}"))

    if target_depth is None:
        target_depth = max(10, 5 * max(num_gates, 2).bit_length())
    # Mean look-back window so depth comes out near the target.  With an
    # exponential look-back of mean L, roughly every 4th gate lands on the
    # current frontier and deepens it, hence the factor 4 (calibrated
    # empirically; see tests/netlist/test_generate.py).
    locality = max(2.0, 4.0 * num_gates / float(target_depth))

    arities = [a for a, w in _ARITY_WEIGHTS for _ in range(w)]
    strength_pool = [s for s, w in _STRENGTH_WEIGHTS if s in strengths
                     for _ in range(w)]
    if not strength_pool:
        raise ValueError(f"no usable strengths in {strengths}")

    # Nets not yet consumed by any gate.  Preferring them as inputs keeps
    # the sink count (and hence the primary-output count) realistically
    # small, like a synthesized netlist where almost every cell's output
    # is used downstream.  The list uses lazy deletion with periodic
    # compaction so each pick stays O(1) amortized.
    unconsumed_list: List[str] = list(nets)
    unconsumed_set = set(nets)

    def pick_unconsumed(back: int) -> Optional[str]:
        position = max(0, len(unconsumed_list) - 1 - back)
        while position >= 0 and unconsumed_list[position] not in unconsumed_set:
            position -= 1
        return unconsumed_list[position] if position >= 0 else None

    for index in range(num_gates):
        arity = min(rng.choice(arities), len(nets))
        family = rng.choice(_FAMILIES_BY_ARITY[arity])
        strength = rng.choice(strength_pool)
        chosen: List[str] = []
        attempts = 0
        while len(chosen) < arity and attempts < 64:
            attempts += 1
            back = int(rng.expovariate(1.0 / locality))
            net = None
            if unconsumed_set and rng.random() < 0.7:
                net = pick_unconsumed(back)
            if net is None:
                net = nets[max(0, len(nets) - 1 - back)]
            if net not in chosen:
                chosen.append(net)
        if len(chosen) < arity:  # tiny pools: fall back to uniform sampling
            remaining = [net for net in nets if net not in chosen]
            chosen.extend(rng.sample(remaining, arity - len(chosen)))
        unconsumed_set.difference_update(chosen)
        if len(unconsumed_list) > 2 * len(unconsumed_set) + 16:
            unconsumed_list = [n for n in unconsumed_list if n in unconsumed_set]
        output = f"n{index}"
        circuit.add_gate(f"g{index}", f"{family}_X{strength}", chosen, output)
        nets.append(output)
        unconsumed_list.append(output)
        unconsumed_set.add(output)

    fanout = circuit.fanout()
    sinks = [net for net, readers in fanout.items() if not readers]
    for net in sinks:
        circuit.add_output(net)
    if not circuit.outputs:
        circuit.add_output(nets[-1])
    return circuit


def ripple_carry_adder(width: int, name: Optional[str] = None) -> Circuit:
    """A ``width``-bit ripple-carry adder (5 cells per full adder).

    Inputs ``a<i>``, ``b<i>``, ``cin``; outputs ``s<i>`` and ``cout``.
    The carry chain is the classic long true path for timing validation.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    circuit = Circuit(name or f"rca{width}")
    a = [circuit.add_input(f"a{i}") for i in range(width)]
    b = [circuit.add_input(f"b{i}") for i in range(width)]
    carry = circuit.add_input("cin")
    counter = 0

    def gate(cell: str, ins: List[str], out: str) -> str:
        nonlocal counter
        circuit.add_gate(f"g{counter}", cell, ins, out)
        counter += 1
        return out

    for i in range(width):
        half = gate("XOR2_X1", [a[i], b[i]], f"hx{i}")
        gate("XOR2_X1", [half, carry], f"s{i}")
        circuit.add_output(f"s{i}")
        generate = gate("AND2_X1", [a[i], b[i]], f"gn{i}")
        propagate = gate("AND2_X1", [half, carry], f"pp{i}")
        carry = gate("OR2_X1", [generate, propagate], f"c{i}")
    circuit.add_output(carry)
    return circuit


def array_multiplier(width: int, name: Optional[str] = None) -> Circuit:
    """A ``width × width`` unsigned array multiplier.

    Built from AND2 partial products and carry-save full-adder rows;
    produces ``2·width`` product bits ``p<i>``.
    """
    if width < 2:
        raise ValueError("width must be >= 2")
    circuit = Circuit(name or f"mul{width}")
    a = [circuit.add_input(f"a{i}") for i in range(width)]
    b = [circuit.add_input(f"b{i}") for i in range(width)]
    counter = 0

    def gate(cell: str, ins: List[str], out_hint: str) -> str:
        nonlocal counter
        out = f"{out_hint}_{counter}"
        circuit.add_gate(f"g{counter}", cell, ins, out)
        counter += 1
        return out

    def full_adder(x: str, y: str, z: str):
        half = gate("XOR2_X1", [x, y], "fx")
        total = gate("XOR2_X1", [half, z], "fs")
        g1 = gate("AND2_X1", [x, y], "fg")
        g2 = gate("AND2_X1", [half, z], "fp")
        carry = gate("OR2_X1", [g1, g2], "fc")
        return total, carry

    def half_adder(x: str, y: str):
        total = gate("XOR2_X1", [x, y], "hs")
        carry = gate("AND2_X1", [x, y], "hc")
        return total, carry

    # Column-wise carry-save reduction of the partial-product matrix.
    columns: List[List[str]] = [[] for _ in range(2 * width)]
    for i in range(width):
        for j in range(width):
            columns[i + j].append(gate("AND2_X1", [a[i], b[j]], f"pp{i}_{j}"))

    product: List[str] = []
    for col in range(2 * width):
        bits = columns[col]
        while len(bits) > 1:
            if len(bits) >= 3:
                total, carry = full_adder(bits.pop(), bits.pop(), bits.pop())
            else:
                total, carry = half_adder(bits.pop(), bits.pop())
            bits.append(total)
            if col + 1 < 2 * width:
                columns[col + 1].append(carry)
        product.append(bits[0] if bits else None)

    for index, net in enumerate(product):
        if net is None:
            continue
        out = f"p{index}"
        circuit.add_gate(f"g{counter}", "BUF_X1", [net], out)
        counter += 1
        circuit.add_output(out)
    return circuit


def parity_tree(width: int, name: Optional[str] = None) -> Circuit:
    """A balanced XOR parity tree over ``width`` inputs."""
    if width < 2:
        raise ValueError("width must be >= 2")
    circuit = Circuit(name or f"parity{width}")
    level = [circuit.add_input(f"i{index}") for index in range(width)]
    counter = 0
    while len(level) > 1:
        nxt: List[str] = []
        for index in range(0, len(level) - 1, 2):
            out = f"x{counter}"
            circuit.add_gate(f"g{counter}", "XOR2_X1",
                             [level[index], level[index + 1]], out)
            counter += 1
            nxt.append(out)
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    circuit.add_gate(f"g{counter}", "BUF_X1", [level[0]], "parity")
    circuit.add_output("parity")
    return circuit


def decoder(bits: int, name: Optional[str] = None) -> Circuit:
    """An n-to-2ⁿ decoder: output ``d<k>`` is 1 iff the input equals k.

    Built from per-input true/complement rails and AND trees — wide
    fanout on the input rails, shallow depth: the structural opposite of
    the adder's carry chain, useful for fanout-stress tests.
    """
    if not 1 <= bits <= 8:
        raise ValueError("decoder supports 1..8 select bits")
    circuit = Circuit(name or f"dec{bits}")
    inputs = [circuit.add_input(f"s{i}") for i in range(bits)]
    counter = 0

    def gate(cell: str, ins: List[str], out: str) -> str:
        nonlocal counter
        circuit.add_gate(f"g{counter}", cell, ins, out)
        counter += 1
        return out

    complements = [gate("INV_X1", [net], f"ns{i}")
                   for i, net in enumerate(inputs)]
    for value in range(1 << bits):
        rails = [inputs[i] if (value >> i) & 1 else complements[i]
                 for i in range(bits)]
        while len(rails) > 1:
            grouped = []
            for index in range(0, len(rails) - 1, 2):
                grouped.append(gate("AND2_X1", rails[index:index + 2],
                                    f"d{value}_t{counter}"))
            if len(rails) % 2:
                grouped.append(rails[-1])
            rails = grouped
        gate("BUF_X1", [rails[0]], f"d{value}")
        circuit.add_output(f"d{value}")
    return circuit


def equality_comparator(width: int, name: Optional[str] = None) -> Circuit:
    """A ``width``-bit equality comparator: ``eq = (a == b)``.

    XNOR per bit position followed by a balanced AND tree.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    circuit = Circuit(name or f"cmp{width}")
    a = [circuit.add_input(f"a{i}") for i in range(width)]
    b = [circuit.add_input(f"b{i}") for i in range(width)]
    counter = 0

    def gate(cell: str, ins: List[str], out: str) -> str:
        nonlocal counter
        circuit.add_gate(f"g{counter}", cell, ins, out)
        counter += 1
        return out

    level = [gate("XNOR2_X1", [a[i], b[i]], f"x{i}") for i in range(width)]
    while len(level) > 1:
        grouped = []
        for index in range(0, len(level) - 1, 2):
            grouped.append(gate("AND2_X1", level[index:index + 2],
                                f"t{counter}"))
        if len(level) % 2:
            grouped.append(level[-1])
        level = grouped
    gate("BUF_X1", [level[0]], "eq")
    circuit.add_output("eq")
    return circuit


def barrel_shifter(width: int, name: Optional[str] = None) -> Circuit:
    """A logarithmic left barrel shifter built from MUX2 cells.

    Inputs ``d<i>`` (data) and ``s<k>`` (shift amount bits); outputs
    ``q<i> = d[(i - shift) mod width]`` — a rotate-left by ``shift``.
    Exercises the binate select pins of the mux cells.
    """
    if width < 2 or width & (width - 1):
        raise ValueError("width must be a power of two >= 2")
    circuit = Circuit(name or f"bshift{width}")
    data = [circuit.add_input(f"d{i}") for i in range(width)]
    stages = width.bit_length() - 1
    selects = [circuit.add_input(f"s{k}") for k in range(stages)]
    counter = 0

    current = data
    for stage in range(stages):
        amount = 1 << stage
        nxt: List[str] = []
        for i in range(width):
            out = f"m{stage}_{i}"
            # MUX2 pins (A, B, S): S=0 -> A (no shift), S=1 -> B (shifted)
            circuit.add_gate(
                f"g{counter}", "MUX2_X1",
                [current[i], current[(i - amount) % width], selects[stage]],
                out,
            )
            counter += 1
            nxt.append(out)
        current = nxt
    for i, net in enumerate(current):
        out = f"q{i}"
        circuit.add_gate(f"g{counter}", "BUF_X1", [net], out)
        counter += 1
        circuit.add_output(out)
    return circuit


_C17_BENCH = """\
# c17 (ISCAS'85)
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
"""


def c17() -> Circuit:
    """The ISCAS'85 c17 benchmark (6 NAND2 gates)."""
    return parse_bench(_C17_BENCH, name="c17")
