"""Full-scan designs: the sequential wrapper around the combinational core.

The paper's benchmarks are sequential designs with "all sequential
elements removed assuming full scan".  This module keeps the removed
information: which pseudo primary input (a flip-flop's Q) pairs with
which pseudo primary output (its D), in scan-chain order.  That is what
turns the combinational core back into a *testable sequential design*:

* **launch-on-capture (LOC)** — scan in a state, pulse the clock twice:
  the first capture computes the next state, whose update launches the
  transitions of the second cycle.  ``v1 = (PI, S)``,
  ``v2 = (PI, nextstate(PI, S))`` — exactly the broadside transition
  pattern pairs the paper's ATPG produces.
* **launch-on-shift (LOS)** — the last shift of the scan chain launches:
  ``v2``'s state is ``v1``'s state shifted by one position with a new
  scan-in bit.

Both constructions yield ordinary :class:`PatternPair` objects, so every
simulator and analysis in this library applies unchanged.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.cells.library import CellLibrary
from repro.errors import NetlistError, ParseError
from repro.netlist.bench import parse_bench
from repro.netlist.circuit import Circuit
from repro.simulation.base import PatternPair
from repro.simulation.zero_delay import ZeroDelaySimulator

__all__ = ["ScanDesign", "parse_scan_bench", "counter_bench"]

_DFF_RE = re.compile(r"^\s*(?P<q>\S+)\s*=\s*DFF\s*\(\s*(?P<d>[^)\s]+)\s*\)\s*$")


@dataclass
class ScanDesign:
    """A combinational core plus its scan-chain bookkeeping.

    Attributes
    ----------
    core:
        The full-scan-transformed combinational circuit (flop Q nets are
        pseudo primary inputs, D nets pseudo primary outputs).
    flops:
        ``(q_net, d_net)`` per flip-flop, in scan-chain order.
    """

    core: Circuit
    flops: List[Tuple[str, str]]

    def __post_init__(self) -> None:
        inputs = set(self.core.inputs)
        outputs = set(self.core.outputs)
        for q_net, d_net in self.flops:
            if q_net not in inputs:
                raise NetlistError(f"flop Q net {q_net!r} is not a core input")
            if d_net not in outputs:
                raise NetlistError(f"flop D net {d_net!r} is not a core output")

    # -- structure ----------------------------------------------------------------

    @property
    def num_flops(self) -> int:
        return len(self.flops)

    @property
    def primary_inputs(self) -> List[str]:
        """True PIs (core inputs that are not flop Q nets)."""
        pseudo = {q for q, _ in self.flops}
        return [net for net in self.core.inputs if net not in pseudo]

    @property
    def primary_outputs(self) -> List[str]:
        """True POs (core outputs that are not flop D nets)."""
        pseudo = {d for _, d in self.flops}
        return [net for net in self.core.outputs if net not in pseudo]

    # -- vector packing --------------------------------------------------------------

    def pack(self, pi_bits: np.ndarray, state_bits: np.ndarray) -> np.ndarray:
        """Assemble a full core input vector from PI bits + scan state."""
        pi_bits = np.asarray(pi_bits, dtype=np.uint8)
        state_bits = np.asarray(state_bits, dtype=np.uint8)
        if pi_bits.size != len(self.primary_inputs):
            raise NetlistError(
                f"expected {len(self.primary_inputs)} PI bits, "
                f"got {pi_bits.size}")
        if state_bits.size != self.num_flops:
            raise NetlistError(
                f"expected {self.num_flops} state bits, got {state_bits.size}")
        by_net: Dict[str, int] = {}
        for net, bit in zip(self.primary_inputs, pi_bits):
            by_net[net] = int(bit)
        for (q_net, _), bit in zip(self.flops, state_bits):
            by_net[q_net] = int(bit)
        return np.asarray([by_net[net] for net in self.core.inputs],
                          dtype=np.uint8)

    def next_state(self, simulator: ZeroDelaySimulator,
                   pi_bits: np.ndarray, state_bits: np.ndarray) -> np.ndarray:
        """The state captured after one functional clock."""
        vector = self.pack(pi_bits, state_bits)[None, :]
        d_nets = [d for _, d in self.flops]
        values = simulator.evaluate(vector, nets=d_nets)
        return np.asarray([values[d][0] for d in d_nets], dtype=np.uint8)

    # -- pattern construction -----------------------------------------------------------

    def launch_on_capture(self, simulator: ZeroDelaySimulator,
                          pi_bits: np.ndarray,
                          state_bits: np.ndarray) -> PatternPair:
        """Broadside (LOC) transition pattern pair from one scan state."""
        state2 = self.next_state(simulator, pi_bits, state_bits)
        return PatternPair(
            v1=self.pack(pi_bits, state_bits),
            v2=self.pack(pi_bits, state2),
        )

    def launch_on_shift(self, pi_bits: np.ndarray, state_bits: np.ndarray,
                        scan_in: int) -> PatternPair:
        """Skewed-load (LOS) pair: the launch is the last shift.

        The chain shifts toward higher positions: flop ``k`` receives
        flop ``k−1``'s value, flop 0 receives ``scan_in``.
        """
        state_bits = np.asarray(state_bits, dtype=np.uint8)
        if state_bits.size != self.num_flops:
            raise NetlistError("state width mismatch")
        shifted = np.empty_like(state_bits)
        shifted[0] = scan_in
        shifted[1:] = state_bits[:-1]
        return PatternPair(
            v1=self.pack(pi_bits, state_bits),
            v2=self.pack(pi_bits, shifted),
        )

    def random_loc_patterns(self, library: CellLibrary, count: int,
                            seed: int = 0) -> List[PatternPair]:
        """Random-state LOC pattern pairs (the functional launch set)."""
        simulator = ZeroDelaySimulator(self.core, library)
        rng = np.random.default_rng(seed)
        pairs: List[PatternPair] = []
        for _ in range(count):
            pi_bits = rng.integers(0, 2, size=len(self.primary_inputs),
                                   dtype=np.uint8)
            state = rng.integers(0, 2, size=self.num_flops, dtype=np.uint8)
            pairs.append(self.launch_on_capture(simulator, pi_bits, state))
        return pairs


def parse_scan_bench(text: str, name: str = "bench",
                     strength: int = 1) -> ScanDesign:
    """Parse a sequential ``.bench`` and keep the scan bookkeeping.

    The combinational core is produced by the ordinary full-scan
    transform of :func:`repro.netlist.bench.parse_bench`; additionally
    every ``q = DFF(d)`` line is recorded as a ``(q, d)`` scan-chain
    element (chain order = appearance order).
    """
    flops: List[Tuple[str, str]] = []
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        match = _DFF_RE.match(line)
        if match:
            flops.append((match.group("q"), match.group("d")))
    core = parse_bench(text, name=name, strength=strength)
    if not flops:
        raise ParseError("no DFFs found; use parse_bench for combinational designs")
    return ScanDesign(core=core, flops=flops)


def counter_bench(bits: int) -> str:
    """``.bench`` text of an up-counter with enable (a sequential DUT).

    ``count[k] <= count[k] XOR carry[k]`` with ``carry[0] = en`` and
    ``carry[k] = carry[k−1] AND count[k−1]``.
    """
    if bits < 1:
        raise ValueError("bits must be >= 1")
    lines = ["# up-counter", "INPUT(en)"]
    for k in range(bits):
        lines.append(f"OUTPUT(out{k})")
    for k in range(bits):
        lines.append(f"q{k} = DFF(d{k})")
    lines.append("carry0 = BUFF(en)")
    for k in range(1, bits):
        lines.append(f"carry{k} = AND(carry{k-1}, q{k-1})")
    for k in range(bits):
        lines.append(f"d{k} = XOR(q{k}, carry{k})")
        lines.append(f"out{k} = BUFF(q{k})")
    return "\n".join(lines) + "\n"
