"""Circuit statistics (Table I columns 1–2 and general reporting)."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict

from repro.netlist.circuit import Circuit

__all__ = ["CircuitStats", "circuit_stats"]


@dataclass(frozen=True)
class CircuitStats:
    """Summary statistics of a circuit.

    ``nodes`` counts cells + primary inputs + primary outputs, matching
    how Table I reports circuit size.
    """

    name: str
    num_inputs: int
    num_outputs: int
    num_gates: int
    nodes: int
    depth: int
    max_fanout: int
    avg_fanout: float
    avg_fanin: float
    cells_by_family: Dict[str, int]

    def summary(self) -> str:
        return (
            f"{self.name}: {self.nodes} nodes ({self.num_inputs} PI, "
            f"{self.num_gates} cells, {self.num_outputs} PO), "
            f"depth {self.depth}, max fanout {self.max_fanout}"
        )


def circuit_stats(circuit: Circuit) -> CircuitStats:
    """Compute :class:`CircuitStats` for a circuit."""
    fanout = circuit.fanout()
    fanout_counts = [len(readers) for readers in fanout.values()]
    fanin_counts = [len(gate.inputs) for gate in circuit.gates]
    families: Counter = Counter()
    for gate in circuit.gates:
        family = gate.cell.rsplit("_X", 1)[0]
        families[family] += 1
    return CircuitStats(
        name=circuit.name,
        num_inputs=len(circuit.inputs),
        num_outputs=len(circuit.outputs),
        num_gates=circuit.num_gates,
        nodes=circuit.num_nodes,
        depth=circuit.depth,
        max_fanout=max(fanout_counts, default=0),
        avg_fanout=(sum(fanout_counts) / len(fanout_counts)) if fanout_counts else 0.0,
        avg_fanin=(sum(fanin_counts) / len(fanin_counts)) if fanin_counts else 0.0,
        cells_by_family=dict(families),
    )
