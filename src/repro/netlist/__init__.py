"""Netlist substrate: circuit graphs, parsers, writers and generators."""

from repro.netlist.circuit import Circuit, Gate
from repro.netlist.bench import parse_bench, write_bench
from repro.netlist.verilog import parse_verilog, write_verilog
from repro.netlist.sdf import write_sdf, parse_sdf, SdfAnnotation
from repro.netlist.spef import write_spef, parse_spef
from repro.netlist.generate import (
    random_circuit,
    ripple_carry_adder,
    array_multiplier,
    parity_tree,
    c17,
)
from repro.netlist.suite import BENCHMARK_SUITE, build_suite_circuit
from repro.netlist.scan import ScanDesign, counter_bench, parse_scan_bench
from repro.netlist.liberty import parse_liberty, write_liberty
from repro.netlist.stats import CircuitStats, circuit_stats

__all__ = [
    "Circuit",
    "Gate",
    "parse_bench",
    "write_bench",
    "parse_verilog",
    "write_verilog",
    "write_sdf",
    "parse_sdf",
    "SdfAnnotation",
    "write_spef",
    "parse_spef",
    "random_circuit",
    "ripple_carry_adder",
    "array_multiplier",
    "parity_tree",
    "c17",
    "BENCHMARK_SUITE",
    "build_suite_circuit",
    "ScanDesign",
    "counter_bench",
    "parse_scan_bench",
    "parse_liberty",
    "write_liberty",
    "CircuitStats",
    "circuit_stats",
]
