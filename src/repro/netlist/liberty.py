"""Liberty (.lib) export of characterized timing — per-voltage views.

Conventional multi-voltage methodology needs one characterized Liberty
library *per operating point* (the scalability problem the paper's
polynomial kernels solve).  This module generates exactly those views
from a single :class:`~repro.core.characterization.LibraryCharacterization`:
``write_liberty(characterization, voltage=0.6)`` emits a ``.lib`` whose
``cell_rise`` / ``cell_fall`` tables hold the kernel-predicted delays at
that voltage over the load axis.

The emitted subset is the classic NLDM structure::

    library (nangate15_0v80) {
      time_unit : "1ps";
      capacitive_load_unit (1, ff);
      lu_table_template (delay_load_8) {
        variable_1 : total_output_net_capacitance;
        index_1 ("0.5, 1, 2, ...");
      }
      cell (NAND2_X1) {
        pin (A1) { direction : input; capacitance : 0.60; }
        pin (ZN) {
          direction : output;
          timing () {
            related_pin : "A1";
            cell_rise (delay_load_8) { values ("12.3, 13.1, ..."); }
            cell_fall (delay_load_8) { values ("10.9, 11.5, ..."); }
          }
        }
      }
    }

A matching reader recovers the numbers for round-trip testing and for
comparing per-voltage views against the live polynomial kernels.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

import numpy as np

from repro.cells.cell import DrivePolarity
from repro.core.characterization import LibraryCharacterization
from repro.errors import ParseError
from repro.units import FF, PS

__all__ = ["write_liberty", "parse_liberty"]

#: Number of load points in the emitted NLDM tables.
TABLE_POINTS = 8


def _library_name(base: str, voltage: float) -> str:
    return f"{base}_{voltage:.2f}v".replace(".", "p")


def write_liberty(
    characterization: LibraryCharacterization,
    voltage: Optional[float] = None,
    table_points: int = TABLE_POINTS,
) -> str:
    """Emit a Liberty view of the characterized library at one voltage.

    ``voltage`` defaults to the characterization's nominal supply.
    Delay values come from the fitted polynomial kernels (Eq. 9), i.e.
    the view is exactly what the simulator would compute — which is the
    point: one characterization feeds arbitrarily many Liberty corners.
    """
    space = characterization.space
    voltage = space.v_nom if voltage is None else voltage
    if not space.v_min <= voltage <= space.v_max:
        raise ParseError(
            f"voltage {voltage} outside characterized range "
            f"[{space.v_min}, {space.v_max}]"
        )
    loads = space.load_grid(table_points)
    load_text = ", ".join(f"{c / FF:.4g}" for c in loads)

    lines: List[str] = [
        f"library ({_library_name(characterization.library.name, voltage)}) {{",
        '  time_unit : "1ps";',
        "  capacitive_load_unit (1, ff);",
        f"  voltage_map (VDD, {voltage:.2f});",
        f"  lu_table_template (delay_load_{table_points}) {{",
        "    variable_1 : total_output_net_capacitance;",
        f'    index_1 ("{load_text}");',
        "  }",
    ]
    for cell in characterization.library:
        lines.append(f"  cell ({cell.name}) {{")
        for pin in sorted(cell.pins, key=lambda p: p.index):
            lines.append(f"    pin ({pin.name}) {{")
            lines.append("      direction : input;")
            lines.append(f"      capacitance : {pin.input_cap / FF:.4f};")
            lines.append("    }")
        lines.append(f"    pin ({cell.output}) {{")
        lines.append("      direction : output;")
        for pin in sorted(cell.pins, key=lambda p: p.index):
            rise_entry = characterization.entry(cell.name, pin.name,
                                                DrivePolarity.RISE)
            fall_entry = characterization.entry(cell.name, pin.name,
                                                DrivePolarity.FALL)
            rise = np.asarray([rise_entry.delay(voltage, c) for c in loads])
            fall = np.asarray([fall_entry.delay(voltage, c) for c in loads])
            rise_text = ", ".join(f"{d / PS:.4f}" for d in rise)
            fall_text = ", ".join(f"{d / PS:.4f}" for d in fall)
            lines.append("      timing () {")
            lines.append(f'        related_pin : "{pin.name}";')
            lines.append(f"        cell_rise (delay_load_{table_points}) "
                         f'{{ values ("{rise_text}"); }}')
            lines.append(f"        cell_fall (delay_load_{table_points}) "
                         f'{{ values ("{fall_text}"); }}')
            lines.append("      }")
        lines.append("    }")
        lines.append("  }")
    lines.append("}")
    return "\n".join(lines) + "\n"


_LIB_RE = re.compile(r"library\s*\(\s*(?P<name>[\w]+)\s*\)")
_INDEX_RE = re.compile(r'index_1\s*\(\s*"(?P<values>[^"]*)"\s*\)')
_CELL_RE = re.compile(r"cell\s*\(\s*(?P<name>[\w]+)\s*\)")
_PIN_RE = re.compile(r"pin\s*\(\s*(?P<name>[\w]+)\s*\)")
_RELATED_RE = re.compile(r'related_pin\s*:\s*"(?P<pin>[\w]+)"')
_VALUES_RE = re.compile(
    r'cell_(?P<edge>rise|fall)\s*\([\w]+\)\s*\{\s*values\s*\(\s*"(?P<values>[^"]*)"'
)
_CAP_RE = re.compile(r"capacitance\s*:\s*(?P<value>[\d.eE+-]+)")


def parse_liberty(text: str, filename: str = "<liberty>") -> Dict[str, dict]:
    """Parse the emitted Liberty subset back into plain data.

    Returns a dictionary::

        {
          "__name__": str,
          "__loads__": np.ndarray,          # farads
          "<cell>": {
            "pins": {pin: capacitance_farads},
            "timing": {pin: {"rise": np.ndarray, "fall": np.ndarray}},
          },
        }
    """
    if "library" not in text:
        raise ParseError("not a Liberty file", filename=filename)
    lib_match = _LIB_RE.search(text)
    if not lib_match:
        raise ParseError("missing library() header", filename=filename)
    index_match = _INDEX_RE.search(text)
    if not index_match:
        raise ParseError("missing lu_table_template index_1",
                         filename=filename)
    loads = np.asarray(
        [float(v) * FF for v in index_match.group("values").split(",")]
    )
    result: Dict[str, dict] = {
        "__name__": lib_match.group("name"),
        "__loads__": loads,
    }

    cell_matches = list(_CELL_RE.finditer(text))
    for position, cell_match in enumerate(cell_matches):
        end = (cell_matches[position + 1].start()
               if position + 1 < len(cell_matches) else len(text))
        body = text[cell_match.end():end]
        pins: Dict[str, float] = {}
        pin_matches = list(_PIN_RE.finditer(body))
        for pin_pos, pin_match in enumerate(pin_matches):
            pin_end = (pin_matches[pin_pos + 1].start()
                       if pin_pos + 1 < len(pin_matches) else len(body))
            pin_body = body[pin_match.end():pin_end]
            cap_match = _CAP_RE.search(pin_body)
            if cap_match and "direction : input" in pin_body:
                pins[pin_match.group("name")] = float(cap_match.group("value")) * FF
        timing: Dict[str, Dict[str, np.ndarray]] = {}
        related_iter = list(_RELATED_RE.finditer(body))
        value_iter = list(_VALUES_RE.finditer(body))
        value_pos = 0
        for related in related_iter:
            arcs: Dict[str, np.ndarray] = {}
            while value_pos < len(value_iter) and len(arcs) < 2:
                match = value_iter[value_pos]
                arcs[match.group("edge")] = np.asarray(
                    [float(v) * PS for v in match.group("values").split(",")]
                )
                value_pos += 1
            timing[related.group("pin")] = arcs
        result[cell_match.group("name")] = {"pins": pins, "timing": timing}
    return result
