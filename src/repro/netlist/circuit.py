"""Combinational circuit graph with levelization (paper Fig. 2, step 1).

A :class:`Circuit` is a directed acyclic graph of cell instances
connected by named nets.  Following the paper's experimental setup, all
circuits are purely combinational (sequential elements removed assuming
full scan): primary inputs drive the graph, primary outputs observe nets.

Levelization assigns every gate the length of the longest path from any
primary input; all gates of one level are structurally independent and
can be evaluated concurrently — the *vertical* dimension of the GPU
thread grid (Sec. IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.cells.library import CellLibrary
from repro.errors import NetlistError

__all__ = ["Gate", "Circuit"]

#: Default interconnect capacitance added per fanout branch (farads).
#: Stands in for the SPEF wire parasitics of a routed design.
WIRE_CAP_PER_FANOUT = 0.20e-15

#: Capacitive load presented by a primary-output port.
OUTPUT_PORT_CAP = 2.0e-15


@dataclass(frozen=True)
class Gate:
    """One cell instance.

    Attributes
    ----------
    name:
        Unique instance name (``u42``).
    cell:
        Library cell-type name (``NAND2_X1``).
    inputs:
        Driven input nets in cell pin order.
    output:
        The net driven by this gate's output pin.
    """

    name: str
    cell: str
    inputs: Tuple[str, ...]
    output: str


class Circuit:
    """A named combinational netlist.

    Nets are identified by strings.  Every net has exactly one driver —
    either a primary input or a gate output.  Gates are stored in
    insertion order; :meth:`levelize` derives the level structure used by
    the simulators.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.inputs: List[str] = []
        self.outputs: List[str] = []
        self.gates: List[Gate] = []
        self._driver: Dict[str, Optional[Gate]] = {}
        self._gate_index: Dict[str, int] = {}
        self._levels: Optional[List[List[int]]] = None

    # -- construction ------------------------------------------------------------

    def add_input(self, net: str) -> str:
        """Declare a primary input driving net ``net``."""
        self._check_undriven(net)
        self.inputs.append(net)
        self._driver[net] = None
        self._levels = None
        return net

    def add_gate(self, name: str, cell: str, inputs: Sequence[str], output: str) -> Gate:
        """Instantiate a cell.

        Input nets need not be driven yet (forward references are fine);
        :meth:`validate` checks completeness.
        """
        if name in self._gate_index:
            raise NetlistError(f"{self.name}: duplicate gate name {name!r}")
        self._check_undriven(output)
        gate = Gate(name=name, cell=cell, inputs=tuple(inputs), output=output)
        self._gate_index[name] = len(self.gates)
        self.gates.append(gate)
        self._driver[output] = gate
        self._levels = None
        return gate

    def add_output(self, net: str) -> str:
        """Mark ``net`` as a primary output."""
        if net in self.outputs:
            raise NetlistError(f"{self.name}: duplicate output {net!r}")
        self.outputs.append(net)
        return net

    def _check_undriven(self, net: str) -> None:
        if net in self._driver:
            raise NetlistError(f"{self.name}: net {net!r} already driven")

    # -- queries -------------------------------------------------------------------

    @property
    def num_gates(self) -> int:
        return len(self.gates)

    @property
    def num_nodes(self) -> int:
        """Node count the way Table I counts: cells + inputs + outputs."""
        return len(self.gates) + len(self.inputs) + len(self.outputs)

    def nets(self) -> List[str]:
        """All driven nets (inputs first, then gate outputs in order)."""
        return list(self._driver)

    def gate(self, name: str) -> Gate:
        try:
            return self.gates[self._gate_index[name]]
        except KeyError:
            raise NetlistError(f"{self.name}: no gate named {name!r}") from None

    def driver(self, net: str) -> Optional[Gate]:
        """The gate driving ``net``; ``None`` for primary inputs."""
        try:
            return self._driver[net]
        except KeyError:
            raise NetlistError(f"{self.name}: net {net!r} is undriven") from None

    def is_input(self, net: str) -> bool:
        return net in self._driver and self._driver[net] is None

    def fanout(self) -> Dict[str, List[Tuple[Gate, int]]]:
        """Map net → list of (sink gate, pin index) pairs."""
        result: Dict[str, List[Tuple[Gate, int]]] = {net: [] for net in self._driver}
        for gate in self.gates:
            for pin_index, net in enumerate(gate.inputs):
                if net not in result:
                    raise NetlistError(
                        f"{self.name}: gate {gate.name} reads undriven net {net!r}"
                    )
                result[net].append((gate, pin_index))
        return result

    # -- validation -------------------------------------------------------------------

    def validate(self, library: Optional[CellLibrary] = None) -> None:
        """Check structural well-formedness; raise :class:`NetlistError`.

        With a library, also checks that every instance's cell exists and
        its pin count matches the cell arity.
        """
        for gate in self.gates:
            for net in gate.inputs:
                if net not in self._driver:
                    raise NetlistError(
                        f"{self.name}: gate {gate.name} reads undriven net {net!r}"
                    )
            if library is not None:
                cell = library[gate.cell]
                if cell.num_inputs != len(gate.inputs):
                    raise NetlistError(
                        f"{self.name}: gate {gate.name} connects "
                        f"{len(gate.inputs)} nets to {cell.name} "
                        f"({cell.num_inputs} pins)"
                    )
        for net in self.outputs:
            if net not in self._driver:
                raise NetlistError(f"{self.name}: output net {net!r} is undriven")
        if not self.outputs:
            raise NetlistError(f"{self.name}: circuit has no outputs")
        self.levelize()  # raises on combinational cycles

    # -- levelization --------------------------------------------------------------------

    def levelize(self) -> List[List[int]]:
        """Topological levels as lists of gate indices.

        Level of a gate = 1 + max level of its input drivers; primary
        inputs sit at level 0.  Cached until the circuit changes.
        """
        if self._levels is not None:
            return self._levels
        level_of_net: Dict[str, int] = {net: 0 for net in self.inputs}
        indegree: Dict[int, int] = {}
        sinks: Dict[str, List[int]] = {}
        for index, gate in enumerate(self.gates):
            pending = 0
            for net in gate.inputs:
                if self._driver.get(net) is not None:
                    pending += 1
                    sinks.setdefault(net, []).append(index)
            indegree[index] = pending
        ready = [i for i, d in indegree.items() if d == 0]
        order: List[int] = []
        gate_level: Dict[int, int] = {}
        while ready:
            next_ready: List[int] = []
            for index in ready:
                gate = self.gates[index]
                level = 1 + max(
                    (level_of_net.get(net, 0) for net in gate.inputs), default=0
                )
                gate_level[index] = level
                level_of_net[gate.output] = level
                order.append(index)
                for sink in sinks.get(gate.output, ()):
                    indegree[sink] -= 1
                    if indegree[sink] == 0:
                        next_ready.append(sink)
            ready = next_ready
        if len(order) != len(self.gates):
            cyclic = [self.gates[i].name for i, d in indegree.items() if d > 0]
            raise NetlistError(
                f"{self.name}: combinational cycle involving {cyclic[:5]}"
            )
        depth = max(gate_level.values(), default=0)
        levels: List[List[int]] = [[] for _ in range(depth)]
        for index, level in gate_level.items():
            levels[level - 1].append(index)
        for bucket in levels:
            bucket.sort()
        self._levels = levels
        return levels

    @property
    def depth(self) -> int:
        """Logic depth: number of gate levels."""
        return len(self.levelize())

    def topological_gates(self) -> Iterator[Gate]:
        """Gates in level order (a valid evaluation order)."""
        for bucket in self.levelize():
            for index in bucket:
                yield self.gates[index]

    # -- electrical annotation ------------------------------------------------------------

    def net_loads(
        self,
        library: CellLibrary,
        wire_cap_per_fanout: float = WIRE_CAP_PER_FANOUT,
        output_port_cap: float = OUTPUT_PORT_CAP,
    ) -> Dict[str, float]:
        """Capacitive load of every net (the ``c`` parameter of its driver).

        Load = Σ input capacitance of sink pins + wire capacitance per
        fanout branch + port capacitance for primary outputs.  This
        derives the same quantity a SPEF file would annotate.
        """
        fanout = self.fanout()
        loads: Dict[str, float] = {}
        output_set = set(self.outputs)
        for net, sinks in fanout.items():
            load = 0.0
            for gate, pin_index in sinks:
                cell = library[gate.cell]
                load += cell.pins[pin_index].input_cap
            load += wire_cap_per_fanout * len(sinks)
            if net in output_set:
                load += output_port_cap
            if load == 0.0:
                # Dangling internal net: model the minimum wire stub.
                load = wire_cap_per_fanout
            loads[net] = load
        return loads

    # -- misc -------------------------------------------------------------------------------

    def copy(self, name: Optional[str] = None) -> "Circuit":
        clone = Circuit(name or self.name)
        for net in self.inputs:
            clone.add_input(net)
        for gate in self.gates:
            clone.add_gate(gate.name, gate.cell, gate.inputs, gate.output)
        for net in self.outputs:
            clone.add_output(net)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Circuit({self.name!r}, {len(self.inputs)} inputs, "
            f"{len(self.gates)} gates, {len(self.outputs)} outputs)"
        )
