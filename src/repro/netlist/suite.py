"""The paper's benchmark-suite registry (Table I circuits, scaled).

The paper evaluates 15 circuits from ISCAS'89, ITC'99 and an industrial
set, spanning 18 999 – 1 090 419 nodes.  The original netlists (and the
commercial synthesis flow that mapped them to NanGate 15 nm) are not
redistributable, so each suite entry records the *paper's* statistics and
a deterministic generator recipe that produces a synthetic stand-in with
the same name and a scaled node count.

``scale`` controls the node budget: ``scale=1.0`` regenerates circuits at
the paper's full sizes (minutes of pure-Python simulation), the default
``DEFAULT_SCALE`` keeps the whole Table I/II run tractable on one CPU.
The scaling is honest — Table I's *trend* (speedup growing with circuit
size) only needs sizes spanning orders of magnitude, which the scaled
suite preserves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.netlist.circuit import Circuit
from repro.netlist.generate import random_circuit

__all__ = ["SuiteEntry", "BENCHMARK_SUITE", "build_suite_circuit", "DEFAULT_SCALE"]

#: Default node-count scale for experiments (1/50 of the paper's sizes).
DEFAULT_SCALE = 0.02


@dataclass(frozen=True)
class SuiteEntry:
    """Registry record for one paper benchmark circuit.

    Attributes
    ----------
    paper_nodes:
        Node count reported in Table I column 2.
    paper_pairs:
        Test pattern-pair count from Table I column 3.
    false_paths_only:
        The ``*`` footnote: all reported longest paths targeted by the
        timing-aware ATPG were false paths, so no extra patterns were
        added to the transition-fault set.
    family:
        Benchmark family (``iscas89``, ``itc99``, ``industrial``).
    """

    name: str
    paper_nodes: int
    paper_pairs: int
    false_paths_only: bool
    family: str
    seed: int


_ENTRIES: Tuple[SuiteEntry, ...] = (
    SuiteEntry("s38417", 18999, 173, False, "iscas89", 38417),
    SuiteEntry("s38584", 23053, 194, False, "iscas89", 38584),
    SuiteEntry("b17", 42779, 818, True, "itc99", 1700),
    SuiteEntry("b18", 125305, 961, True, "itc99", 1800),
    SuiteEntry("b19", 250232, 1916, True, "itc99", 1900),
    SuiteEntry("b22", 27847, 692, False, "itc99", 2200),
    SuiteEntry("p35k", 47997, 3298, False, "industrial", 35),
    SuiteEntry("p45k", 44098, 2320, False, "industrial", 45),
    SuiteEntry("p100k", 96172, 2211, False, "industrial", 100),
    SuiteEntry("p141k", 178063, 995, False, "industrial", 141),
    SuiteEntry("p418k", 440277, 1516, False, "industrial", 418),
    SuiteEntry("p500k", 527006, 3820, False, "industrial", 500),
    SuiteEntry("p533k", 676611, 1940, False, "industrial", 533),
    SuiteEntry("p951k", 1090419, 4080, False, "industrial", 951),
    SuiteEntry("p1522k", 1088421, 8021, True, "industrial", 1522),
)

#: Registry keyed by circuit name (insertion order = Table I row order).
BENCHMARK_SUITE: Dict[str, SuiteEntry] = {entry.name: entry for entry in _ENTRIES}


def build_suite_circuit(
    name: str,
    scale: float = DEFAULT_SCALE,
    min_gates: int = 64,
    target_depth: Optional[int] = None,
) -> Circuit:
    """Generate the scaled synthetic stand-in for a suite circuit.

    Parameters
    ----------
    scale:
        Fraction of the paper's node count to generate.
    min_gates:
        Floor on gate count so tiny scales stay meaningful.
    """
    try:
        entry = BENCHMARK_SUITE[name]
    except KeyError:
        raise KeyError(
            f"unknown suite circuit {name!r}; known: {', '.join(BENCHMARK_SUITE)}"
        ) from None
    if scale <= 0:
        raise ValueError("scale must be positive")
    target_nodes = max(int(entry.paper_nodes * scale), min_gates + 16)
    num_inputs = max(8, int(target_nodes * 0.08))
    num_gates = max(min_gates, target_nodes - num_inputs - int(target_nodes * 0.06))
    return random_circuit(
        name=name,
        num_inputs=num_inputs,
        num_gates=num_gates,
        seed=entry.seed,
        target_depth=target_depth,
    )


def scaled_pattern_count(name: str, scale: float = DEFAULT_SCALE,
                         minimum: int = 16) -> int:
    """Pattern-pair budget for a scaled run.

    Patterns are scaled more gently than nodes (factor ``5·scale``,
    capped at 1): halving the circuit does not halve how many patterns a
    validation campaign needs, and the slot plane must stay wide enough
    for the parallel engine to amortize — the same reason the paper
    simulates full pattern sets.
    """
    entry = BENCHMARK_SUITE[name]
    factor = min(1.0, 5.0 * scale)
    return max(minimum, int(entry.paper_pairs * factor))
