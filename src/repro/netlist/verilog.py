"""Minimal structural Verilog reader and writer.

Supports the single-module, named-port-connection netlist style that
synthesis tools emit::

    module s27 (G0, G1, G17);
      input G0, G1;
      output G17;
      wire n1, n2;

      NAND2_X1 u1 (.A1(G0), .A2(G1), .ZN(n1));
      INV_X2   u2 (.A(n1), .ZN(G17));
    endmodule

Pin names are resolved against a cell library so instances can list
connections in any order.  Behavioral constructs are rejected.
"""

from __future__ import annotations

import re
from typing import Dict, List

from repro.cells.library import CellLibrary
from repro.errors import ParseError
from repro.netlist.circuit import Circuit

__all__ = ["parse_verilog", "write_verilog"]

_MODULE_RE = re.compile(r"module\s+(?P<name>\w+)\s*\((?P<ports>[^)]*)\)\s*;", re.S)
_DECL_RE = re.compile(r"(?P<kind>input|output|wire)\s+(?P<nets>[^;]+);")
_INSTANCE_RE = re.compile(
    r"(?P<cell>\w+)\s+(?P<inst>\w+)\s*\(\s*(?P<conns>\.[^;]*)\)\s*;", re.S
)
_CONN_RE = re.compile(r"\.\s*(?P<pin>\w+)\s*\(\s*(?P<net>[\w\[\]\.]*)\s*\)")
_RANGE_RE = re.compile(r"\[\s*\d+\s*:\s*\d+\s*\]")


def _strip_comments(text: str) -> str:
    text = re.sub(r"//[^\n]*", "", text)
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.S)
    return text


def parse_verilog(text: str, library: CellLibrary,
                  filename: str = "<verilog>") -> Circuit:
    """Parse structural Verilog into a :class:`Circuit`."""
    text = _strip_comments(text)
    module = _MODULE_RE.search(text)
    if not module:
        raise ParseError("no module declaration found", filename=filename)
    circuit = Circuit(module.group("name"))
    body = text[module.end():]
    end = body.find("endmodule")
    if end < 0:
        raise ParseError("missing endmodule", filename=filename)
    body = body[:end]

    declared: Dict[str, str] = {}
    for decl in _DECL_RE.finditer(body):
        kind = decl.group("kind")
        nets_text = _RANGE_RE.sub("", decl.group("nets"))
        for net in (n.strip() for n in nets_text.split(",")):
            if not net:
                continue
            if net in declared:
                raise ParseError(f"net {net!r} declared twice", filename=filename)
            declared[net] = kind
            if kind == "input":
                circuit.add_input(net)

    instance_body = _DECL_RE.sub("", body)
    for match in _INSTANCE_RE.finditer(instance_body):
        cell_name = match.group("cell")
        inst = match.group("inst")
        cell = library.get(cell_name)
        if cell is None:
            raise ParseError(f"instance {inst}: unknown cell {cell_name!r}",
                             filename=filename)
        conns: Dict[str, str] = {}
        for conn in _CONN_RE.finditer(match.group("conns")):
            conns[conn.group("pin")] = conn.group("net")
        if cell.output not in conns:
            raise ParseError(
                f"instance {inst}: output pin {cell.output} unconnected",
                filename=filename)
        ordered_inputs: List[str] = []
        for pin in sorted(cell.pins, key=lambda p: p.index):
            if pin.name not in conns:
                raise ParseError(
                    f"instance {inst}: input pin {pin.name} unconnected",
                    filename=filename)
            ordered_inputs.append(conns[pin.name])
        extra = set(conns) - {p.name for p in cell.pins} - {cell.output}
        if extra:
            raise ParseError(
                f"instance {inst}: unknown pins {sorted(extra)}",
                filename=filename)
        circuit.add_gate(inst, cell_name, ordered_inputs, conns[cell.output])

    for net, kind in declared.items():
        if kind == "output":
            circuit.add_output(net)
    return circuit


def write_verilog(circuit: Circuit, library: CellLibrary) -> str:
    """Serialize a circuit as structural Verilog."""
    ports = circuit.inputs + circuit.outputs
    lines = [f"module {circuit.name} ({', '.join(ports)});"]
    if circuit.inputs:
        lines.append(f"  input {', '.join(circuit.inputs)};")
    if circuit.outputs:
        lines.append(f"  output {', '.join(circuit.outputs)};")
    port_set = set(ports)
    wires = [g.output for g in circuit.gates if g.output not in port_set]
    if wires:
        lines.append(f"  wire {', '.join(wires)};")
    lines.append("")
    for gate in circuit.gates:
        cell = library[gate.cell]
        conns = [
            f".{pin.name}({net})"
            for pin, net in zip(sorted(cell.pins, key=lambda p: p.index), gate.inputs)
        ]
        conns.append(f".{cell.output}({gate.output})")
        lines.append(f"  {gate.cell} {gate.name} ({', '.join(conns)});")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"
