"""ISCAS-89 ``.bench`` netlist reader and writer.

The ``.bench`` format describes gate-level circuits as::

    # comment
    INPUT(G0)
    OUTPUT(G17)
    G10 = NAND(G0, G1)
    G17 = NOT(G10)

The reader maps the generic bench gate types onto library cells
(``NAND`` with two fanins → ``NAND2_X1`` …).  Gates with more fanins than
the library supports are decomposed into balanced trees, exactly what a
technology mapper would do.  ``DFF`` gates are handled the full-scan way
the paper describes: the flip-flop is removed, its input becomes a
primary (pseudo) output and its output a primary (pseudo) input.
"""

from __future__ import annotations

import re
from typing import Dict, List, Sequence, Tuple

from repro.errors import ParseError
from repro.netlist.circuit import Circuit

__all__ = ["parse_bench", "write_bench"]

#: bench gate type → (library family prefix, max native arity)
_BENCH_FAMILIES: Dict[str, Tuple[str, int]] = {
    "AND": ("AND", 4),
    "OR": ("OR", 4),
    "NAND": ("NAND", 4),
    "NOR": ("NOR", 4),
    "XOR": ("XOR", 2),
    "XNOR": ("XNOR", 2),
    "NOT": ("INV", 1),
    "INV": ("INV", 1),
    "BUF": ("BUF", 1),
    "BUFF": ("BUF", 1),
}

_LINE_RE = re.compile(
    r"^(?:(?P<decl>INPUT|OUTPUT)\s*\(\s*(?P<decl_net>[^)\s]+)\s*\)"
    r"|(?P<out>\S+)\s*=\s*(?P<type>[A-Za-z]+)\s*\(\s*(?P<ins>[^)]*)\)\s*)$"
)


def _cell_name(family: str, arity: int, strength: int) -> str:
    if family in ("INV", "BUF"):
        return f"{family}_X{strength}"
    if family in ("XOR", "XNOR"):
        return f"{family}{arity}_X{strength}"
    return f"{family}{arity}_X{strength}"


def parse_bench(text: str, name: str = "bench", strength: int = 1,
                filename: str = "<bench>") -> Circuit:
    """Parse ``.bench`` text into a :class:`Circuit`.

    Parameters
    ----------
    strength:
        Drive strength used for all mapped cells.
    """
    circuit = Circuit(name)
    gate_defs: List[Tuple[str, str, List[str], int]] = []  # out, type, ins, line
    outputs: List[Tuple[str, int]] = []
    scan_counter = 0

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        match = _LINE_RE.match(line)
        if not match:
            raise ParseError(f"unrecognized line: {raw.strip()!r}",
                             filename=filename, line=line_no)
        if match.group("decl"):
            net = match.group("decl_net")
            if match.group("decl") == "INPUT":
                circuit.add_input(net)
            else:
                outputs.append((net, line_no))
            continue
        out = match.group("out")
        gate_type = match.group("type").upper()
        ins = [part.strip() for part in match.group("ins").split(",") if part.strip()]
        gate_defs.append((out, gate_type, ins, line_no))

    # Full-scan transformation for DFFs: Q-net becomes a pseudo input,
    # D-net becomes a pseudo output.
    kept: List[Tuple[str, str, List[str], int]] = []
    for out, gate_type, ins, line_no in gate_defs:
        if gate_type == "DFF":
            if len(ins) != 1:
                raise ParseError(f"DFF must have one input, got {len(ins)}",
                                 filename=filename, line=line_no)
            circuit.add_input(out)
            outputs.append((ins[0], line_no))
            scan_counter += 1
        else:
            kept.append((out, gate_type, ins, line_no))

    counter = 0
    for out, gate_type, ins, line_no in kept:
        if gate_type not in _BENCH_FAMILIES:
            raise ParseError(f"unknown bench gate type {gate_type!r}",
                             filename=filename, line=line_no)
        family, max_arity = _BENCH_FAMILIES[gate_type]
        if family in ("INV", "BUF"):
            if len(ins) != 1:
                raise ParseError(
                    f"{gate_type} must have one input, got {len(ins)}",
                    filename=filename, line=line_no)
            circuit.add_gate(f"g{counter}", _cell_name(family, 1, strength), ins, out)
            counter += 1
            continue
        if len(ins) < 2:
            raise ParseError(f"{gate_type} needs at least 2 inputs",
                             filename=filename, line=line_no)
        counter = _map_tree(circuit, family, max_arity, strength, ins, out, counter)

    seen = set()
    for net, line_no in outputs:
        if net in seen:
            continue
        seen.add(net)
        circuit.add_output(net)
    return circuit


def _map_tree(circuit: Circuit, family: str, max_arity: int, strength: int,
              ins: Sequence[str], out: str, counter: int) -> int:
    """Map a wide gate onto a balanced tree of native-arity cells.

    For inverting families (NAND/NOR) the inner tree nodes use the
    non-inverting base function (AND/OR) so the overall logic function is
    preserved; only the root is inverting.
    """
    ins = list(ins)
    inner_family = family
    root_family = family
    if family == "NAND":
        inner_family = "AND"
    elif family == "NOR":
        inner_family = "OR"
    elif family == "XNOR":
        inner_family = "XOR"

    while len(ins) > max_arity:
        grouped: List[str] = []
        index = 0
        while index < len(ins):
            chunk = ins[index:index + max_arity]
            if len(chunk) == 1:
                grouped.append(chunk[0])
            else:
                net = f"{out}__t{counter}"
                circuit.add_gate(
                    f"g{counter}",
                    _cell_name(inner_family, len(chunk), strength),
                    chunk,
                    net,
                )
                counter += 1
                grouped.append(net)
            index += max_arity
        ins = grouped
    circuit.add_gate(f"g{counter}", _cell_name(root_family, len(ins), strength),
                     ins, out)
    return counter + 1


# reverse mapping for the writer: family → bench type
_FAMILY_TO_BENCH = {
    "AND": "AND", "OR": "OR", "NAND": "NAND", "NOR": "NOR",
    "XOR": "XOR", "XNOR": "XNOR", "INV": "NOT", "BUF": "BUFF",
}


def write_bench(circuit: Circuit) -> str:
    """Serialize a circuit to ``.bench`` text.

    Only circuits built from simple families (no AOI/OAI/MUX) can be
    expressed in bench; complex cells raise :class:`ParseError`.
    """
    lines = [f"# {circuit.name}"]
    for net in circuit.inputs:
        lines.append(f"INPUT({net})")
    for net in circuit.outputs:
        lines.append(f"OUTPUT({net})")
    for gate in circuit.gates:
        family = re.sub(r"\d*_X\d+$", "", gate.cell)
        bench_type = _FAMILY_TO_BENCH.get(family)
        if bench_type is None:
            raise ParseError(
                f"cell family {family!r} has no .bench equivalent "
                f"(gate {gate.name})"
            )
        lines.append(f"{gate.output} = {bench_type}({', '.join(gate.inputs)})")
    return "\n".join(lines) + "\n"
