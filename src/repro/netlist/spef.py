"""SPEF-style parasitics: per-net total load capacitance.

The paper reads gate load capacitances from *detailed standard parasitics
format* files.  This module writes and parses the subset the simulator
consumes — the total capacitance seen by each net's driver — in a SPEF-
like syntax with a name map and ``*D_NET`` records::

    *SPEF "IEEE 1481"
    *DESIGN "s27"
    *C_UNIT 1 FF

    *NAME_MAP
    *1 n1
    *2 n2

    *D_NET *1 3.85
    *D_NET *2 1.20
    *END
"""

from __future__ import annotations

import re
from typing import Dict

from repro.errors import ParseError
from repro.netlist.circuit import Circuit
from repro.units import FF

__all__ = ["write_spef", "parse_spef"]


def write_spef(circuit: Circuit, loads: Dict[str, float]) -> str:
    """Serialize net loads (farads) as SPEF-like text (capacitances in fF)."""
    lines = [
        '*SPEF "IEEE 1481"',
        f'*DESIGN "{circuit.name}"',
        "*C_UNIT 1 FF",
        "",
        "*NAME_MAP",
    ]
    nets = list(loads)
    for index, net in enumerate(nets, start=1):
        lines.append(f"*{index} {net}")
    lines.append("")
    for index, net in enumerate(nets, start=1):
        lines.append(f"*D_NET *{index} {loads[net] / FF:.6f}")
    lines.append("*END")
    return "\n".join(lines) + "\n"


_NAME_RE = re.compile(r"^\*(\d+)\s+(\S+)$")
_DNET_RE = re.compile(r"^\*D_NET\s+\*(\d+)\s+([\d.eE+-]+)$")
_CUNIT_RE = re.compile(r"^\*C_UNIT\s+([\d.eE+-]+)\s+(FF|PF|NF)$", re.I)

_CAP_SCALES = {"FF": 1e-15, "PF": 1e-12, "NF": 1e-9}


def parse_spef(text: str, filename: str = "<spef>") -> Dict[str, float]:
    """Parse SPEF-like text back into a net → load (farads) mapping."""
    if "*SPEF" not in text:
        raise ParseError("not a SPEF file (missing *SPEF)", filename=filename)
    name_map: Dict[str, str] = {}
    loads: Dict[str, float] = {}
    scale = FF
    in_name_map = False
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        unit = _CUNIT_RE.match(line)
        if unit:
            scale = _CAP_SCALES[unit.group(2).upper()] * float(unit.group(1))
            continue
        if line == "*NAME_MAP":
            in_name_map = True
            continue
        if line == "*END":
            break
        dnet = _DNET_RE.match(line)
        if dnet:
            in_name_map = False
            index, value = dnet.groups()
            if index not in name_map:
                raise ParseError(f"*D_NET references unmapped index *{index}",
                                 filename=filename, line=line_no)
            loads[name_map[index]] = float(value) * scale
            continue
        if in_name_map:
            named = _NAME_RE.match(line)
            if not named:
                raise ParseError(f"bad name-map entry {line!r}",
                                 filename=filename, line=line_no)
            name_map[named.group(1)] = named.group(2)
    return loads
