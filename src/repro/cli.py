"""Command-line interface: ``python -m repro <command> …``.

Wraps the library's main flows for shell use:

* ``characterize`` — run the offline Fig. 1 flow, save a kernel table,
* ``stats``       — circuit statistics (Table I columns 1–2),
* ``sta``         — static timing analysis with optional voltage derating,
* ``atpg``        — transition-fault + timing-aware pattern generation,
* ``simulate``    — parallel voltage-sweep time simulation (+ VCD dump),
* ``campaign``    — fault-tolerant sweep with checkpoint/resume,
* ``serve``       — JSON-lines simulation service with dynamic batching,
* ``explore``     — AVFS design-space exploration / VF table,
* ``avfs-loop``   — closed-loop AVFS scenario with disturbances,
* ``bench``       — record kernel/e2e benchmarks, check for regressions.

Circuits are specified either as a file (``.v`` structural Verilog or
``.bench``) or as a generator spec:

* ``suite:<name>[:scale]`` — a scaled paper-suite circuit (``suite:b17``),
* ``random:<gates>[:seed]`` — a random mapped netlist.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.cells.library import CellLibrary
from repro.cells.nangate15 import make_nangate15_library
from repro.core.characterization import characterize_library
from repro.core.delay_kernel import DelayKernelTable
from repro.electrical.model import TransistorCorner
from repro.electrical.spice import AnalyticalSpice
from repro.errors import ReproError
from repro.netlist.bench import parse_bench
from repro.netlist.circuit import Circuit
from repro.netlist.generate import random_circuit
from repro.netlist.stats import circuit_stats
from repro.netlist.suite import DEFAULT_SCALE, build_suite_circuit
from repro.netlist.verilog import parse_verilog
from repro.units import si_format

__all__ = ["main"]


def _load_library() -> CellLibrary:
    return make_nangate15_library()


def _corner(name: str, temperature: Optional[float]) -> TransistorCorner:
    factories = {
        "typical": TransistorCorner.typical,
        "slow": TransistorCorner.slow,
        "fast": TransistorCorner.fast,
    }
    corner = factories[name]()
    if temperature is not None:
        corner = corner.at_temperature(temperature)
    return corner


def _load_circuit(spec: str, library: CellLibrary) -> Circuit:
    """Resolve a circuit spec: file path or generator shorthand."""
    if spec.startswith("suite:"):
        parts = spec.split(":")
        scale = float(parts[2]) if len(parts) > 2 else DEFAULT_SCALE
        return build_suite_circuit(parts[1], scale=scale)
    if spec.startswith("random:"):
        parts = spec.split(":")
        gates = int(parts[1])
        seed = int(parts[2]) if len(parts) > 2 else 0
        return random_circuit(f"random{gates}", max(8, gates // 12), gates,
                              seed=seed)
    with open(spec, "r", encoding="utf-8") as stream:
        text = stream.read()
    if spec.endswith(".bench"):
        base = spec.rsplit("/", 1)[-1]
        return parse_bench(text, name=base.rsplit(".", 1)[0], filename=spec)
    return parse_verilog(text, library, filename=spec)


def _voltages(text: str) -> List[float]:
    return [float(part) for part in text.split(",") if part.strip()]


# -- subcommands -------------------------------------------------------------------


def _cmd_characterize(args: argparse.Namespace) -> int:
    import json
    import time

    from repro.core.characterization import (FIXED_GRID_EVALUATIONS,
                                             AdaptiveConfig)
    from repro.core.charz_cache import CoefficientCache

    library = _load_library()
    spice = AnalyticalSpice(_corner(args.corner, args.temperature))
    adaptive = None
    if args.adaptive:
        adaptive = AdaptiveConfig(target_error=args.target_error,
                                  budget=args.budget)
        mode = (f"adaptive sampling (target error {adaptive.target_error:g}, "
                f"budget {adaptive.budget}/entry, auto order)")
    else:
        mode = f"fixed 12x9 grid, order 2*{args.order}"
    cache = CoefficientCache(args.cache_dir) if args.cache_dir else None
    print(f"characterizing {len(library)} cells ({args.corner} corner"
          + (f", {args.temperature:g} C" if args.temperature is not None else "")
          + f", {mode}"
          + (f", {args.workers} workers" if args.workers > 1 else "")
          + (f", cache {args.cache_dir}" if cache else "") + ") ...")
    start = time.perf_counter()
    characterization = characterize_library(
        library, spice, n=args.order, adaptive=adaptive,
        workers=args.workers, cache=cache)
    wall = time.perf_counter() - start
    entries = list(characterization.all_entries())
    charged = characterization.total_evaluations()
    fixed_baseline = FIXED_GRID_EVALUATIONS * len(entries)
    print(f"  {len(entries)} delay surfaces, {charged} SPICE delay "
          f"evaluations charged vs {fixed_baseline} fixed-grid "
          f"({fixed_baseline / charged:.2f}x); {spice.delay_evaluations} "
          f"performed this run in {wall:.2f}s")
    table = characterization.compile()
    table.save(args.output)
    print(f"wrote {table.num_types} cell types "
          f"({table.memory_bytes / 1024:.0f} KiB) to {args.output}")
    if args.report:
        report = {
            "mode": "adaptive" if adaptive else "fixed",
            "corner": args.corner,
            "order": None if adaptive else args.order,
            "workers": args.workers,
            "wall_seconds": wall,
            "evaluations": {
                "charged": charged,
                "performed": spice.delay_evaluations,
                "fixed_grid_baseline": fixed_baseline,
                "ratio_vs_fixed": fixed_baseline / charged,
            },
            "entries": [
                {
                    "cell": entry.cell_name,
                    "pin": entry.pin_name,
                    "polarity": entry.polarity.name.lower(),
                    "evaluations": entry.evaluations,
                    "fixed_grid_evaluations": FIXED_GRID_EVALUATIONS,
                    "half_order": entry.fit.polynomial.n,
                    "max_fit_error": entry.fit.max_abs_error,
                }
                for entry in entries
            ],
        }
        with open(args.report, "w", encoding="utf-8") as stream:
            json.dump(report, stream, indent=2)
            stream.write("\n")
        print(f"wrote evaluation report to {args.report}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    library = _load_library()
    circuit = _load_circuit(args.circuit, library)
    circuit.validate(library)
    stats = circuit_stats(circuit)
    print(stats.summary())
    print(f"  avg fanin {stats.avg_fanin:.2f}, avg fanout "
          f"{stats.avg_fanout:.2f}")
    for family, count in sorted(stats.cells_by_family.items()):
        print(f"  {family:8s} {count}")
    return 0


def _cmd_sta(args: argparse.Namespace) -> int:
    from repro.timing.paths import k_longest_paths
    from repro.timing.report import format_timing_report
    from repro.timing.sta import StaticTimingAnalysis

    library = _load_library()
    circuit = _load_circuit(args.circuit, library)
    sta = StaticTimingAnalysis(circuit, library)
    kernel_table = DelayKernelTable.load(args.kernels) if args.kernels else None
    arrivals = sta.analyze(voltage=args.voltage if kernel_table else None,
                           kernel_table=kernel_table)
    paths = k_longest_paths(circuit, library, k=args.paths,
                            compiled=sta.compiled)
    print(format_timing_report(
        arrivals, circuit.name, paths,
        voltage=args.voltage if kernel_table else None))
    return 0


def _cmd_atpg(args: argparse.Namespace) -> int:
    from repro.atpg.path_patterns import generate_path_patterns
    from repro.atpg.transition_fault import generate_transition_patterns

    library = _load_library()
    circuit = _load_circuit(args.circuit, library)
    patterns, coverage = generate_transition_patterns(
        circuit, library, max_pairs=args.max_pairs,
        fault_sample=args.fault_sample)
    print(f"transition-fault ATPG: {len(patterns)} pairs, "
          f"{coverage:.1%} coverage")
    if args.paths:
        result = generate_path_patterns(circuit, library, k=args.paths)
        print(f"timing-aware: {len(result.tested_paths)} paths tested, "
              f"{len(result.false_paths)} false paths"
              + (" (*)" if result.all_false else ""))
        patterns.extend(result.patterns)
    print(f"total: {len(patterns)} pattern pairs "
          f"{patterns.count_by_source()}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.analysis.arrival import latest_arrivals
    from repro.atpg.patterns import random_pattern_set
    from repro.simulation.base import SimulationConfig
    from repro.simulation.gpu import GpuWaveSim
    from repro.simulation.grid import SlotPlan

    library = _load_library()
    circuit = _load_circuit(args.circuit, library)
    voltages = _voltages(args.voltages)
    kernel_table = DelayKernelTable.load(args.kernels) if args.kernels else None
    if kernel_table is None and len(voltages) > 1:
        print("error: multi-voltage simulation needs --kernels",
              file=sys.stderr)
        return 2
    patterns = random_pattern_set(circuit, args.patterns, seed=args.seed)
    config = SimulationConfig(record_all_nets=bool(args.vcd),
                              backend=args.backend)
    simulator = GpuWaveSim(circuit, library, config=config)
    plan = SlotPlan.cross(len(patterns), voltages)
    result = simulator.run(patterns.pairs, plan=plan,
                           kernel_table=kernel_table)
    print(f"simulated {plan.num_slots} slots in "
          f"{result.runtime_seconds:.3f}s ({result.engine})")
    report = latest_arrivals(result, circuit, plan=plan)
    for voltage in voltages:
        print(f"  {voltage:.2f} V: latest transition "
              f"{si_format(report.at(voltage), unit='s')}")
    if args.vcd:
        from repro.waveform.vcd import result_to_vcd
        with open(args.vcd, "w", encoding="utf-8") as stream:
            stream.write(result_to_vcd(result, args.vcd_slot))
        print(f"  slot {args.vcd_slot} waveforms -> {args.vcd}")
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    import json

    from repro.atpg.patterns import random_pattern_set
    from repro.runtime import CampaignConfig, CampaignRunner
    from repro.simulation.base import SimulationConfig
    from repro.simulation.grid import SlotPlan

    library = _load_library()
    circuit = _load_circuit(args.circuit, library)
    voltages = _voltages(args.voltages)
    kernel_table = DelayKernelTable.load(args.kernels) if args.kernels else None
    if kernel_table is None and len(voltages) > 1:
        print("error: multi-voltage campaigns need --kernels", file=sys.stderr)
        return 2
    variation = None
    if args.sigma is not None:
        from repro.simulation.variation import ProcessVariation
        variation = ProcessVariation(sigma=args.sigma,
                                     seed=args.variation_seed)
    patterns = random_pattern_set(circuit, args.patterns, seed=args.seed)
    plan = SlotPlan.cross(len(patterns), voltages)
    runner = CampaignRunner(
        circuit, library,
        config=SimulationConfig(backend=args.backend),
        campaign=CampaignConfig(
            chunk_slots=args.chunk_slots,
            num_workers=args.workers,
            max_worker_attempts=args.max_attempts,
            degrade_in_process=not args.no_degrade,
            degrade_event_driven=not args.no_degrade,
        ),
    )
    result = runner.run(patterns.pairs, plan=plan, kernel_table=kernel_table,
                        variation=variation,
                        checkpoint_dir=args.checkpoint_dir)
    print(result.report.summary())
    print(f"engine {result.engine}, {result.gate_evaluations} gate "
          f"evaluations")
    if args.report_json:
        with open(args.report_json, "w", encoding="utf-8") as stream:
            json.dump(result.report.to_dict(), stream, indent=2)
        print(f"run report -> {args.report_json}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import json

    from repro.service import (ServiceClient, ServiceConfig,
                               SimulationService, serve_jsonl)

    if args.faults:
        from repro import faults
        faults.activate(args.faults)
    library = _load_library()
    kernel_table = DelayKernelTable.load(args.kernels) if args.kernels else None
    config = ServiceConfig(
        max_batch_slots=args.max_batch_slots,
        max_wait_ms=args.max_wait_ms,
        queue_depth=args.queue_depth,
        admission=args.admission,
        workers=args.workers,
        cache_entries=args.cache_entries,
        shards=args.shards,
    )
    with SimulationService(config=config) as service:
        client = ServiceClient(service, library, _load_circuit,
                               kernel_table=kernel_table,
                               backend=args.backend)
        status = serve_jsonl(sys.stdin, sys.stdout, client)
        metrics = service.metrics()
    print(metrics.summary(), file=sys.stderr)
    if args.metrics_json:
        with open(args.metrics_json, "w", encoding="utf-8") as stream:
            json.dump(metrics.to_dict(), stream, indent=2)
        print(f"service metrics -> {args.metrics_json}", file=sys.stderr)
    return status


def _cmd_convert(args: argparse.Namespace) -> int:
    from repro.netlist.bench import write_bench
    from repro.netlist.sdf import annotate_nominal, write_sdf
    from repro.netlist.spef import write_spef
    from repro.netlist.verilog import write_verilog

    library = _load_library()
    circuit = _load_circuit(args.circuit, library)
    circuit.validate(library)
    output = args.output
    if output.endswith(".v"):
        text = write_verilog(circuit, library)
    elif output.endswith(".bench"):
        text = write_bench(circuit)
    elif output.endswith(".sdf"):
        text = write_sdf(circuit, library, annotate_nominal(circuit, library))
    elif output.endswith(".spef"):
        text = write_spef(circuit, circuit.net_loads(library))
    else:
        print(f"error: unknown output format for {output!r} "
              "(use .v/.bench/.sdf/.spef)", file=sys.stderr)
        return 2
    with open(output, "w", encoding="utf-8") as stream:
        stream.write(text)
    print(f"wrote {circuit.num_nodes}-node {circuit.name} to {output}")
    return 0


def _cmd_liberty(args: argparse.Namespace) -> int:
    from repro.netlist.liberty import write_liberty

    library = _load_library()
    spice = AnalyticalSpice(_corner(args.corner, args.temperature))
    characterization = characterize_library(library, spice, n=args.order)
    for voltage in _voltages(args.voltages):
        text = write_liberty(characterization, voltage=voltage)
        path = args.output_pattern.format(voltage=f"{voltage:.2f}")
        with open(path, "w", encoding="utf-8") as stream:
            stream.write(text)
        print(f"wrote {voltage:.2f} V Liberty view to {path}")
    return 0


def _cmd_explore(args: argparse.Namespace) -> int:
    from repro.atpg.patterns import random_pattern_set
    from repro.avfs.explorer import DesignSpaceExplorer

    library = _load_library()
    circuit = _load_circuit(args.circuit, library)
    if not args.kernels:
        print("error: explore needs --kernels (run 'characterize' first)",
              file=sys.stderr)
        return 2
    kernel_table = DelayKernelTable.load(args.kernels)
    patterns = random_pattern_set(circuit, args.patterns, seed=args.seed)
    explorer = DesignSpaceExplorer(circuit, library, kernel_table)
    table = explorer.voltage_frequency_table(
        patterns.pairs, _voltages(args.voltages), guardband=args.guardband)
    print(f"voltage-frequency table for {circuit.name} "
          f"(guardband {args.guardband:.0%}):")
    print(table.summary())
    return 0


def _cmd_avfs_loop(args: argparse.Namespace) -> int:
    import json

    from repro.atpg.patterns import random_pattern_set
    from repro.avfs import (AvfsController, ClosedLoopRunner,
                            DesignSpaceExplorer, LoopConfig,
                            TemperatureDrift, VoltageDroop)

    library = _load_library()
    circuit = _load_circuit(args.circuit, library)
    if not args.kernels:
        print("error: avfs-loop needs --kernels (run 'characterize' first)",
              file=sys.stderr)
        return 2
    kernel_table = DelayKernelTable.load(args.kernels)
    patterns = random_pattern_set(circuit, args.patterns, seed=args.seed)

    # Characterize the operating table on the same engine the loop will
    # reuse (shared via the process-wide pool).
    explorer = DesignSpaceExplorer(circuit, library, kernel_table)
    table = explorer.voltage_frequency_table(
        patterns.pairs, _voltages(args.voltages), guardband=args.guardband)
    if args.period is not None:
        period = args.period
    else:
        # Default: 20% of slack on top of the mid-table critical delay.
        mid = table.points[len(table.points) // 2]
        period = mid.critical_delay * (1.0 + args.guardband) * 1.2
    print(f"closing the loop on {circuit.name} at period "
          f"{si_format(period, unit='s')}")

    disturbances = []
    if args.droop > 0:
        disturbances.append(VoltageDroop(
            args.droop, reference_activity=args.droop_reference,
            jitter=args.droop_jitter, seed=args.seed))
    if args.drift > 0:
        disturbances.append(TemperatureDrift(args.drift))
    variation = None
    if args.sigma is not None:
        from repro.simulation.variation import StateDependentVariation
        variation = StateDependentVariation(
            sigma=args.sigma, seed=args.variation_seed,
            voltage_sensitivity=args.voltage_sensitivity,
            v_ref=table.points[-1].voltage)

    config = LoopConfig(
        period=period,
        max_iterations=args.iterations,
        settle_iterations=args.settle,
        use_delta=not args.no_delta,
        record_energy=not args.no_energy,
    )
    service = None
    try:
        if args.service:
            from repro.service import SimulationService
            service = SimulationService()
        runner = ClosedLoopRunner(
            circuit, library, kernel_table, AvfsController(table), config,
            disturbances=disturbances, variation=variation, service=service,
            checkpoint_dir=args.checkpoint_dir, backend=args.backend)
        report = runner.run(patterns.pairs)
    finally:
        if service is not None:
            service.close()
    print(report.summary())
    if report.run_report is not None:
        print(report.run_report.summary())
    if args.report_json:
        with open(args.report_json, "w", encoding="utf-8") as stream:
            json.dump(report.to_dict(), stream, indent=2)
        print(f"loop report -> {args.report_json}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.perf.record import main as bench_main

    forwarded: List[str] = []
    if args.quick:
        forwarded.append("--quick")
    if args.no_e2e:
        forwarded.append("--no-e2e")
    if args.no_fail:
        forwarded.append("--no-fail")
    forwarded += ["--output", args.output,
                  "--threshold", str(args.threshold)]
    if args.baseline:
        forwarded += ["--baseline", args.baseline]
    if args.backends:
        forwarded += ["--backends", args.backends]
    return bench_main(forwarded)


# -- parser ------------------------------------------------------------------------


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("characterize", help="build and save a kernel table")
    p.add_argument("--order", type=int, default=3, help="polynomial half-order N")
    p.add_argument("--corner", choices=["typical", "slow", "fast"],
                   default="typical")
    p.add_argument("--temperature", type=float, default=None,
                   help="junction temperature in Celsius")
    p.add_argument("--output", default="kernels.npz")
    p.add_argument("--adaptive", action="store_true",
                   help="error-driven adaptive sampling with per-entry "
                        "order selection instead of the fixed 12x9 grid")
    p.add_argument("--target-error", type=float, default=0.012,
                   help="adaptive stopping target as a fraction of the "
                        "nominal delay (default 0.012)")
    p.add_argument("--budget", type=int, default=36,
                   help="adaptive per-entry cap on SPICE delay "
                        "evaluations (default 36)")
    p.add_argument("--workers", type=int, default=1,
                   help="parallel fitting workers (default 1: inline)")
    p.add_argument("--cache-dir", default=None,
                   help="persistent coefficient-cache directory "
                        "(fingerprint-keyed; warm hits skip SPICE)")
    p.add_argument("--report", default=None,
                   help="write a JSON report of per-entry SPICE "
                        "evaluations vs the fixed-grid baseline")
    p.set_defaults(func=_cmd_characterize)

    p = sub.add_parser("stats", help="circuit statistics")
    p.add_argument("circuit")
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser("sta", help="static timing analysis")
    p.add_argument("circuit")
    p.add_argument("--voltage", type=float, default=0.8)
    p.add_argument("--kernels", default=None,
                   help="kernel table for voltage derating")
    p.add_argument("--paths", type=int, default=5, help="report K longest paths")
    p.set_defaults(func=_cmd_sta)

    p = sub.add_parser("atpg", help="generate test patterns")
    p.add_argument("circuit")
    p.add_argument("--max-pairs", type=int, default=64)
    p.add_argument("--fault-sample", type=int, default=1000)
    p.add_argument("--paths", type=int, default=0,
                   help="also target the K longest paths")
    p.set_defaults(func=_cmd_atpg)

    p = sub.add_parser("simulate", help="parallel time simulation")
    p.add_argument("circuit")
    p.add_argument("--patterns", type=int, default=32)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--voltages", default="0.8", help="comma-separated volts")
    p.add_argument("--kernels", default=None)
    p.add_argument("--vcd", default=None, help="dump one slot as VCD")
    p.add_argument("--vcd-slot", type=int, default=0)
    p.add_argument("--backend", default=None,
                   choices=["auto", "numpy", "numba", "cext"],
                   help="compute backend (default: REPRO_BACKEND or auto)")
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser(
        "campaign",
        help="fault-tolerant sweep with checkpoint/resume")
    p.add_argument("circuit")
    p.add_argument("--patterns", type=int, default=32)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--voltages", default="0.8", help="comma-separated volts")
    p.add_argument("--kernels", default=None)
    p.add_argument("--checkpoint-dir", default=None,
                   help="campaign directory for checkpoint/resume")
    p.add_argument("--chunk-slots", type=int, default=64,
                   help="slots per chunk (retry/checkpoint granularity)")
    p.add_argument("--workers", type=int, default=None,
                   help="worker processes (0 = in-process only)")
    p.add_argument("--max-attempts", type=int, default=3,
                   help="worker attempts per chunk before degrading")
    p.add_argument("--no-degrade", action="store_true",
                   help="disable the in-process/event-driven fallbacks")
    p.add_argument("--sigma", type=float, default=None,
                   help="Monte-Carlo process-variation sigma")
    p.add_argument("--variation-seed", type=int, default=0)
    p.add_argument("--report-json", default=None,
                   help="write the structured run report to this file")
    p.add_argument("--backend", default=None,
                   choices=["auto", "numpy", "numba", "cext"],
                   help="compute backend (default: REPRO_BACKEND or auto)")
    p.set_defaults(func=_cmd_campaign)

    p = sub.add_parser(
        "serve",
        help="JSON-lines simulation service (one request per stdin line)")
    p.add_argument("--kernels", default=None,
                   help="kernel table for voltage-aware jobs")
    p.add_argument("--max-batch-slots", type=int, default=256,
                   help="flush a compatibility group at this many slots")
    p.add_argument("--max-wait-ms", type=float, default=5.0,
                   help="flush a batch once its oldest job waited this long")
    p.add_argument("--queue-depth", type=int, default=1024,
                   help="admission-control bound on in-flight jobs")
    p.add_argument("--admission", choices=["block", "reject"],
                   default="block",
                   help="behaviour at the queue-depth bound")
    p.add_argument("--workers", type=int, default=1,
                   help="engine worker threads")
    p.add_argument("--shards", type=int, default=0,
                   help="execute batches in this many worker processes "
                        "behind shared-memory planes (0 = in-process "
                        "engine pool)")
    p.add_argument("--cache-entries", type=int, default=256,
                   help="result-cache capacity (0 disables the cache)")
    p.add_argument("--backend", default=None,
                   choices=["auto", "numpy", "numba", "cext"],
                   help="compute backend (default: REPRO_BACKEND or auto)")
    p.add_argument("--metrics-json", default=None,
                   help="write the final service metrics to this file")
    p.add_argument("--faults", default=None, metavar="SPEC",
                   help="activate a fault-injection plan, e.g. "
                        "'seed=7;backend.merge_group:raise@n=3' "
                        "(also: REPRO_FAULTS env var)")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("convert", help="convert/emit design-exchange files")
    p.add_argument("circuit")
    p.add_argument("output", help="target file: .v / .bench / .sdf / .spef")
    p.set_defaults(func=_cmd_convert)

    p = sub.add_parser("liberty", help="emit per-voltage Liberty views")
    p.add_argument("--order", type=int, default=3)
    p.add_argument("--corner", choices=["typical", "slow", "fast"],
                   default="typical")
    p.add_argument("--temperature", type=float, default=None)
    p.add_argument("--voltages", default="0.8")
    p.add_argument("--output-pattern", default="nangate15_{voltage}V.lib",
                   help="'{voltage}' is substituted per view")
    p.set_defaults(func=_cmd_liberty)

    p = sub.add_parser("bench",
                       help="record benchmarks / check for regressions")
    p.add_argument("--quick", action="store_true",
                   help="smaller sizes (CI smoke)")
    p.add_argument("--output", default="BENCH_kernels.json")
    p.add_argument("--baseline", default=None,
                   help="baseline record (default: previous output file)")
    p.add_argument("--threshold", type=float, default=1.5,
                   help="regression factor on wall time")
    p.add_argument("--backends", default=None,
                   help="comma-separated backend subset")
    p.add_argument("--no-e2e", action="store_true",
                   help="kernel micro-benchmarks only")
    p.add_argument("--no-fail", action="store_true",
                   help="report regressions but exit 0")
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser("explore", help="AVFS design-space exploration")
    p.add_argument("circuit")
    p.add_argument("--patterns", type=int, default=24)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--voltages", default="0.55,0.65,0.8,0.95,1.1")
    p.add_argument("--guardband", type=float, default=0.10)
    p.add_argument("--kernels", default=None)
    p.set_defaults(func=_cmd_explore)

    p = sub.add_parser(
        "avfs-loop",
        help="closed-loop AVFS scenario: simulate -> measure -> decide")
    p.add_argument("circuit")
    p.add_argument("--patterns", type=int, default=24)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--kernels", default=None)
    p.add_argument("--voltages", default="0.55,0.65,0.8,0.95,1.1",
                   help="operating grid characterized before the loop")
    p.add_argument("--guardband", type=float, default=0.10)
    p.add_argument("--period", type=float, default=None,
                   help="clock period in seconds (default: derived from "
                        "the mid-table critical delay)")
    p.add_argument("--iterations", type=int, default=20)
    p.add_argument("--settle", type=int, default=3,
                   help="consecutive stable iterations = convergence")
    p.add_argument("--droop", type=float, default=0.0,
                   help="supply droop in volts at the reference activity")
    p.add_argument("--droop-reference", type=float, default=1.0,
                   help="toggles/pattern producing exactly --droop volts")
    p.add_argument("--droop-jitter", type=float, default=0.0,
                   help="random droop sigma in volts (seeded)")
    p.add_argument("--drift", type=float, default=0.0,
                   help="thermal delay drift per iteration (fraction)")
    p.add_argument("--sigma", type=float, default=None,
                   help="state-dependent Monte-Carlo sigma")
    p.add_argument("--voltage-sensitivity", type=float, default=0.0,
                   help="sigma growth per volt below the top voltage")
    p.add_argument("--variation-seed", type=int, default=0)
    p.add_argument("--no-delta", action="store_true",
                   help="disable base-arena splicing between iterations")
    p.add_argument("--no-energy", action="store_true",
                   help="skip per-iteration energy accounting")
    p.add_argument("--checkpoint-dir", default=None,
                   help="resumable trajectory checkpoint directory")
    p.add_argument("--service", action="store_true",
                   help="run iterations through a local simulation service")
    p.add_argument("--backend", default=None,
                   choices=["numpy", "numba", "cext", "auto"])
    p.add_argument("--report-json", default=None)
    p.set_defaults(func=_cmd_avfs_loop)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
