"""Table II benchmark — full voltage-sweep simulation.

Times one complete Table II row: the whole (patterns × 6 voltages) slot
plane in a single parallel run, then checks the row's shape claims
(monotone voltage dependence, STA pessimism, sub-percent nominal
residual).
"""

import pytest

from repro.analysis.arrival import latest_arrivals
from repro.experiments.paper_data import TABLE2_VOLTAGES
from repro.simulation.gpu import GpuWaveSim
from repro.simulation.grid import SlotPlan
from repro.timing.sta import StaticTimingAnalysis


def test_voltage_sweep(benchmark, medium_workload, library, kernel_table):
    workload = medium_workload
    sim = GpuWaveSim(workload.circuit, library, compiled=workload.compiled)
    pairs = workload.patterns.pairs
    plan = SlotPlan.cross(len(pairs), TABLE2_VOLTAGES)
    result = benchmark.pedantic(
        sim.run, args=(pairs,),
        kwargs={"plan": plan, "kernel_table": kernel_table},
        rounds=2, iterations=1,
    )
    report = latest_arrivals(result, workload.circuit, plan=plan)
    arrivals = [report.at(v) for v in TABLE2_VOLTAGES]
    benchmark.extra_info["circuit"] = workload.name
    benchmark.extra_info["arrival_0.55V_ps"] = arrivals[0] * 1e12
    benchmark.extra_info["arrival_1.10V_ps"] = arrivals[-1] * 1e12
    # Table II shape: delays shrink monotonically as V_DD rises.
    assert arrivals == sorted(arrivals, reverse=True)


def test_table2_claims(medium_workload, library, kernel_table):
    """Non-timed companion: STA bound and nominal residual."""
    workload = medium_workload
    pairs = workload.patterns.pairs
    sim = GpuWaveSim(workload.circuit, library, compiled=workload.compiled)
    plan = SlotPlan.cross(len(pairs), TABLE2_VOLTAGES)
    swept = sim.run(pairs, plan=plan, kernel_table=kernel_table)
    report = latest_arrivals(swept, workload.circuit, plan=plan)

    static = sim.run(pairs, voltage=0.8)
    static_arrival = latest_arrivals(static, workload.circuit).at(0.8)
    residual = report.at(0.8) / static_arrival - 1.0
    assert abs(residual) < 0.02  # paper: ~0.1 % average

    sta = StaticTimingAnalysis(workload.circuit, library,
                               compiled=workload.compiled)
    assert report.at(0.8) <= sta.longest_path_delay() * 1.05
