"""Table I benchmark — the three simulators on the scaled suite.

One benchmark per (circuit, engine) cell of Table I:

* ``event_driven`` — the serial baseline with static delays (timed on a
  small pattern subset; serial cost is per-pattern linear),
* ``gpu_static`` — the parallel engine with static delays ([25]),
* ``gpu_parametric`` — the proposed engine with polynomial delay kernels.

The companion assertions verify the table's claims: the parallel engine
beats the serial baseline and the parametric kernels add only marginal
overhead over static delays.
"""

import time

import pytest

from repro.simulation.event_driven import EventDrivenSimulator
from repro.simulation.gpu import GpuWaveSim
from repro.units import meps

NOMINAL = 0.8
ED_PAIRS = 4


def test_event_driven_baseline(benchmark, workload, library):
    sim = EventDrivenSimulator(workload.circuit, library,
                               compiled=workload.compiled)
    subset = workload.patterns.pairs[:ED_PAIRS]
    result = benchmark.pedantic(
        sim.run, args=(subset,), kwargs={"voltage": NOMINAL},
        rounds=2, iterations=1,
    )
    benchmark.extra_info["circuit"] = workload.name
    benchmark.extra_info["meps"] = meps(workload.nodes, len(subset),
                                        result.runtime_seconds)


def test_gpu_static(benchmark, workload, library):
    sim = GpuWaveSim(workload.circuit, library, compiled=workload.compiled)
    pairs = workload.patterns.pairs
    result = benchmark.pedantic(
        sim.run, args=(pairs,), kwargs={"voltage": NOMINAL},
        rounds=2, iterations=1,
    )
    benchmark.extra_info["circuit"] = workload.name
    benchmark.extra_info["meps"] = meps(workload.nodes, len(pairs),
                                        result.runtime_seconds)


def test_gpu_parametric(benchmark, workload, library, kernel_table):
    sim = GpuWaveSim(workload.circuit, library, compiled=workload.compiled)
    pairs = workload.patterns.pairs
    result = benchmark.pedantic(
        sim.run, args=(pairs,),
        kwargs={"voltage": NOMINAL, "kernel_table": kernel_table},
        rounds=2, iterations=1,
    )
    benchmark.extra_info["circuit"] = workload.name
    benchmark.extra_info["meps"] = meps(workload.nodes, len(pairs),
                                        result.runtime_seconds)


def test_table1_claims(medium_workload, library, kernel_table):
    """Non-timed companion: per-pattern speedup and parametric overhead."""
    workload = medium_workload
    pairs = workload.patterns.pairs
    event = EventDrivenSimulator(workload.circuit, library,
                                 compiled=workload.compiled)
    gpu = GpuWaveSim(workload.circuit, library, compiled=workload.compiled)

    start = time.perf_counter()
    event.run(pairs[:ED_PAIRS], voltage=NOMINAL)
    per_pattern_serial = (time.perf_counter() - start) / ED_PAIRS

    start = time.perf_counter()
    gpu.run(pairs, voltage=NOMINAL, kernel_table=kernel_table)
    per_pattern_parametric = (time.perf_counter() - start) / len(pairs)

    start = time.perf_counter()
    gpu.run(pairs, voltage=NOMINAL)
    per_pattern_static = (time.perf_counter() - start) / len(pairs)

    # The parallel engine must win per pattern (Table I shape) ...
    assert per_pattern_parametric < per_pattern_serial
    # ... and parametric delays must not cost much over static ([25] column).
    assert per_pattern_parametric < 2.0 * per_pattern_static
