"""Shared fixtures for the benchmark harness.

Benchmarks reuse the process-wide caches of
:mod:`repro.experiments.common` so library characterization happens once
per session.  Circuit scales are kept small enough for the whole
``pytest benchmarks/ --benchmark-only`` run to finish in minutes while
still spanning an order of magnitude in size (the Table I trend).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.common import default_kernel_table, default_library
from repro.experiments.workload import prepare_workload

#: Scale used for benchmark workloads (smaller than the experiment
#: default so benchmark repetition rounds stay cheap).
BENCH_SCALE = 0.01

#: Representative Table I circuits: small / medium / large.
BENCH_CIRCUITS = ("s38417", "b17", "p100k")


@pytest.fixture(scope="session")
def library():
    return default_library()


@pytest.fixture(scope="session")
def kernel_table():
    return default_kernel_table(3)


@pytest.fixture(scope="session", params=BENCH_CIRCUITS)
def workload(request):
    return prepare_workload(request.param, scale=BENCH_SCALE)


@pytest.fixture(scope="session")
def medium_workload():
    return prepare_workload("b17", scale=BENCH_SCALE)


@pytest.fixture
def rng():
    return np.random.default_rng(7)
