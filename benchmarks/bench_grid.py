"""Slot-plane split ablation (Fig. 3 trade-off).

The paper emphasizes that the engine can trade stimuli slots against
operating-point slots arbitrarily.  These benchmarks run the *same*
total slot count (64) in three different splits — all-stimuli, balanced
and all-voltages — and the companion assertion checks they cost the same
order of runtime (the engine is split-agnostic, as claimed).
"""

import time

import numpy as np
import pytest

from repro.simulation.gpu import GpuWaveSim
from repro.simulation.grid import SlotPlan

SPLITS = {
    "64_patterns_x_1_voltage": (64, [0.8]),
    "8_patterns_x_8_voltages": (8, list(np.linspace(0.55, 1.1, 8))),
    "1_pattern_x_64_voltages": (1, list(np.linspace(0.55, 1.1, 64))),
}


@pytest.fixture(scope="module")
def setup(medium_workload, library):
    from repro.atpg.patterns import random_pattern_set

    sim = GpuWaveSim(medium_workload.circuit, library,
                     compiled=medium_workload.compiled)
    pool = random_pattern_set(medium_workload.circuit, 64, seed=17)
    return pool, sim


@pytest.mark.parametrize("split", list(SPLITS))
def test_slot_split(benchmark, setup, kernel_table, split):
    pool, sim = setup
    num_patterns, voltages = SPLITS[split]
    pairs = pool.pairs[:num_patterns]
    plan = SlotPlan.cross(len(pairs), voltages)
    assert plan.num_slots == 64
    benchmark.pedantic(
        sim.run, args=(pairs,),
        kwargs={"plan": plan, "kernel_table": kernel_table},
        rounds=2, iterations=1,
    )
    benchmark.extra_info["split"] = split


def test_splits_cost_similar(setup, kernel_table):
    """The engine's cost tracks total slots, not how they are split."""
    pool, sim = setup
    runtimes = {}
    for split, (num_patterns, voltages) in SPLITS.items():
        pairs = pool.pairs[:num_patterns]
        plan = SlotPlan.cross(len(pairs), voltages)
        start = time.perf_counter()
        sim.run(pairs, plan=plan, kernel_table=kernel_table)
        runtimes[split] = time.perf_counter() - start
    fastest = min(runtimes.values())
    slowest = max(runtimes.values())
    assert slowest < 5.0 * fastest, runtimes
