"""Waveform-memory capacity ablation.

The paper notes GPU runtime is dominated by waveform memory.  The engine
must pick a per-net toggle capacity: too small triggers overflow retries
(re-running the batch at doubled capacity), too large wastes bandwidth on
+inf padding.  These benchmarks sweep the starting capacity and check the
overflow-growth policy recovers correctness at reasonable cost.
"""

import pytest

from repro.simulation.base import SimulationConfig
from repro.simulation.gpu import GpuWaveSim

CAPACITIES = (4, 16, 64)


@pytest.mark.parametrize("capacity", CAPACITIES)
def test_initial_capacity(benchmark, medium_workload, library, kernel_table,
                          capacity):
    workload = medium_workload
    sim = GpuWaveSim(
        workload.circuit, library, compiled=workload.compiled,
        config=SimulationConfig(waveform_capacity=capacity),
    )
    pairs = workload.patterns.pairs[:32]
    benchmark.pedantic(
        sim.run, args=(pairs,), kwargs={"kernel_table": kernel_table},
        rounds=2, iterations=1,
    )
    benchmark.extra_info["capacity"] = capacity
    benchmark.extra_info["retries"] = sim.last_stats.retries


def test_growth_recovers_identical_waveforms(medium_workload, library,
                                             kernel_table):
    """Tiny capacity + growth produces the same result as a generous one."""
    workload = medium_workload
    pairs = workload.patterns.pairs[:8]
    tiny = GpuWaveSim(
        workload.circuit, library, compiled=workload.compiled,
        config=SimulationConfig(waveform_capacity=2, record_all_nets=True),
    )
    roomy = GpuWaveSim(
        workload.circuit, library, compiled=workload.compiled,
        config=SimulationConfig(waveform_capacity=128, record_all_nets=True),
    )
    a = tiny.run(pairs, kernel_table=kernel_table)
    b = roomy.run(pairs, kernel_table=kernel_table)
    assert tiny.last_stats.retries >= 1
    for slot in range(len(pairs)):
        for net in workload.circuit.nets():
            assert a.waveform(slot, net).equivalent(b.waveform(slot, net), 0.0)
