"""Fig. 4 benchmark — characterization cost and accuracy vs polynomial order.

Regenerates the Fig. 4 trade-off: higher orders cost more regression time
and more stored coefficients but cut the approximation error.  The
benchmark times one full pin characterization (SPICE sweep + sub-sampling
+ regression) per order; the accompanying assertions pin down the
accuracy trend the figure shows.
"""

import pytest

from repro.cells.cell import DrivePolarity
from repro.core.characterization import characterize_pin
from repro.core.parameters import ParameterSpace
from repro.electrical.spice import AnalyticalSpice

ORDERS = (1, 2, 3, 4, 5)


@pytest.fixture(scope="module")
def target(library):
    cell = library["NOR2_X2"]
    return cell, cell.pins[0], ParameterSpace.paper_default(), AnalyticalSpice()


@pytest.mark.parametrize("n", ORDERS)
def test_characterize_pin_order(benchmark, target, n):
    """Time the full Fig. 1 flow for one (cell, pin, polarity) at order 2·N."""
    cell, pin, space, spice = target
    result = benchmark(
        characterize_pin, spice, cell, pin, DrivePolarity.RISE,
        space=space, n=n,
    )
    mean, std, maximum = result.evaluation_error(64)
    # Fig. 4 claims for this order class:
    assert mean < 0.06
    if n >= 3:
        assert std < 0.01      # avg stddev below 1 % for N >= 3
        assert maximum < 0.027  # avg max below 2.7 %
    # regression itself stays in the paper's 1-40 ms class
    assert result.fit.solve_seconds < 0.5


def test_fig4_error_monotone_in_order(library):
    """Non-timed companion: the error distribution shrinks with order."""
    cell = library["NOR2_X2"]
    space = ParameterSpace.paper_default()
    spice = AnalyticalSpice()
    maxima = []
    for n in ORDERS:
        pc = characterize_pin(spice, cell, cell.pins[0], DrivePolarity.RISE,
                              space=space, n=n)
        maxima.append(pc.evaluation_error(64)[2])
    assert all(a >= b for a, b in zip(maxima, maxima[1:]))
