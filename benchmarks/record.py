#!/usr/bin/env python
"""Record the repository's benchmark trajectory (``BENCH_kernels.json``).

Thin wrapper around :mod:`repro.perf.record` so the harness runs from a
checkout without installation::

    python benchmarks/record.py [--quick] [--output BENCH_kernels.json]
                                [--baseline PREV.json] [--threshold 1.5]
                                [--backends numpy,numba,cext] [--no-e2e]
                                [--no-fail] [--fail-ratios]

Equivalent entry points: ``make bench`` and ``repro bench``.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.perf.record import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
