"""Fig. 5 benchmark — NOR2_X2 rising-delay surface evaluation.

Times the two halves of the Fig. 5 comparison on the 64×64 grid: the
polynomial kernel (Horner) and the linear-interpolation reference; and
re-checks the paper's headline error numbers.
"""

import numpy as np
import pytest

from repro.experiments import fig5


@pytest.fixture(scope="module")
def surface():
    return fig5.run(grid=64)


def test_polynomial_surface_eval(benchmark, surface):
    """Evaluate the fitted polynomial on the full 64×64 grid."""
    poly = surface.characterization.fit.polynomial
    nv = np.linspace(0.0, 1.0, 64)
    nc = np.linspace(0.0, 1.0, 64)
    result = benchmark(poly.evaluate, nv[:, None], nc[None, :])
    assert result.shape == (64, 64)


def test_reference_surface_eval(benchmark, surface):
    """Evaluate the bilinear SPICE reference on the same grid."""
    reference = surface.characterization.reference
    nv = np.linspace(0.0, 1.0, 64)
    nc = np.linspace(0.0, 1.0, 64)
    result = benchmark(reference, nv[:, None], nc[None, :])
    assert result.shape == (64, 64)


def test_fig5_error_matches_paper_class(surface):
    """Paper: avg 0.38 %, max 2.41 % — reproduce the same magnitude."""
    assert surface.avg_abs_error < 0.01
    assert surface.max_abs_error < 0.025
