"""LUT-vs-polynomial delay model ablation (paper Sec. II comparison).

Conventional flows interpolate look-up tables per (cell, pin, polarity);
the paper replaces them with compact polynomial kernels.  This file
compares the two on the axes the paper argues about:

* evaluation throughput on large batches (GPU-style workloads),
* memory per entry (LUT grid vs (N+1)² coefficients),
* agreement of the two models away from grid points.
"""

import numpy as np
import pytest

from repro.cells.cell import DrivePolarity
from repro.core.interpolation import LutDelayModel
from repro.electrical.spice import AnalyticalSpice
from repro.units import FF

BATCH = 50_000


@pytest.fixture(scope="module")
def models(library, kernel_table):
    cell = library["NAND2_X1"]
    grid = AnalyticalSpice().sweep(cell, cell.pins[0], DrivePolarity.RISE)
    lut = LutDelayModel(grid.voltages, grid.loads, grid.delays)
    type_id = kernel_table.type_id(cell.name)
    d_nom_fn = lambda c: np.interp(  # noqa: E731 - tiny local helper
        np.log2(c), np.log2(grid.loads), grid.delays[5])  # row at 0.8 V
    return lut, kernel_table, type_id, d_nom_fn


@pytest.fixture(scope="module")
def query(rng_seed=9):
    rng = np.random.default_rng(rng_seed)
    v = rng.uniform(0.55, 1.1, BATCH)
    c = rng.uniform(0.5 * FF, 128 * FF, BATCH)
    return v, c


def test_lut_interpolation(benchmark, models, query):
    lut, *_ = models
    v, c = query
    benchmark(lut.delay, v, c)


def test_polynomial_kernel(benchmark, models, query):
    _, table, type_id, d_nom_fn = models
    v, c = query
    d_nom = d_nom_fn(c)
    benchmark(table.delay, d_nom, type_id, 0, DrivePolarity.RISE, v, c)


def test_memory_footprint_comparison(models):
    """Polynomial kernels store far fewer values per entry than LUTs."""
    lut, table, *_ = models
    coefficients_per_entry = (table.n + 1) ** 2
    assert coefficients_per_entry < lut.table_entries  # 16 < 108

@pytest.fixture(scope="module")
def backends(kernel_table):
    from repro.core.backends import AnalyticalDelayBackend, LutDelayBackend
    from repro.electrical.model import TransistorCorner
    from repro.experiments.common import default_characterization

    characterization = default_characterization(3)
    return {
        "polynomial": kernel_table,
        "lut": LutDelayBackend.from_characterization(characterization),
        "analytical": AnalyticalDelayBackend.from_corner(
            TransistorCorner.typical(), characterization.space),
    }


@pytest.mark.parametrize("backend_name", ["polynomial", "lut", "analytical"])
def test_simulation_with_backend(benchmark, backends, medium_workload,
                                 library, backend_name):
    """End-to-end ablation: the same voltage sweep under each delay model."""
    from repro.simulation.gpu import GpuWaveSim
    from repro.simulation.grid import SlotPlan

    workload = medium_workload
    sim = GpuWaveSim(workload.circuit, library, compiled=workload.compiled)
    pairs = workload.patterns.pairs[:16]
    plan = SlotPlan.cross(len(pairs), [0.55, 0.8, 1.1])
    benchmark.pedantic(
        sim.run, args=(pairs,),
        kwargs={"plan": plan, "kernel_table": backends[backend_name]},
        rounds=2, iterations=1,
    )
    benchmark.extra_info["backend"] = backend_name


def test_models_agree_off_grid(models, query):
    """Both models approximate the same surface: few-percent agreement."""
    lut, table, type_id, d_nom_fn = models
    v, c = query
    lut_delay = lut.delay(v[:500], c[:500])
    d_nom = d_nom_fn(c[:500])
    poly_delay = table.delay(d_nom, type_id, 0, DrivePolarity.RISE,
                             v[:500], c[:500])
    relative = np.abs(poly_delay / lut_delay - 1.0)
    assert np.median(relative) < 0.03
    assert relative.max() < 0.15
