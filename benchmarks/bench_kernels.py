"""Kernel micro-benchmarks and the Horner-vs-naive ablation (Sec. IV).

The paper enforces Horner form / FMA for the polynomial kernels; this
file measures how much that matters, plus the raw throughput of the two
hot kernels: batched delay computation and the waveform-merge kernel.
"""

import numpy as np
import pytest

from repro.core.delay_kernel import horner2d
from repro.core.polynomial import SurfacePolynomial
from repro.simulation.backend import available_backends, resolve_backend
from repro.simulation.kernels import waveform_merge_kernel

LANES = 20_000


@pytest.fixture(scope="module")
def poly(rng_seed=3):
    rng = np.random.default_rng(rng_seed)
    return SurfacePolynomial(rng.normal(size=(4, 4)))


@pytest.fixture(scope="module")
def samples():
    rng = np.random.default_rng(4)
    return rng.uniform(0, 1, LANES), rng.uniform(0, 1, LANES)


def test_horner_evaluation(benchmark, poly, samples):
    v, c = samples
    benchmark(poly.evaluate, v, c)


def test_naive_evaluation(benchmark, poly, samples):
    v, c = samples
    benchmark(poly.evaluate_naive, v, c)


def test_horner_beats_naive(poly, samples):
    """Ablation claim: Horner form is at least as fast as the double sum."""
    import timeit
    v, c = samples
    horner = min(timeit.repeat(lambda: poly.evaluate(v, c), number=20,
                               repeat=3))
    naive = min(timeit.repeat(lambda: poly.evaluate_naive(v, c), number=20,
                              repeat=3))
    assert horner < naive * 1.2  # never meaningfully slower


def test_batched_delay_kernel(benchmark, kernel_table):
    """Online delay calculation for 2000 gates × 8 voltages (Sec. IV-A)."""
    rng = np.random.default_rng(5)
    gates = 2000
    type_ids = rng.integers(0, kernel_table.num_types, size=gates)
    loads = rng.uniform(1e-15, 1e-13, size=gates)
    nominal = rng.uniform(1e-12, 2e-11, size=(gates, kernel_table.max_pins, 2))
    voltages = np.linspace(0.55, 1.1, 8)
    result = benchmark(kernel_table.delays_for_gates, type_ids, loads,
                       nominal, voltages)
    assert result.shape == (gates, kernel_table.max_pins, 2, 8)


def merge_workload():
    rng = np.random.default_rng(6)
    capacity = 8
    times = np.sort(rng.uniform(0, 1e-9, size=(2, LANES, capacity)), axis=2)
    # terminate each lane after a random count
    counts = rng.integers(0, capacity, size=(2, LANES))
    mask = np.arange(capacity)[None, None, :] >= counts[:, :, None]
    times[mask] = np.inf
    initial = rng.integers(0, 2, size=(2, LANES)).astype(np.uint8)
    delays = rng.uniform(1e-12, 5e-12, size=(2, 2, LANES))
    tables = np.full(LANES, 0b0110, dtype=np.int64)  # XOR2
    return times, initial, delays, tables


def test_waveform_merge_kernel(benchmark):
    """Merge kernel over a 2-input thread group of 20k lanes."""
    times, initial, delays, tables = merge_workload()
    result = benchmark(
        waveform_merge_kernel, times, initial, delays, tables, 32,
    )
    assert not result.overflow.any()


@pytest.mark.parametrize("backend_name", available_backends())
def test_waveform_merge_backends(benchmark, backend_name):
    """The same thread group through each loadable compute backend."""
    backend = resolve_backend(backend_name)
    times, initial, delays, tables = merge_workload()
    backend.merge_kernel(times, initial, delays, tables, 32)  # warm-up
    result = benchmark(
        backend.merge_kernel, times, initial, delays, tables, 32,
    )
    assert not result.overflow.any()
